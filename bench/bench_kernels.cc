// Kernel microbenchmarks (google-benchmark): the inner loops every
// experiment above is built from. Useful for tracking regressions in
// the substrate independent of the end-to-end harnesses.
#include <benchmark/benchmark.h>

#include "src/common/rng.h"
#include "src/gas/message.h"
#include "src/graph/partition.h"
#include "src/graph/power_law.h"
#include "src/tensor/ops.h"
#include "src/tensor/segment_ops.h"
#include "src/tensor/sparse.h"

namespace inferturbo {
namespace {

void BM_MatMul(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::RandomNormal(n, n, 1.0f, &rng);
  const Tensor b = Tensor::RandomNormal(n, n, 1.0f, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_SegmentSum(benchmark::State& state) {
  const std::int64_t rows = state.range(0);
  Rng rng(2);
  const Tensor values = Tensor::RandomNormal(rows, 32, 1.0f, &rng);
  std::vector<std::int64_t> ids;
  for (std::int64_t i = 0; i < rows; ++i) {
    ids.push_back(static_cast<std::int64_t>(rng.NextBounded(64)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SegmentSum(values, ids, 64));
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_SegmentSum)->Arg(1024)->Arg(16384);

void BM_SegmentSoftmax(benchmark::State& state) {
  const std::int64_t rows = state.range(0);
  Rng rng(3);
  const Tensor logits = Tensor::RandomNormal(rows, 1, 1.0f, &rng);
  std::vector<std::int64_t> ids;
  for (std::int64_t i = 0; i < rows; ++i) {
    ids.push_back(static_cast<std::int64_t>(rng.NextBounded(64)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SegmentSoftmax(logits, ids, 64));
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_SegmentSoftmax)->Arg(16384);

void BM_PooledAccumulatorFold(benchmark::State& state) {
  const std::int64_t rows = state.range(0);
  Rng rng(4);
  const Tensor values = Tensor::RandomNormal(rows, 32, 1.0f, &rng);
  std::vector<NodeId> dst;
  for (std::int64_t i = 0; i < rows; ++i) {
    dst.push_back(static_cast<NodeId>(rng.NextBounded(512)));
  }
  for (auto _ : state) {
    PooledAccumulator acc(AggKind::kMean, 32);
    for (std::int64_t i = 0; i < rows; ++i) {
      acc.Add(dst[static_cast<std::size_t>(i)], values.RowPtr(i));
    }
    benchmark::DoNotOptimize(acc.Finalize());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_PooledAccumulatorFold)->Arg(16384);

void BM_SpMM(benchmark::State& state) {
  const std::int64_t n = 4096, e = 32768;
  Rng rng(5);
  std::vector<std::int64_t> src, dst;
  for (std::int64_t i = 0; i < e; ++i) {
    src.push_back(static_cast<std::int64_t>(
        rng.NextBounded(static_cast<std::uint64_t>(n))));
    dst.push_back(static_cast<std::int64_t>(
        rng.NextBounded(static_cast<std::uint64_t>(n))));
  }
  const CsrMatrix a = CsrMatrix::FromEdges(n, dst, src);
  const Tensor x = Tensor::RandomNormal(n, 32, 1.0f, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.MatMulDense(x));
  }
  state.SetItemsProcessed(state.iterations() * e);
}
BENCHMARK(BM_SpMM);

void BM_ZipfSample(benchmark::State& state) {
  ZipfSampler zipf(1'000'000, 2.0);
  Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(&rng));
  }
}
BENCHMARK(BM_ZipfSample);

void BM_PartitionAssign(benchmark::State& state) {
  HashPartitioner partitioner(1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AssignPartitions(100000, partitioner));
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_PartitionAssign);

}  // namespace
}  // namespace inferturbo
