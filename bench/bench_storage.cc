// Out-of-core storage benchmark and regression harness: packs a
// synthetic graph into a shard directory, then times the four access
// patterns the streaming inference path is built from and writes
// BENCH_storage.json — one record per mode with MB/s over the pack.
//
//   cold              open the store and demand-load every shard (page-in)
//   warm              every Map() is a cache hit (unlimited budget)
//   streamed          sequential partition sweep under a BINDING budget
//                     (the pack minus its smallest shard), touching every
//                     feature byte — the MapReduce map stage's access shape
//   prefetched        the same sweep with Prefetch(p+1) overlapping I/O
//                     (the legacy fire-and-forget scheme, kept as a row so
//                     the pipeline's win over it stays visible)
//   pipelined         the same sweep through a ShardPipeline: a dedicated
//                     loader thread double-buffers shard I/O behind the
//                     checksum compute
//   pipelined_pinned  the pipeline sweep with the hub hot-set pinned
//                     resident (pinned budget = half the memory budget)
//
// Every mode folds the bytes it touches into a deterministic
// gather_checksum (seeded dataset + hash partitioning = host-stable),
// and the run FAILS — not just reports — when an invariant breaks:
// peak mapped bytes over budget, zero prefetch hits, nothing pinned,
// or any checksum failure. The JSON also records which read-path tier
// (io_uring / O_DIRECT / pread / mmap) auto-detection picked.
//
// Usage:
//   bench_storage                     full sweep, writes BENCH_storage.json
//   bench_storage --quick             CI smoke: same dataset shape, short timing
//   bench_storage --out=PATH          write the JSON elsewhere
//   bench_storage --check=PATH        diff against a baseline JSON; exits 1 on
//                                     timing regression past --check-tolerance
//                                     or a gather_checksum mismatch
//   bench_storage --overlap-gate      exit 1 unless the pipelined sweep is at
//                                     least as fast as the streamed sweep
//                                     (minus --overlap-tolerance slack)
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/crc32.h"
#include "src/common/flags.h"
#include "src/common/thread_pool.h"
#include "src/common/timer.h"
#include "src/graph/datasets.h"
#include "src/storage/graph_view.h"
#include "src/storage/shard_format.h"
#include "src/storage/shard_pipeline.h"
#include "src/storage/shard_reader.h"
#include "src/storage/shard_store.h"
#include "src/storage/shard_writer.h"

namespace inferturbo {
namespace {

constexpr std::int64_t kPartitions = 8;

// Keeps folded checksums observable so the optimizer cannot delete a
// timed sweep.
volatile std::uint64_t g_sink = 0;

struct BenchRecord {
  std::string mode;
  std::string shape;
  double seconds_per_iter = 0.0;
  double mb_per_s = 0.0;
  std::uint64_t peak_bytes_mapped = 0;
};

struct TimingOptions {
  double min_seconds = 0.3;
  std::int64_t max_iters = 50;
};

template <typename Fn>
double TimeIt(const TimingOptions& options, Fn&& fn) {
  fn();  // untimed warmup: cold caches, lazy page-ins
  WallTimer timer;
  std::int64_t iters = 0;
  double elapsed = 0.0;
  while (elapsed < options.min_seconds && iters < options.max_iters) {
    fn();
    ++iters;
    elapsed = timer.ElapsedSeconds();
  }
  return elapsed / static_cast<double>(iters);
}

/// Folds every byte a slice exposes (topology + features + labels)
/// into a CRC accumulator — the "work" each sweep iteration does, and
/// the cross-host determinism witness.
std::uint64_t ChecksumSlice(const PartitionSlice& slice,
                            std::int64_t feature_dim,
                            std::int64_t edge_feature_dim) {
  std::uint64_t acc = 0;
  acc += Crc32(slice.nodes.data(), slice.nodes.size_bytes());
  acc += Crc32(slice.out_offsets.data(), slice.out_offsets.size_bytes());
  acc += Crc32(slice.out_dst.data(), slice.out_dst.size_bytes());
  acc += Crc32(slice.out_edge_ids.data(), slice.out_edge_ids.size_bytes());
  acc += Crc32(slice.node_features,
               slice.nodes.size() * static_cast<std::size_t>(feature_dim) *
                   sizeof(float));
  if (slice.edge_features != nullptr) {
    acc += Crc32(slice.edge_features,
                 slice.out_dst.size() *
                     static_cast<std::size_t>(edge_feature_dim) *
                     sizeof(float));
  }
  if (!slice.labels.empty()) {
    acc += Crc32(slice.labels.data(), slice.labels.size_bytes());
  }
  return acc;
}

std::uint64_t SweepView(const GraphView& view, bool prefetch) {
  std::uint64_t acc = 0;
  for (std::int64_t p = 0; p < view.num_partitions(); ++p) {
    if (prefetch) view.PrefetchPartition(p + 1);
    const Result<PartitionSlice> slice = view.AcquirePartition(p);
    if (!slice.ok()) {
      std::fprintf(stderr, "bench_storage: %s\n",
                   slice.status().ToString().c_str());
      std::exit(2);
    }
    acc += ChecksumSlice(*slice, view.feature_dim(),
                         view.edge_feature_dim());
  }
  return acc;
}

/// The pipeline's access shape: same sweep, but every acquire goes
/// through the double-buffered loader thread.
std::uint64_t SweepPipelined(const GraphView& view, int slots) {
  ShardPipeline pipeline(view, ShardPipelineOptions{slots});
  std::uint64_t acc = 0;
  for (std::int64_t p = 0; p < view.num_partitions(); ++p) {
    const Result<PartitionSlice> slice = pipeline.Acquire(p);
    if (!slice.ok()) {
      std::fprintf(stderr, "bench_storage: %s\n",
                   slice.status().ToString().c_str());
      std::exit(2);
    }
    acc += ChecksumSlice(*slice, view.feature_dim(),
                         view.edge_feature_dim());
  }
  return acc;
}

ShardStoreOptions StoreOptions(const std::string& dir,
                               std::uint64_t budget,
                               ThreadPool* pool,
                               std::uint64_t pinned_budget = 0) {
  ShardStoreOptions options;
  options.directory = dir;
  options.memory_budget_bytes = budget;
  options.prefetch_pool = pool;
  options.pinned_budget_bytes = pinned_budget;
  return options;
}

ShardStore MustOpen(ShardStoreOptions options) {
  Result<ShardStore> store = ShardStore::Open(std::move(options));
  if (!store.ok()) {
    std::fprintf(stderr, "bench_storage: %s\n",
                 store.status().ToString().c_str());
    std::exit(2);
  }
  return std::move(*store);
}

void WriteJson(const std::string& path,
               const std::vector<BenchRecord>& records, bool quick,
               std::uint64_t gather_checksum, std::uint64_t budget,
               ShardReadPath read_path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "bench_storage: cannot write %s\n", path.c_str());
    std::exit(2);
  }
  out << "{\n";
  out << "  \"bench\": \"bench_storage\",\n";
  out << "  \"mode\": \"" << (quick ? "quick" : "full") << "\",\n";
  out << "  \"gather_checksum\": \"" << gather_checksum << "\",\n";
  out << "  \"memory_budget_bytes\": " << budget << ",\n";
  out << "  \"read_path\": \"" << ShardReadPathName(read_path) << "\",\n";
  out << "  \"results\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    char line[512];
    std::snprintf(line, sizeof(line),
                  "    {\"op\": \"%s\", \"shape\": \"%s\", "
                  "\"seconds_per_iter\": %.6e, \"mb_per_s\": %.2f, "
                  "\"peak_bytes_mapped\": %llu}%s",
                  r.mode.c_str(), r.shape.c_str(), r.seconds_per_iter,
                  r.mb_per_s,
                  static_cast<unsigned long long>(r.peak_bytes_mapped),
                  i + 1 < records.size() ? "," : "");
    out << line << "\n";
  }
  out << "  ]\n}\n";
  std::printf("\nwrote %zu records to %s\n", records.size(), path.c_str());
}

// Minimal extraction for the exact one-record-per-line format WriteJson
// emits — enough for --check without a JSON dependency.
std::string ExtractString(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\": \"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return "";
  const std::size_t begin = at + needle.size();
  const std::size_t end = line.find('"', begin);
  return end == std::string::npos ? "" : line.substr(begin, end - begin);
}

double ExtractNumber(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return 0.0;
  return std::strtod(line.c_str() + at + needle.size(), nullptr);
}

int CheckAgainstBaseline(const std::vector<BenchRecord>& records,
                         std::uint64_t gather_checksum,
                         const std::string& path, double tolerance) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_storage: cannot read baseline %s\n",
                 path.c_str());
    return 1;
  }
  int compared = 0;
  int regressions = 0;
  std::string line;
  while (std::getline(in, line)) {
    const std::string baseline_checksum =
        ExtractString(line, "gather_checksum");
    if (!baseline_checksum.empty() &&
        baseline_checksum != std::to_string(gather_checksum)) {
      std::printf("CHECKSUM MISMATCH: %s vs baseline %s — the streamed "
                  "bytes differ from the baseline run\n",
                  std::to_string(gather_checksum).c_str(),
                  baseline_checksum.c_str());
      ++regressions;
    }
    const std::string op = ExtractString(line, "op");
    if (op.empty()) continue;
    for (const BenchRecord& r : records) {
      if (r.mode != op || r.shape != ExtractString(line, "shape")) continue;
      ++compared;
      const double baseline = ExtractNumber(line, "seconds_per_iter");
      if (baseline > 0.0 &&
          r.seconds_per_iter > baseline * (1.0 + tolerance)) {
        ++regressions;
        std::printf("REGRESSION %s %s: %.3f ms/iter vs baseline %.3f "
                    "ms/iter (tolerance %.0f%%)\n",
                    r.mode.c_str(), r.shape.c_str(),
                    r.seconds_per_iter * 1e3, baseline * 1e3,
                    tolerance * 100.0);
      }
    }
  }
  std::printf("baseline check: %d rows compared, %d regressions\n", compared,
              regressions);
  return regressions == 0 ? 0 : 1;
}

int Main(int argc, const char* const argv[]) {
  const Result<FlagParser> flags = FlagParser::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 2;
  }
  const bool quick = flags->GetBool("quick", false);
  const std::string out_path =
      flags->GetString("out", "BENCH_storage.json");
  const std::string check_path = flags->GetString("check", "");
  const double tolerance = flags->GetDouble("check-tolerance", 0.5);
  const bool overlap_gate = flags->GetBool("overlap-gate", false);
  const double overlap_tolerance =
      flags->GetDouble("overlap-tolerance", 0.10);

  TimingOptions timing;
  if (quick) {
    timing.min_seconds = 0.02;
    timing.max_iters = 3;
  }

  // One dataset shape for quick AND full runs, so a quick CI check
  // compares against the checked-in full baseline on matching rows.
  PlantedGraphConfig config;
  config.num_nodes = 120000;
  config.avg_degree = 8.0;
  config.feature_dim = 64;
  config.num_classes = 8;
  config.in_skew_alpha = 1.2;
  config.seed = 7;
  std::printf("generating %lld nodes x %lld features...\n",
              static_cast<long long>(config.num_nodes),
              static_cast<long long>(config.feature_dim));
  const Dataset dataset = MakePlantedDataset("bench-storage", config);

  const std::string dir =
      (std::filesystem::temp_directory_path() / "bench_storage_pack")
          .string();
  std::filesystem::remove_all(dir);
  ShardWriterOptions writer;
  writer.num_partitions = kPartitions;
  const Result<ShardMeta> meta =
      WriteGraphShards(dataset.graph, dir, writer);
  if (!meta.ok()) {
    std::fprintf(stderr, "bench_storage: %s\n",
                 meta.status().ToString().c_str());
    return 2;
  }

  std::uint64_t smallest = UINT64_MAX;
  std::uint64_t pack_bytes = 0;
  for (std::int64_t p = 0; p < kPartitions; ++p) {
    const std::uint64_t size =
        std::filesystem::file_size(dir + "/" + ShardFileName(p));
    smallest = std::min(smallest, size);
    pack_bytes += size;
  }
  // Binding: the whole pack can never be resident at once.
  const std::uint64_t budget = pack_bytes - smallest;
  const double pack_mb = static_cast<double>(pack_bytes) / (1024.0 * 1024.0);

  std::ostringstream shape_label;
  shape_label << config.num_nodes << "x" << config.feature_dim << "p"
              << kPartitions;
  const std::string shape = shape_label.str();
  std::printf("pack: %.1f MiB in %lld shards (budget %.1f MiB)\n\n",
              pack_mb, static_cast<long long>(kPartitions),
              static_cast<double>(budget) / (1024.0 * 1024.0));

  std::vector<BenchRecord> records;
  std::uint64_t gather_checksum = 0;
  ShardReadPath read_path = ShardReadPath::kMmap;
  int failures = 0;
  const auto record = [&](const std::string& mode, double seconds,
                          std::uint64_t peak) {
    BenchRecord r;
    r.mode = mode;
    r.shape = shape;
    r.seconds_per_iter = seconds;
    r.mb_per_s = pack_mb / seconds;
    r.peak_bytes_mapped = peak;
    records.push_back(r);
    std::printf("%-11s %-16s %10.3f ms/iter  %9.1f MB/s  peak %.1f MiB\n",
                mode.c_str(), shape.c_str(), seconds * 1e3, r.mb_per_s,
                static_cast<double>(peak) / (1024.0 * 1024.0));
  };

  {  // cold: open + demand-load the whole pack every iteration
    std::uint64_t peak = 0;
    const double seconds = TimeIt(timing, [&] {
      ShardStore store = MustOpen(StoreOptions(dir, 0, nullptr));
      const ShardGraphView view(std::move(store));
      g_sink = g_sink + SweepView(view, /*prefetch=*/false);
      peak = view.storage_metrics().peak_bytes_mapped;
    });
    record("cold", seconds, peak);
  }

  {  // warm: one store, every Map a cache hit
    ShardStore store = MustOpen(StoreOptions(dir, 0, nullptr));
    read_path = store.read_path();
    const ShardGraphView view(std::move(store));
    gather_checksum = SweepView(view, /*prefetch=*/false);  // fill
    const double seconds = TimeIt(
        timing, [&] { g_sink = g_sink + SweepView(view, false); });
    const StorageMetrics metrics = view.storage_metrics();
    record("warm", seconds, metrics.peak_bytes_mapped);
    if (metrics.checksum_failures != 0) {
      std::fprintf(stderr, "INVARIANT: checksum_failures = %lld != 0\n",
                   static_cast<long long>(metrics.checksum_failures));
      ++failures;
    }
  }

  {  // streamed: sequential sweep under the binding budget
    std::uint64_t peak = 0;
    const double seconds = TimeIt(timing, [&] {
      ShardStore store = MustOpen(StoreOptions(dir, budget, nullptr));
      const ShardGraphView view(std::move(store));
      const std::uint64_t acc = SweepView(view, /*prefetch=*/false);
      g_sink = g_sink + acc;
      if (acc != gather_checksum) {
        std::fprintf(stderr, "INVARIANT: streamed checksum diverged\n");
        ++failures;
      }
      peak = view.storage_metrics().peak_bytes_mapped;
    });
    record("streamed", seconds, peak);
    if (peak > budget) {
      std::fprintf(stderr,
                   "INVARIANT: peak %llu exceeds the %llu-byte budget\n",
                   static_cast<unsigned long long>(peak),
                   static_cast<unsigned long long>(budget));
      ++failures;
    }
  }

  {  // prefetched: the same sweep with Prefetch(p+1) overlapping I/O
    ThreadPool pool(2);
    std::uint64_t peak = 0;
    std::int64_t prefetch_hits = 0;
    const double seconds = TimeIt(timing, [&] {
      ShardStore store = MustOpen(StoreOptions(dir, budget, &pool));
      const ShardGraphView view(std::move(store));
      const std::uint64_t acc = SweepView(view, /*prefetch=*/true);
      g_sink = g_sink + acc;
      if (acc != gather_checksum) {
        std::fprintf(stderr, "INVARIANT: prefetched checksum diverged\n");
        ++failures;
      }
      const StorageMetrics metrics = view.storage_metrics();
      peak = metrics.peak_bytes_mapped;
      prefetch_hits += metrics.prefetch_hits;
    });
    record("prefetched", seconds, peak);
    if (peak > budget) {
      std::fprintf(stderr,
                   "INVARIANT: peak %llu exceeds the %llu-byte budget\n",
                   static_cast<unsigned long long>(peak),
                   static_cast<unsigned long long>(budget));
      ++failures;
    }
    if (prefetch_hits == 0) {
      std::fprintf(stderr, "INVARIANT: no prefetch hit across any run\n");
      ++failures;
    }
  }

  {  // pipelined: the sweep with a dedicated loader thread overlapping
     // shard I/O for p+1 behind the checksum compute on p
    std::uint64_t peak = 0;
    const double seconds = TimeIt(timing, [&] {
      ShardStore store = MustOpen(StoreOptions(dir, budget, nullptr));
      const ShardGraphView view(std::move(store));
      const std::uint64_t acc = SweepPipelined(view, /*slots=*/2);
      g_sink = g_sink + acc;
      if (acc != gather_checksum) {
        std::fprintf(stderr, "INVARIANT: pipelined checksum diverged\n");
        ++failures;
      }
      peak = view.storage_metrics().peak_bytes_mapped;
    });
    record("pipelined", seconds, peak);
    if (peak > budget) {
      std::fprintf(stderr,
                   "INVARIANT: peak %llu exceeds the %llu-byte budget\n",
                   static_cast<unsigned long long>(peak),
                   static_cast<unsigned long long>(budget));
      ++failures;
    }
  }

  {  // pipelined_pinned: persistent store, hub hot-set pinned resident
     // under half the budget, cold shards cycling through the rest
    ShardStore store =
        MustOpen(StoreOptions(dir, budget, nullptr, budget / 2));
    const ShardGraphView view(std::move(store));
    const Result<std::int64_t> pinned = view.PinHotSet(/*hub_threshold=*/0);
    if (!pinned.ok()) {
      std::fprintf(stderr, "bench_storage: %s\n",
                   pinned.status().ToString().c_str());
      return 2;
    }
    const double seconds = TimeIt(timing, [&] {
      const std::uint64_t acc = SweepPipelined(view, /*slots=*/2);
      g_sink = g_sink + acc;
      if (acc != gather_checksum) {
        std::fprintf(stderr,
                     "INVARIANT: pipelined_pinned checksum diverged\n");
        ++failures;
      }
    });
    const StorageMetrics metrics = view.storage_metrics();
    record("pipelined_pinned", seconds, metrics.peak_bytes_mapped);
    if (metrics.peak_bytes_mapped > budget) {
      std::fprintf(stderr,
                   "INVARIANT: peak %llu exceeds the %llu-byte budget\n",
                   static_cast<unsigned long long>(metrics.peak_bytes_mapped),
                   static_cast<unsigned long long>(budget));
      ++failures;
    }
    if (metrics.pinned_bytes == 0 || metrics.pinned_partitions == 0) {
      std::fprintf(stderr, "INVARIANT: nothing pinned under a %llu-byte "
                           "pinned budget\n",
                   static_cast<unsigned long long>(budget / 2));
      ++failures;
    }
    if (metrics.pinned_hits == 0) {
      std::fprintf(stderr, "INVARIANT: no pinned shard was ever re-hit\n");
      ++failures;
    }
  }

  if (overlap_gate) {
    double streamed_s = 0.0;
    double pipelined_s = 0.0;
    for (const BenchRecord& r : records) {
      if (r.mode == "streamed") streamed_s = r.seconds_per_iter;
      if (r.mode == "pipelined") pipelined_s = r.seconds_per_iter;
    }
    if (pipelined_s > streamed_s * (1.0 + overlap_tolerance)) {
      std::fprintf(stderr,
                   "OVERLAP GATE: pipelined %.3f ms/iter is slower than "
                   "streamed %.3f ms/iter (tolerance %.0f%%)\n",
                   pipelined_s * 1e3, streamed_s * 1e3,
                   overlap_tolerance * 100.0);
      ++failures;
    } else {
      std::printf("overlap gate: pipelined %.3f ms/iter vs streamed "
                  "%.3f ms/iter — ok\n",
                  pipelined_s * 1e3, streamed_s * 1e3);
    }
  }

  std::printf("\ngather_checksum: %llu  read_path: %s\n",
              static_cast<unsigned long long>(gather_checksum),
              std::string(ShardReadPathName(read_path)).c_str());
  WriteJson(out_path, records, quick, gather_checksum, budget, read_path);
  std::filesystem::remove_all(dir);

  if (failures != 0) {
    std::fprintf(stderr, "bench_storage: %d invariant violation(s)\n",
                 failures);
    return 1;
  }
  if (!check_path.empty()) {
    return CheckAgainstBaseline(records, gather_checksum, check_path,
                                tolerance);
  }
  return 0;
}

}  // namespace
}  // namespace inferturbo

int main(int argc, char** argv) { return inferturbo::Main(argc, argv); }
