// §V-B.2 threshold sweep: vary the hub-activation threshold for the
// broadcast and shadow-nodes strategies around the heuristic value
// threshold = lambda * edges / workers (lambda = 0.1). The paper's
// findings: (a) tail IO shrinks as the threshold drops, (b) within a
// decade of the heuristic the IO difference is small (<5%), while
// (c) overhead (mirrors / broadcast-table size) grows as the threshold
// drops — so the heuristic is a sane default.
#include <cstdio>

#include <algorithm>

#include "bench/bench_common.h"
#include "src/common/byte_size.h"
#include "src/inference/inferturbo_pregel.h"
#include "src/inference/strategies.h"

namespace inferturbo {
namespace {

struct SweepPoint {
  std::uint64_t tail_bytes_out = 0;  // heaviest-10% workers
  std::uint64_t total_bytes = 0;
  std::int64_t mirrors = 0;  // SN: duplication overhead proxy
};

SweepPoint RunPoint(const Dataset& dataset, const GnnModel& model,
                    bool broadcast, bool shadow_nodes,
                    std::int64_t threshold) {
  InferTurboOptions options;
  options.num_workers = 16;
  options.strategies.partial_gather = false;
  options.strategies.broadcast = broadcast;
  options.strategies.shadow_nodes = shadow_nodes;
  options.strategies.threshold_override = threshold;
  const Result<InferenceResult> r =
      RunInferTurboPregel(dataset.graph, model, options);
  INFERTURBO_CHECK(r.ok()) << r.status().ToString();
  std::vector<std::uint64_t> bytes;
  for (const WorkerStepMetrics& m : r->metrics.PerWorkerTotals()) {
    bytes.push_back(m.bytes_out);
  }
  std::sort(bytes.begin(), bytes.end());
  SweepPoint point;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    point.total_bytes += bytes[i];
    if (i + 1 + bytes.size() / 10 > bytes.size()) {
      point.tail_bytes_out += bytes[i];
    }
  }
  if (shadow_nodes) {
    const Result<ShadowGraph> shadow =
        ApplyShadowNodes(dataset.graph, threshold);
    INFERTURBO_CHECK(shadow.ok());
    point.mirrors = shadow->num_mirrors;
  }
  return point;
}

void Run() {
  bench::PrintHeader("Threshold sweep (§V-B.2)",
                     "hub threshold vs tail IO and overhead");
  PowerLawConfig config;
  config.num_nodes = 30000;
  config.avg_degree = 8.0;
  config.alpha = 1.7;
  config.skew = PowerLawSkew::kOut;
  config.seed = 61;
  const Dataset dataset = MakePowerLawDataset(config, /*feature_dim=*/32);
  const std::unique_ptr<GnnModel> model =
      bench::UntrainedModelOn(dataset, "sage", /*hidden_dim=*/32);
  const std::int64_t heuristic = StrategyConfig().HubThreshold(
      dataset.graph.num_edges(), /*total_workers=*/16);
  std::printf("heuristic threshold (lambda=0.1): %lld\n",
              static_cast<long long>(heuristic));

  const std::vector<std::int64_t> thresholds = {
      heuristic / 10, heuristic / 3, heuristic, heuristic * 3,
      heuristic * 10};

  std::printf("\n%-10s | %-26s | %-26s\n", "", "broadcast",
              "shadow-nodes");
  std::printf("%-10s | %12s %12s | %12s %12s %7s\n", "threshold",
              "tail bytes", "total", "tail bytes", "total", "mirrors");
  bench::PrintRule();
  for (const std::int64_t t : thresholds) {
    if (t <= 0) continue;
    const SweepPoint bc = RunPoint(dataset, *model, true, false, t);
    const SweepPoint sn = RunPoint(dataset, *model, false, true, t);
    std::printf("%-10lld | %12s %12s | %12s %12s %7lld\n",
                static_cast<long long>(t),
                FormatBytes(bc.tail_bytes_out).c_str(),
                FormatBytes(bc.total_bytes).c_str(),
                FormatBytes(sn.tail_bytes_out).c_str(),
                FormatBytes(sn.total_bytes).c_str(),
                static_cast<long long>(sn.mirrors));
  }
  std::printf(
      "\nexpected shape (paper §V-B.2): tail IO falls as the threshold\n"
      "drops, but so does overhead headroom (mirror count grows);\n"
      "within [heuristic/10, heuristic] total IO moves only a few\n"
      "percent, so the lambda=0.1 heuristic is a reasonable default.\n");
}

}  // namespace
}  // namespace inferturbo

int main() { inferturbo::Run(); }
