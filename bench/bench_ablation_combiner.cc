// Ablation: the engine-level combiner (sender-side aggregation, the
// mechanism under partial-gather) on a *non-GNN* workload — PageRank —
// to show the substrate optimization is general, as in its PowerGraph
// lineage. Measures shuffle records/bytes with and without combining.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/common/byte_size.h"
#include "src/pregel/algorithms.h"

namespace inferturbo {
namespace {

void Run() {
  bench::PrintHeader("Ablation: combiner",
                     "PageRank message volume with/without combining");
  PowerLawConfig config;
  config.num_nodes = 20000;
  config.avg_degree = 8.0;
  config.alpha = 1.7;
  config.skew = PowerLawSkew::kIn;
  config.seed = 73;
  const Dataset dataset = MakePowerLawDataset(config, /*feature_dim=*/4);

  // The library PageRank always combines; rebuild the uncombined
  // variant by chopping the combiner out via a direct engine run is
  // what the engine test does — here we compare against the
  // theoretical uncombined volume, which is exactly one record per
  // edge per iteration.
  PregelAlgorithmOptions options;
  options.num_workers = 16;
  options.max_iterations = 10;
  JobMetrics metrics;
  (void)PageRank(dataset.graph, options, 0.85, &metrics);

  std::int64_t records_in = 0;
  for (const auto& w : metrics.PerWorkerTotals()) {
    records_in += w.records_in;
  }
  const std::int64_t uncombined =
      dataset.graph.num_edges() * (metrics.num_steps() - 1);
  std::printf("graph: %lld nodes, %lld edges; %lld supersteps\n",
              static_cast<long long>(dataset.graph.num_nodes()),
              static_cast<long long>(dataset.graph.num_edges()),
              static_cast<long long>(metrics.num_steps()));
  std::printf("records delivered with combiner:    %12lld\n",
              static_cast<long long>(records_in));
  std::printf("records an uncombined run delivers: %12lld\n",
              static_cast<long long>(uncombined));
  std::printf("reduction: %.1fx\n",
              static_cast<double>(uncombined) /
                  std::max<double>(1.0, static_cast<double>(records_in)));
  std::printf("total bytes in: %s\n",
              FormatBytes(metrics.TotalBytesIn()).c_str());
  std::printf(
      "\nexpected shape: combining caps each destination at one record per\n"
      "sending worker per step, so the reduction grows with the average\n"
      "in-degree (here ~%.0f edges/node over %lld workers).\n",
      static_cast<double>(dataset.graph.num_edges()) /
          static_cast<double>(dataset.graph.num_nodes()),
      static_cast<long long>(options.num_workers));
}

}  // namespace
}  // namespace inferturbo

int main() { inferturbo::Run(); }
