// Online serving benchmark and regression harness: a zipf query
// stream from concurrent threads against a ServingEngine while a
// background delta stream mutates the graph — the workload shape of
// an always-on scoring service (hot entities dominate lookups, the
// graph never stops changing).
//
//   serial_query  one thread, zero batch window: the per-query floor
//   zipf_serve    N threads through the request batcher, deltas racing
//   delta_stream  the background writer's per-delta cost + cone size
//
// Percentiles are exact (sorted per-query latencies, not histogram
// buckets). Host-invariant gates: the final served logits fold into a
// logits_crc that must match the baseline bit-for-bit, and the delta
// stream's total recomputation count is an exact function of the
// seeded schedule. Host-speed-dependent numbers (QPS, p50/p99) are
// gated only through ratios and generous timing tolerances.
//
// The run FAILS — not just reports — when an invariant breaks: served
// logits diverging from a from-scratch reference pass on the final
// graph, a cold cache that never hits, or a delta that recomputes
// nothing.
//
// Usage:
//   bench_serving                  full sweep, writes BENCH_serving.json
//   bench_serving --quick          CI smoke: same rows, fewer queries
//   bench_serving --out=PATH       write the JSON elsewhere
//   bench_serving --check=PATH     diff against a baseline JSON; exits 1 on
//                                  timing regression past --check-tolerance,
//                                  a p99_over_serial blowup past
//                                  --ratio-tolerance, cone drift, or a
//                                  logits_crc mismatch
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/crc32.h"
#include "src/common/flags.h"
#include "src/common/timer.h"
#include "src/inference/reference_inference.h"
#include "src/serving/serving_engine.h"
#include "src/serving/workload.h"
#include "src/telemetry/metrics.h"

namespace inferturbo {
namespace {

constexpr std::int64_t kDeltas = 16;
constexpr std::int64_t kNodesPerQuery = 4;
constexpr double kZipfAlpha = 1.1;

volatile std::uint64_t g_sink = 0;

struct BenchRecord {
  std::string op;
  double seconds_per_iter = 0.0;  // p50 latency (serve rows), mean (delta)
  double p99_seconds = 0.0;
  double qps = 0.0;
  double cache_hit_rate = 0.0;
  std::int64_t queries = 0;
  std::int64_t recomputed = 0;
};

struct Percentiles {
  double p50 = 0.0;
  double p99 = 0.0;
};

Percentiles ExactPercentiles(std::vector<double>* latencies) {
  Percentiles out;
  if (latencies->empty()) return out;
  std::sort(latencies->begin(), latencies->end());
  const auto at = [&](double q) {
    const std::size_t rank = static_cast<std::size_t>(
        q * static_cast<double>(latencies->size() - 1));
    return (*latencies)[rank];
  };
  out.p50 = at(0.50);
  out.p99 = at(0.99);
  return out;
}

void WriteJson(const std::string& path,
               const std::vector<BenchRecord>& records, bool quick,
               const std::string& shape, std::uint64_t logits_crc,
               double p99_over_serial) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "bench_serving: cannot write %s\n", path.c_str());
    std::exit(2);
  }
  out << "{\n";
  out << "  \"bench\": \"bench_serving\",\n";
  out << "  \"mode\": \"" << (quick ? "quick" : "full") << "\",\n";
  out << "  \"shape\": \"" << shape << "\",\n";
  out << "  \"logits_crc\": \"" << logits_crc << "\",\n";
  char ratio[64];
  std::snprintf(ratio, sizeof(ratio), "  \"p99_over_serial\": %.3f,\n",
                p99_over_serial);
  out << ratio;
  out << "  \"results\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    char line[512];
    std::snprintf(
        line, sizeof(line),
        "    {\"op\": \"%s\", \"seconds_per_iter\": %.6e, "
        "\"p99_seconds\": %.6e, \"qps\": %.1f, \"cache_hit_rate\": %.4f, "
        "\"queries\": %lld, \"recomputed\": %lld}%s",
        r.op.c_str(), r.seconds_per_iter, r.p99_seconds, r.qps,
        r.cache_hit_rate, static_cast<long long>(r.queries),
        static_cast<long long>(r.recomputed),
        i + 1 < records.size() ? "," : "");
    out << line << "\n";
  }
  out << "  ]\n}\n";
  std::printf("\nwrote %zu records to %s\n", records.size(), path.c_str());
}

std::string ExtractString(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\": \"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return "";
  const std::size_t begin = at + needle.size();
  const std::size_t end = line.find('"', begin);
  return end == std::string::npos ? "" : line.substr(begin, end - begin);
}

double ExtractNumber(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return 0.0;
  return std::strtod(line.c_str() + at + needle.size(), nullptr);
}

int CheckAgainstBaseline(const std::vector<BenchRecord>& records,
                         std::uint64_t logits_crc, double p99_over_serial,
                         const std::string& path, double tolerance,
                         double ratio_tolerance) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_serving: cannot read baseline %s\n",
                 path.c_str());
    return 1;
  }
  int compared = 0;
  int regressions = 0;
  std::string line;
  while (std::getline(in, line)) {
    const std::string baseline_crc = ExtractString(line, "logits_crc");
    if (!baseline_crc.empty() &&
        baseline_crc != std::to_string(logits_crc)) {
      ++regressions;
      std::printf("CHECKSUM MISMATCH: served logits %llu vs baseline %s — "
                  "the serving path changed the bits\n",
                  static_cast<unsigned long long>(logits_crc),
                  baseline_crc.c_str());
    }
    // Host-speed-invariant tail gate: batching overhead relative to
    // the serial floor, not absolute microseconds.
    if (line.find("\"p99_over_serial\"") != std::string::npos) {
      const double baseline_ratio = ExtractNumber(line, "p99_over_serial");
      if (baseline_ratio > 0.0 &&
          p99_over_serial > baseline_ratio * (1.0 + ratio_tolerance)) {
        ++regressions;
        std::printf("TAIL GATE: p99_over_serial %.2f vs baseline %.2f "
                    "(tolerance %.0f%%)\n",
                    p99_over_serial, baseline_ratio,
                    ratio_tolerance * 100.0);
      }
    }
    const std::string op = ExtractString(line, "op");
    if (op.empty()) continue;
    for (const BenchRecord& r : records) {
      if (r.op != op) continue;
      ++compared;
      const std::int64_t baseline_recomputed =
          static_cast<std::int64_t>(ExtractNumber(line, "recomputed"));
      if (baseline_recomputed != r.recomputed) {
        ++regressions;
        std::printf("CONE DRIFT %s: recomputed %lld vs baseline %lld\n",
                    op.c_str(), static_cast<long long>(r.recomputed),
                    static_cast<long long>(baseline_recomputed));
      }
      const double baseline_seconds = ExtractNumber(line, "seconds_per_iter");
      if (baseline_seconds > 0.0 &&
          r.seconds_per_iter > baseline_seconds * (1.0 + tolerance)) {
        ++regressions;
        std::printf("REGRESSION %s: p50 %.3f ms vs baseline %.3f ms "
                    "(tolerance %.0f%%)\n",
                    op.c_str(), r.seconds_per_iter * 1e3,
                    baseline_seconds * 1e3, tolerance * 100.0);
      }
    }
  }
  std::printf("baseline check: %d rows compared, %d regressions\n", compared,
              regressions);
  return regressions == 0 ? 0 : 1;
}

int Main(int argc, const char* const argv[]) {
  const Result<FlagParser> flags = FlagParser::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 2;
  }
  const bool quick = flags->GetBool("quick", false);
  const std::string out_path = flags->GetString("out", "BENCH_serving.json");
  const std::string check_path = flags->GetString("check", "");
  const double tolerance = flags->GetDouble("check-tolerance", 0.5);
  const double ratio_tolerance = flags->GetDouble("ratio-tolerance", 1.0);
  const std::int64_t num_threads = flags->GetInt("threads", 4);
  const std::int64_t serial_queries = quick ? 200 : 1000;
  const std::int64_t queries_per_thread = quick ? 300 : 2000;

  SetMetricsEnabled(true);
  bench::PrintHeader("Extension: online serving",
                     "zipf query stream vs background delta stream");
  PlantedGraphConfig config;
  config.num_nodes = 20000;
  config.avg_degree = 8.0;
  config.num_classes = 4;
  config.feature_dim = 32;
  config.seed = 71;
  const Dataset dataset = MakePlantedDataset("serving-bench", config);
  const std::unique_ptr<GnnModel> model =
      bench::UntrainedModelOn(dataset, "sage", /*hidden_dim=*/32);

  WallTimer warm_timer;
  ServingOptions serve_options;
  serve_options.batch_window_seconds = 0.0005;
  serve_options.max_batch = 64;
  ServingEngine engine(model.get(), Graph(dataset.graph), serve_options);
  std::printf("warm store: %.3fs full forward over %lld nodes\n",
              warm_timer.ElapsedSeconds(),
              static_cast<long long>(config.num_nodes));

  std::vector<BenchRecord> records;
  int failures = 0;

  // serial_query: the single-client floor. A second engine with a zero
  // window so no coalescing wait pollutes the floor, cache off so every
  // query pays the head pass (the worst case the batcher amortizes).
  {
    ServingOptions serial_options;
    serial_options.batch_window_seconds = 0.0;
    serial_options.cache_logits = false;
    ServingEngine serial_engine(model.get(), Graph(dataset.graph),
                                serial_options);
    ZipfQueryStream stream(config.num_nodes, kZipfAlpha, /*seed=*/31);
    std::vector<double> latencies;
    latencies.reserve(static_cast<std::size_t>(serial_queries));
    WallTimer timer;
    for (std::int64_t i = 0; i < serial_queries; ++i) {
      WallTimer per_query;
      const Result<QueryResponse> response =
          serial_engine.Query(stream.Next(kNodesPerQuery));
      latencies.push_back(per_query.ElapsedSeconds());
      if (!response.ok()) ++failures;
    }
    const double wall = timer.ElapsedSeconds();
    const Percentiles pct = ExactPercentiles(&latencies);
    BenchRecord r;
    r.op = "serial_query";
    r.seconds_per_iter = pct.p50;
    r.p99_seconds = pct.p99;
    r.qps = static_cast<double>(serial_queries) / wall;
    r.queries = serial_queries;
    records.push_back(r);
    std::printf("%-13s p50 %8.1f us  p99 %8.1f us  %8.0f qps\n",
                r.op.c_str(), pct.p50 * 1e6, pct.p99 * 1e6, r.qps);
  }

  // zipf_serve: concurrent threads through the batcher while the main
  // thread applies the delta schedule.
  std::uint64_t logits_crc = 0;
  double p99_over_serial = 0.0;
  {
    std::vector<std::vector<double>> per_thread_latencies(
        static_cast<std::size_t>(num_threads));
    std::atomic<std::int64_t> query_errors{0};
    WallTimer timer;
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(num_threads));
    for (std::int64_t t = 0; t < num_threads; ++t) {
      threads.emplace_back([&, t] {
        ZipfQueryStream stream(config.num_nodes, kZipfAlpha,
                               100 + static_cast<std::uint64_t>(t));
        std::vector<double>& latencies =
            per_thread_latencies[static_cast<std::size_t>(t)];
        latencies.reserve(static_cast<std::size_t>(queries_per_thread));
        for (std::int64_t i = 0; i < queries_per_thread; ++i) {
          WallTimer per_query;
          const Result<QueryResponse> response =
              engine.Query(stream.Next(kNodesPerQuery));
          latencies.push_back(per_query.ElapsedSeconds());
          if (!response.ok()) {
            query_errors.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }

    DeltaStream::Options delta_options;
    delta_options.feature_updates = 4;
    delta_options.new_edges = 2;
    delta_options.new_node_every = 4;
    delta_options.zipf_alpha = kZipfAlpha;
    delta_options.seed = 19;
    DeltaStream delta_stream(dataset.graph, delta_options);
    std::int64_t recomputed_total = 0;
    double delta_seconds = 0.0;
    for (std::int64_t d = 0; d < kDeltas; ++d) {
      const Result<DeltaApplied> applied =
          engine.ApplyMutation(delta_stream.Next());
      if (!applied.ok()) {
        std::fprintf(stderr, "bench_serving: %s\n",
                     applied.status().ToString().c_str());
        return 2;
      }
      recomputed_total += applied->recomputed_nodes;
      delta_seconds += applied->seconds;
      if (applied->recomputed_nodes <= 0) {
        std::fprintf(stderr,
                     "INVARIANT: delta %lld recomputed nothing\n",
                     static_cast<long long>(d));
        ++failures;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    for (std::thread& thread : threads) thread.join();
    const double wall = timer.ElapsedSeconds();

    std::vector<double> latencies;
    for (const std::vector<double>& thread_latencies : per_thread_latencies) {
      latencies.insert(latencies.end(), thread_latencies.begin(),
                       thread_latencies.end());
    }
    const Percentiles pct = ExactPercentiles(&latencies);
    const ServingStats stats = engine.stats();
    if (query_errors.load() != 0) {
      std::fprintf(stderr, "INVARIANT: %lld queries failed\n",
                   static_cast<long long>(query_errors.load()));
      ++failures;
    }
    if (stats.cache_hits == 0) {
      std::fprintf(stderr, "INVARIANT: zipf stream never hit the logits "
                           "cache\n");
      ++failures;
    }

    BenchRecord serve;
    serve.op = "zipf_serve";
    serve.seconds_per_iter = pct.p50;
    serve.p99_seconds = pct.p99;
    serve.qps = static_cast<double>(num_threads * queries_per_thread) / wall;
    serve.cache_hit_rate = stats.cache_hit_rate();
    serve.queries = num_threads * queries_per_thread;
    records.push_back(serve);
    std::printf("%-13s p50 %8.1f us  p99 %8.1f us  %8.0f qps  "
                "hit rate %.1f%%  occupancy %.2f\n",
                serve.op.c_str(), pct.p50 * 1e6, pct.p99 * 1e6, serve.qps,
                serve.cache_hit_rate * 100.0, stats.mean_batch_occupancy);

    BenchRecord delta_row;
    delta_row.op = "delta_stream";
    delta_row.seconds_per_iter =
        delta_seconds / static_cast<double>(kDeltas);
    delta_row.recomputed = recomputed_total;
    delta_row.queries = kDeltas;
    records.push_back(delta_row);
    std::printf("%-13s %lld deltas, mean %.2f ms, %lld node states "
                "recomputed (full pass would be %lld)\n",
                delta_row.op.c_str(), static_cast<long long>(kDeltas),
                delta_row.seconds_per_iter * 1e3,
                static_cast<long long>(recomputed_total),
                static_cast<long long>(config.num_nodes *
                                       model->num_layers() * kDeltas));

    const double serial_p99 = records[0].p99_seconds;
    p99_over_serial =
        serial_p99 > 0.0 ? pct.p99 / serial_p99 : 0.0;
    std::printf("p99_over_serial: %.2fx\n", p99_over_serial);
  }

  // Exactness invariant: the full served logits on the final graph
  // must be bit-identical to a from-scratch reference pass; their CRC
  // is the cross-host determinism witness.
  {
    const std::shared_ptr<const Graph> final_graph = engine.graph_snapshot();
    std::vector<NodeId> all(
        static_cast<std::size_t>(final_graph->num_nodes()));
    std::iota(all.begin(), all.end(), 0);
    const Result<QueryResponse> served = engine.Query(all);
    if (!served.ok()) {
      std::fprintf(stderr, "bench_serving: final query failed\n");
      return 2;
    }
    const Tensor reference = FullGraphReferenceLogits(*model, *final_graph);
    const std::size_t bytes = static_cast<std::size_t>(
        served->logits.rows() * served->logits.cols()) * sizeof(float);
    logits_crc = Crc32(served->logits.RowPtr(0), bytes);
    g_sink = g_sink + logits_crc;
    if (served->logits.rows() != reference.rows() ||
        logits_crc != Crc32(reference.RowPtr(0), bytes)) {
      std::fprintf(stderr, "INVARIANT: served logits diverge from the "
                           "from-scratch reference on the final graph\n");
      ++failures;
    }
    std::printf("final graph: %lld nodes, epoch %lld, logits_crc %llu\n",
                static_cast<long long>(final_graph->num_nodes()),
                static_cast<long long>(engine.epoch()),
                static_cast<unsigned long long>(logits_crc));
  }

  char shape[64];
  std::snprintf(shape, sizeof(shape), "%lldx%lldt%lld",
                static_cast<long long>(config.num_nodes),
                static_cast<long long>(config.feature_dim),
                static_cast<long long>(num_threads));
  WriteJson(out_path, records, quick, shape, logits_crc, p99_over_serial);

  if (failures != 0) {
    std::fprintf(stderr, "bench_serving: %d invariant violation(s)\n",
                 failures);
    return 1;
  }
  if (!check_path.empty()) {
    return CheckAgainstBaseline(records, logits_crc, p99_over_serial,
                                check_path, tolerance, ratio_tolerance);
  }
  return 0;
}

}  // namespace
}  // namespace inferturbo

int main(int argc, char** argv) { return inferturbo::Main(argc, argv); }
