// Fig. 11: input IO bytes per instance vs its initial input record
// count, with and without partial-gather, on an in-degree-skewed
// graph. The paper's shape: the strategy caps every instance's input
// at a constant level (each node receives at most one pre-pooled
// message per peer instance), saving most on the heaviest tail.
#include <cstdio>

#include <algorithm>

#include "bench/bench_common.h"
#include "src/common/byte_size.h"
#include "src/inference/inferturbo_pregel.h"

namespace inferturbo {
namespace {

std::vector<WorkerStepMetrics> TotalsFor(const Dataset& dataset,
                                         const GnnModel& model,
                                         bool partial_gather) {
  InferTurboOptions options;
  options.num_workers = 16;
  options.strategies.partial_gather = partial_gather;
  const Result<InferenceResult> r =
      RunInferTurboPregel(dataset.graph, model, options);
  INFERTURBO_CHECK(r.ok()) << r.status().ToString();
  return r->metrics.PerWorkerTotals();
}

void Run() {
  bench::PrintHeader("Fig. 11",
                     "input bytes per instance, +/- partial-gather");
  PowerLawConfig config;
  config.num_nodes = 30000;
  config.avg_degree = 8.0;
  config.alpha = 1.7;
  config.skew = PowerLawSkew::kIn;
  config.seed = 47;
  const Dataset dataset = MakePowerLawDataset(config, /*feature_dim=*/32);
  const std::unique_ptr<GnnModel> model =
      bench::UntrainedModelOn(dataset, "sage", /*hidden_dim=*/32);

  const std::vector<WorkerStepMetrics> base =
      TotalsFor(dataset, *model, false);
  const std::vector<WorkerStepMetrics> pg = TotalsFor(dataset, *model, true);

  // Pair instances by their *base* record count (the x-axis).
  std::vector<std::size_t> order(base.size());
  for (std::size_t i = 0; i < base.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return base[a].records_in < base[b].records_in;
  });

  std::printf("%12s | %14s | %14s | %8s\n", "base records", "base bytes_in",
              "pg bytes_in", "saved");
  bench::PrintRule();
  std::uint64_t base_total = 0, pg_total = 0;
  std::uint64_t base_tail = 0, pg_tail = 0;
  const std::size_t tail_begin = order.size() - order.size() / 10 - 1;
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    const std::size_t i = order[rank];
    base_total += base[i].bytes_in;
    pg_total += pg[i].bytes_in;
    if (rank >= tail_begin) {
      base_tail += base[i].bytes_in;
      pg_tail += pg[i].bytes_in;
    }
    std::printf("%12lld | %14s | %14s | %7.1f%%\n",
                static_cast<long long>(base[i].records_in),
                FormatBytes(base[i].bytes_in).c_str(),
                FormatBytes(pg[i].bytes_in).c_str(),
                base[i].bytes_in == 0
                    ? 0.0
                    : 100.0 * (1.0 - static_cast<double>(pg[i].bytes_in) /
                                         static_cast<double>(
                                             base[i].bytes_in)));
  }
  bench::PrintRule();
  std::printf("total input saved: %.1f%% (paper: ~25%% of all traffic)\n",
              100.0 * (1.0 - static_cast<double>(pg_total) /
                                 static_cast<double>(base_total)));
  std::printf("tail-10%% instances saved: %.1f%% (paper: up to 73%%)\n",
              100.0 * (1.0 - static_cast<double>(pg_tail) /
                                 static_cast<double>(base_tail)));
}

}  // namespace
}  // namespace inferturbo

int main() { inferturbo::Run(); }
