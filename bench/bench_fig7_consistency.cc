// Fig. 7: prediction consistency over repeated runs. The traditional
// pipeline with fan-out sampling is re-run 10 times with different
// seeds; for every node we count how many *distinct* classes it was
// assigned. InferTurbo runs full-graph without sampling, so every node
// lands in exactly one class across runs.
#include <cstdio>

#include <map>
#include <set>

#include "bench/bench_common.h"
#include "src/inference/inferturbo_pregel.h"
#include "src/inference/traditional_pipeline.h"

namespace inferturbo {
namespace {

constexpr int kRuns = 10;

std::map<std::int64_t, std::int64_t> ClassCountHistogram(
    const std::vector<std::vector<std::int64_t>>& runs) {
  const std::size_t num_nodes = runs[0].size();
  std::map<std::int64_t, std::int64_t> histogram;
  for (std::size_t v = 0; v < num_nodes; ++v) {
    std::set<std::int64_t> classes;
    for (const auto& run : runs) classes.insert(run[v]);
    ++histogram[static_cast<std::int64_t>(classes.size())];
  }
  return histogram;
}

void Run() {
  bench::PrintHeader(
      "Fig. 7", "distinct predicted classes per node across 10 runs");
  // MAG240M-like class structure *with* power-law in-degrees: hub
  // nodes have thousands of in-neighbors, so even generous fan-outs
  // subsample somewhere and scores drift between runs.
  PlantedGraphConfig config;
  config.num_nodes = 2500;
  config.avg_degree = 12.0;
  config.num_classes = 32;
  config.feature_dim = 32;
  config.homophily = 0.6;
  config.noise = 1.6;
  config.in_skew_alpha = 1.3;
  config.train_fraction = 0.3;
  config.seed = 21;
  const Dataset dataset = MakePlantedDataset("mag-skewed", config);
  const std::unique_ptr<GnnModel> model = bench::TrainModelOn(
      dataset, "sage", /*hidden_dim=*/32, /*num_layers=*/2, /*epochs=*/6);
  const std::int64_t n = dataset.graph.num_nodes();
  std::int64_t max_in = 0;
  for (NodeId v = 0; v < n; ++v) {
    max_in = std::max(max_in, dataset.graph.InDegree(v));
  }
  std::printf("graph: %lld nodes, max in-degree %lld; trained SAGE\n",
              static_cast<long long>(n), static_cast<long long>(max_in));
  std::printf("%-10s | %8s %8s %8s %8s | %16s\n", "pipeline", "1", "2", "3",
              "4+", "unstable nodes");
  bench::PrintRule();

  for (const std::int64_t fanout : {10L, 50L, 100L, 1000L}) {
    std::vector<std::vector<std::int64_t>> runs;
    for (int run = 0; run < kRuns; ++run) {
      TraditionalPipelineOptions options;
      options.num_workers = 8;
      options.fanout = fanout;
      options.seed = static_cast<std::uint64_t>(run + 1);
      const Result<InferenceResult> r =
          RunTraditionalPipeline(dataset.graph, *model, options);
      INFERTURBO_CHECK(r.ok()) << r.status().ToString();
      runs.push_back(r->predictions);
    }
    const auto histogram = ClassCountHistogram(runs);
    std::int64_t ge4 = 0, unstable = 0;
    for (const auto& [classes, count] : histogram) {
      if (classes >= 4) ge4 += count;
      if (classes >= 2) unstable += count;
    }
    const auto at = [&](std::int64_t k) {
      const auto it = histogram.find(k);
      return it == histogram.end() ? 0L : it->second;
    };
    std::printf("nbr%-7lld | %8lld %8lld %8lld %8lld | %9lld (%4.1f%%)\n",
                static_cast<long long>(fanout),
                static_cast<long long>(at(1)), static_cast<long long>(at(2)),
                static_cast<long long>(at(3)), static_cast<long long>(ge4),
                static_cast<long long>(unstable),
                100.0 * static_cast<double>(unstable) /
                    static_cast<double>(n));
  }

  // InferTurbo: 10 runs, same seed-free full-graph job.
  std::vector<std::vector<std::int64_t>> runs;
  for (int run = 0; run < kRuns; ++run) {
    InferTurboOptions options;
    options.num_workers = 8;
    options.strategies.partial_gather = true;
    const Result<InferenceResult> r =
        RunInferTurboPregel(dataset.graph, *model, options);
    INFERTURBO_CHECK(r.ok()) << r.status().ToString();
    runs.push_back(r->predictions);
  }
  const auto histogram = ClassCountHistogram(runs);
  std::int64_t unstable = 0;
  for (const auto& [classes, count] : histogram) {
    if (classes >= 2) unstable += count;
  }
  const auto stable_it = histogram.find(1);
  std::printf("%-10s | %8lld %8d %8d %8d | %9lld (%4.1f%%)\n", "ours",
              static_cast<long long>(
                  stable_it == histogram.end() ? 0 : stable_it->second),
              0, 0, 0, static_cast<long long>(unstable),
              100.0 * static_cast<double>(unstable) / static_cast<double>(n));
  std::printf(
      "\nexpected shape (paper Fig. 7): smaller fan-outs flip more nodes\n"
      "(paper: ~30%% unstable at nbr10, ~0.1%% at nbr1000); ours is 0 by\n"
      "construction.\n");
}

}  // namespace
}  // namespace inferturbo

int main() { inferturbo::Run(); }
