// Fig. 13: output IO bytes by worker (sorted), with and without the
// shadow-nodes strategy, on an out-degree-skewed graph. The x-axis is
// the sorted worker index because shadow-nodes *re-homes* records —
// mirrors move a hub's out-edges onto other instances — so instances
// can't be paired by their original record counts. The paper's shape:
// the sorted curve flattens (the heaviest workers shed bytes onto the
// lightest).
#include <cstdio>

#include <algorithm>

#include "bench/bench_common.h"
#include "src/common/byte_size.h"
#include "src/inference/inferturbo_pregel.h"

namespace inferturbo {
namespace {

std::vector<std::uint64_t> SortedBytesOut(const Dataset& dataset,
                                          const GnnModel& model,
                                          bool shadow_nodes) {
  InferTurboOptions options;
  options.num_workers = 16;
  options.strategies.partial_gather = false;
  options.strategies.shadow_nodes = shadow_nodes;
  const Result<InferenceResult> r =
      RunInferTurboPregel(dataset.graph, model, options);
  INFERTURBO_CHECK(r.ok()) << r.status().ToString();
  std::vector<std::uint64_t> bytes;
  for (const WorkerStepMetrics& m : r->metrics.PerWorkerTotals()) {
    bytes.push_back(m.bytes_out);
  }
  std::sort(bytes.begin(), bytes.end());
  return bytes;
}

void Run() {
  bench::PrintHeader("Fig. 13",
                     "output bytes by sorted worker, +/- shadow-nodes");
  PowerLawConfig config;
  config.num_nodes = 30000;
  config.avg_degree = 8.0;
  config.alpha = 1.7;
  config.skew = PowerLawSkew::kOut;
  config.seed = 59;
  const Dataset dataset = MakePowerLawDataset(config, /*feature_dim=*/32);
  const std::unique_ptr<GnnModel> model =
      bench::UntrainedModelOn(dataset, "sage", /*hidden_dim=*/32);

  const std::vector<std::uint64_t> base =
      SortedBytesOut(dataset, *model, false);
  const std::vector<std::uint64_t> sn =
      SortedBytesOut(dataset, *model, true);

  std::printf("%6s | %14s | %14s\n", "rank", "base bytes_out",
              "sn bytes_out");
  bench::PrintRule();
  for (std::size_t i = 0; i < base.size(); ++i) {
    std::printf("%6zu | %14s | %14s\n", i, FormatBytes(base[i]).c_str(),
                FormatBytes(sn[i]).c_str());
  }
  bench::PrintRule();
  const double base_spread =
      static_cast<double>(base.back()) /
      std::max<double>(1.0, static_cast<double>(base.front()));
  const double sn_spread =
      static_cast<double>(sn.back()) /
      std::max<double>(1.0, static_cast<double>(sn.front()));
  std::printf("max/min spread: base %.2fx -> shadow-nodes %.2fx\n",
              base_spread, sn_spread);
  std::printf("heaviest worker: base %s -> shadow-nodes %s "
              "(paper: ~53%% tail reduction)\n",
              FormatBytes(base.back()).c_str(),
              FormatBytes(sn.back()).c_str());
}

}  // namespace
}  // namespace inferturbo

int main() { inferturbo::Run(); }
