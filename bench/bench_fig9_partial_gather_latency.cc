// Fig. 9: per-instance latency vs the number of in-edges on the
// instance, with and without the partial-gather strategy, on an
// in-degree-skewed Power-Law graph (SAGE, Pregel backend). The paper's
// shape: without the strategy, latency tracks in-edge count (hub
// instances straggle); with it, the scatter collapses onto the mean.
#include <cstdio>

#include <algorithm>

#include "bench/bench_common.h"
#include "src/graph/partition.h"
#include "src/inference/inferturbo_pregel.h"

namespace inferturbo {
namespace {

struct InstancePoint {
  std::int64_t in_edges;
  double latency;
};

std::vector<InstancePoint> RunOnce(const Dataset& dataset,
                                   const GnnModel& model,
                                   bool partial_gather,
                                   std::int64_t workers) {
  InferTurboOptions options;
  options.num_workers = workers;
  options.strategies.partial_gather = partial_gather;
  // The graph is ~1000x smaller than the paper's; scale the simulated
  // per-instance bandwidth down with it so communication skew keeps
  // its real weight against compute.
  options.cost_model.network_bytes_per_second = 50e6;
  const Result<InferenceResult> r =
      RunInferTurboPregel(dataset.graph, model, options);
  INFERTURBO_CHECK(r.ok()) << r.status().ToString();

  HashPartitioner partitioner(workers);
  std::vector<std::int64_t> in_edges(static_cast<std::size_t>(workers), 0);
  for (NodeId v = 0; v < dataset.graph.num_nodes(); ++v) {
    in_edges[static_cast<std::size_t>(partitioner.PartitionOf(v))] +=
        dataset.graph.InDegree(v);
  }
  const std::vector<double> latency = r->metrics.PerWorkerLatencySeconds();
  std::vector<InstancePoint> points;
  for (std::int64_t w = 0; w < workers; ++w) {
    points.push_back({in_edges[static_cast<std::size_t>(w)],
                      latency[static_cast<std::size_t>(w)]});
  }
  return points;
}

void PrintSeries(const char* name, const std::vector<InstancePoint>& points) {
  std::printf("\n%s: (instance in-edges -> latency ms)\n", name);
  std::vector<InstancePoint> sorted = points;
  std::sort(sorted.begin(), sorted.end(),
            [](const InstancePoint& a, const InstancePoint& b) {
              return a.in_edges < b.in_edges;
            });
  double mean = 0.0;
  for (const InstancePoint& p : sorted) mean += p.latency;
  mean /= static_cast<double>(sorted.size());
  double var = 0.0;
  for (const InstancePoint& p : sorted) {
    var += (p.latency - mean) * (p.latency - mean);
  }
  var /= static_cast<double>(sorted.size());
  for (const InstancePoint& p : sorted) {
    std::printf("  %9lld -> %8.2f\n", static_cast<long long>(p.in_edges),
                1e3 * p.latency);
  }
  std::printf("  mean %.2f ms, stddev %.2f ms, max/mean %.2f\n", 1e3 * mean,
              1e3 * std::sqrt(var),
              sorted.back().latency > 0.0
                  ? std::max_element(sorted.begin(), sorted.end(),
                                     [](const InstancePoint& a,
                                        const InstancePoint& b) {
                                       return a.latency < b.latency;
                                     })
                        ->latency /
                        mean
                  : 0.0);
}

void Run() {
  bench::PrintHeader(
      "Fig. 9",
      "per-instance latency vs in-edges, +/- partial-gather (SAGE)");
  PowerLawConfig config;
  config.num_nodes = 30000;
  config.avg_degree = 8.0;
  config.alpha = 1.7;
  config.skew = PowerLawSkew::kIn;  // the in-degree problem, isolated
  config.seed = 41;
  const Dataset dataset = MakePowerLawDataset(config, /*feature_dim=*/32);
  const std::unique_ptr<GnnModel> model =
      bench::UntrainedModelOn(dataset, "sage", /*hidden_dim=*/32);
  const std::int64_t workers = 16;
  std::printf("graph: %lld nodes, %lld edges, max in-degree %lld\n",
              static_cast<long long>(dataset.graph.num_nodes()),
              static_cast<long long>(dataset.graph.num_edges()),
              static_cast<long long>([&] {
                std::int64_t m = 0;
                for (NodeId v = 0; v < dataset.graph.num_nodes(); ++v) {
                  m = std::max(m, dataset.graph.InDegree(v));
                }
                return m;
              }()));

  PrintSeries("base (no strategy)",
              RunOnce(dataset, *model, /*partial_gather=*/false, workers));
  PrintSeries("partial-gather",
              RunOnce(dataset, *model, /*partial_gather=*/true, workers));
  std::printf(
      "\nexpected shape (paper Fig. 9): base latency rises with instance\n"
      "in-edges; partial-gather flattens the scatter toward the mean.\n");
}

}  // namespace
}  // namespace inferturbo

int main() { inferturbo::Run(); }
