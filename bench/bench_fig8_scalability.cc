// Fig. 8: resource (cpu time) and time cost vs data scale over three
// orders of magnitude of the Power-Law dataset, 2-layer GAT with
// embedding size 64, MapReduce backend (as in the paper — the Pregel
// cluster there couldn't fit the largest graph). The paper's shape:
// both curves are ~linear in the data scale.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/common/timer.h"
#include "src/inference/inferturbo_mapreduce.h"

namespace inferturbo {
namespace {

void Run() {
  bench::PrintHeader("Fig. 8",
                     "resource and time vs data scale (Power-Law, GAT)");
  std::printf("%-10s %-10s | %12s %12s | %14s\n", "#nodes", "#edges",
              "cpu (s)", "time (s)", "per-edge cost");
  bench::PrintRule();

  double first_cpu_per_edge = 0.0;
  for (const std::int64_t scale : {1000L, 10000L, 100000L}) {
    PowerLawConfig config;
    config.num_nodes = scale;
    config.avg_degree = 10.0;
    config.alpha = 2.0;
    config.seed = 31;
    const Dataset dataset = MakePowerLawDataset(config, /*feature_dim=*/64);
    const std::unique_ptr<GnnModel> model = bench::UntrainedModelOn(
        dataset, "gat", /*hidden_dim=*/64, /*num_layers=*/2, /*heads=*/4);

    InferTurboOptions options;
    options.num_workers = 8;
    options.strategies.partial_gather = true;
    const Result<InferenceResult> r =
        RunInferTurboMapReduce(dataset.graph, *model, options);
    INFERTURBO_CHECK(r.ok()) << r.status().ToString();

    const double cpu = r->metrics.TotalCpuSeconds();
    const double wall = r->metrics.SimulatedWallSeconds();
    const double per_edge =
        cpu / static_cast<double>(dataset.graph.num_edges());
    if (first_cpu_per_edge == 0.0) first_cpu_per_edge = per_edge;
    std::printf("%-10lld %-10lld | %12.2f %12.2f | %10.3g (%.2fx)\n",
                static_cast<long long>(dataset.graph.num_nodes()),
                static_cast<long long>(dataset.graph.num_edges()), cpu, wall,
                per_edge, per_edge / first_cpu_per_edge);
  }
  std::printf(
      "\nexpected shape (paper Fig. 8): cpu and time grow ~linearly with\n"
      "scale — per-edge cost stays roughly flat across three decades.\n");
}

}  // namespace
}  // namespace inferturbo

int main() { inferturbo::Run(); }
