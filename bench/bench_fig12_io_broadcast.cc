// Fig. 12: output IO bytes per instance vs its initial output record
// count, with and without the broadcast strategy, on an
// out-degree-skewed graph. The paper's shape: hub instances'
// output collapses (one payload per machine + cheap id references
// instead of a full embedding per out-edge).
#include <cstdio>

#include <algorithm>

#include "bench/bench_common.h"
#include "src/common/byte_size.h"
#include "src/inference/inferturbo_pregel.h"

namespace inferturbo {
namespace {

std::vector<WorkerStepMetrics> TotalsFor(const Dataset& dataset,
                                         const GnnModel& model,
                                         bool broadcast) {
  InferTurboOptions options;
  options.num_workers = 16;
  options.strategies.partial_gather = false;
  options.strategies.broadcast = broadcast;
  const Result<InferenceResult> r =
      RunInferTurboPregel(dataset.graph, model, options);
  INFERTURBO_CHECK(r.ok()) << r.status().ToString();
  return r->metrics.PerWorkerTotals();
}

void Run() {
  bench::PrintHeader("Fig. 12", "output bytes per instance, +/- broadcast");
  PowerLawConfig config;
  config.num_nodes = 30000;
  config.avg_degree = 8.0;
  config.alpha = 1.7;
  config.skew = PowerLawSkew::kOut;
  config.seed = 53;
  const Dataset dataset = MakePowerLawDataset(config, /*feature_dim=*/32);
  const std::unique_ptr<GnnModel> model =
      bench::UntrainedModelOn(dataset, "sage", /*hidden_dim=*/32);

  const std::vector<WorkerStepMetrics> base =
      TotalsFor(dataset, *model, false);
  const std::vector<WorkerStepMetrics> bc = TotalsFor(dataset, *model, true);

  std::vector<std::size_t> order(base.size());
  for (std::size_t i = 0; i < base.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return base[a].records_out < base[b].records_out;
  });

  std::printf("%12s | %14s | %14s | %8s\n", "base records",
              "base bytes_out", "bc bytes_out", "saved");
  bench::PrintRule();
  std::uint64_t base_tail = 0, bc_tail = 0;
  const std::size_t tail_begin = order.size() - order.size() / 10 - 1;
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    const std::size_t i = order[rank];
    if (rank >= tail_begin) {
      base_tail += base[i].bytes_out;
      bc_tail += bc[i].bytes_out;
    }
    std::printf("%12lld | %14s | %14s | %7.1f%%\n",
                static_cast<long long>(base[i].records_out),
                FormatBytes(base[i].bytes_out).c_str(),
                FormatBytes(bc[i].bytes_out).c_str(),
                base[i].bytes_out == 0
                    ? 0.0
                    : 100.0 * (1.0 - static_cast<double>(bc[i].bytes_out) /
                                         static_cast<double>(
                                             base[i].bytes_out)));
  }
  bench::PrintRule();
  std::printf("tail-10%% instances saved: %.1f%% (paper: ~42%% for BC)\n",
              100.0 * (1.0 - static_cast<double>(bc_tail) /
                                 static_cast<double>(base_tail)));
}

}  // namespace
}  // namespace inferturbo

int main() { inferturbo::Run(); }
