// Table II: test-set quality of SAGE and GAT on the three real-world
// dataset analogues, scored through (a) the traditional
// training-style pipeline with full neighborhoods — the PyG/DGL
// column's role — and (b) InferTurbo full-graph inference (Pregel
// backend). The paper's claim is parity: InferTurbo changes *how*
// inference runs, never the math, so the metric matches and the two
// pipelines agree node-for-node.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/inference/inferturbo_pregel.h"
#include "src/inference/traditional_pipeline.h"
#include "src/nn/metrics.h"

namespace inferturbo {
namespace {

double Score(const Dataset& dataset, const Tensor& logits) {
  if (dataset.graph.is_multi_label()) {
    return MicroF1On(logits, dataset.graph.multi_labels(),
                     dataset.graph.test_nodes());
  }
  return AccuracyOn(logits, dataset.graph.labels(),
                    dataset.graph.test_nodes());
}

void Run() {
  bench::PrintHeader(
      "Table II",
      "effectiveness: traditional pipeline vs InferTurbo (test metric)");
  std::printf("%-5s %-14s | %12s %12s | %10s\n", "model", "dataset",
              "traditional", "inferturbo", "agreement");
  bench::PrintRule();

  for (const std::string model_kind : {"sage", "gat"}) {
    std::vector<Dataset> datasets;
    datasets.push_back(MakePpiLike(0.6));
    datasets.push_back(MakeProductsLike(0.2));
    datasets.push_back(MakeMag240mLike(0.3));
    for (Dataset& dataset : datasets) {
      const std::unique_ptr<GnnModel> model =
          bench::TrainModelOn(dataset, model_kind, /*hidden_dim=*/48,
                              /*num_layers=*/2, /*epochs=*/15);

      TraditionalPipelineOptions trad;
      trad.num_workers = 8;
      const Result<InferenceResult> traditional =
          RunTraditionalPipeline(dataset.graph, *model, trad);
      INFERTURBO_CHECK(traditional.ok()) << traditional.status().ToString();

      InferTurboOptions ours;
      ours.num_workers = 8;
      ours.strategies.partial_gather = true;
      const Result<InferenceResult> inferturbo =
          RunInferTurboPregel(dataset.graph, *model, ours);
      INFERTURBO_CHECK(inferturbo.ok()) << inferturbo.status().ToString();

      std::int64_t agree = 0;
      for (std::size_t v = 0; v < traditional->predictions.size(); ++v) {
        agree += traditional->predictions[v] == inferturbo->predictions[v];
      }
      std::printf("%-5s %-14s | %12.4f %12.4f | %9.2f%%\n",
                  model_kind.c_str(), dataset.name.c_str(),
                  Score(dataset, traditional->logits),
                  Score(dataset, inferturbo->logits),
                  100.0 * static_cast<double>(agree) /
                      static_cast<double>(traditional->predictions.size()));
    }
  }
  std::printf(
      "\nexpected shape (paper Tab. II): the two columns match per row —\n"
      "full-graph inference is exact, not an approximation.\n");
}

}  // namespace
}  // namespace inferturbo

int main() { inferturbo::Run(); }
