// Fig. 10: variance of per-instance time cost under the large
// out-degree problem, for Base / shadow-nodes (SN) / broadcast (BC) /
// SN+BC, on an out-degree-skewed Power-Law graph (SAGE, Pregel
// backend). The paper's shape: every strategy cuts the variance;
// BC edges out SN (SN pays in-edge duplication); SN+BC is best for
// SAGE since its messages are identical across out-edges.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/inference/inferturbo_pregel.h"

namespace inferturbo {
namespace {

double VarianceFor(const Dataset& dataset, const GnnModel& model,
                   bool shadow_nodes, bool broadcast,
                   std::int64_t threshold) {
  InferTurboOptions options;
  options.num_workers = 16;
  options.strategies.partial_gather = false;
  options.strategies.shadow_nodes = shadow_nodes;
  options.strategies.broadcast = broadcast;
  options.strategies.threshold_override = threshold;
  // Bandwidth scaled with the graph (see bench_fig9 comment).
  options.cost_model.network_bytes_per_second = 50e6;
  const Result<InferenceResult> r =
      RunInferTurboPregel(dataset.graph, model, options);
  INFERTURBO_CHECK(r.ok()) << r.status().ToString();
  return LatencyVariance(r->metrics);
}

void Run() {
  bench::PrintHeader(
      "Fig. 10",
      "variance of instance time for out-degree hubs: Base/SN/BC/SN+BC");
  PowerLawConfig config;
  config.num_nodes = 30000;
  config.avg_degree = 8.0;
  config.alpha = 1.7;
  config.skew = PowerLawSkew::kOut;  // the out-degree problem, isolated
  config.seed = 43;
  const Dataset dataset = MakePowerLawDataset(config, /*feature_dim=*/32);
  const std::unique_ptr<GnnModel> model =
      bench::UntrainedModelOn(dataset, "sage", /*hidden_dim=*/32);
  const std::int64_t threshold = StrategyConfig().HubThreshold(
      dataset.graph.num_edges(), /*total_workers=*/16);
  std::printf("graph: %lld nodes, %lld edges; hub threshold %lld\n",
              static_cast<long long>(dataset.graph.num_nodes()),
              static_cast<long long>(dataset.graph.num_edges()),
              static_cast<long long>(threshold));

  const double base = VarianceFor(dataset, *model, false, false, threshold);
  const double sn = VarianceFor(dataset, *model, true, false, threshold);
  const double bc = VarianceFor(dataset, *model, false, true, threshold);
  const double both = VarianceFor(dataset, *model, true, true, threshold);

  std::printf("\n%-8s | %16s | %10s\n", "variant", "latency variance",
              "vs base");
  bench::PrintRule();
  const auto row = [&](const char* name, double v) {
    std::printf("%-8s | %16.6g | %9.2f%%\n", name, v, 100.0 * v / base);
  };
  row("Base", base);
  row("SN", sn);
  row("BC", bc);
  row("SN+BC", both);
  std::printf(
      "\nexpected shape (paper Fig. 10): Base >> SN, BC, SN+BC — every\n"
      "strategy collapses the straggler variance. The paper ranks\n"
      "BC slightly ahead of SN (SN pays in-edge duplication); at this\n"
      "scale the duplication cost is tiny, so the ordering among the\n"
      "three variants sits within measurement noise while the headline\n"
      "(>25x variance reduction, strategies compose) is preserved.\n");
}

}  // namespace
}  // namespace inferturbo

int main() { inferturbo::Run(); }
