// Table III: time and resource cost of full-graph scoring on the
// MAG240M analogue — traditional pipeline (the PyG/DGL columns' role)
// vs InferTurbo on MapReduce and on Pregel. Time is the simulated
// cluster makespan (per step, the slowest instance gates the barrier);
// resource is cpu time summed over instances, the paper's cpu·min.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/inference/inferturbo_mapreduce.h"
#include "src/inference/inferturbo_pregel.h"
#include "src/inference/traditional_pipeline.h"

namespace inferturbo {
namespace {

struct Cell {
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
};

void Run() {
  bench::PrintHeader("Table III",
                     "time and resource on the MAG240M analogue");
  const Dataset dataset = MakeMag240mLike(0.12, /*seed=*/3);
  std::printf("graph: %lld nodes, %lld edges\n",
              static_cast<long long>(dataset.graph.num_nodes()),
              static_cast<long long>(dataset.graph.num_edges()));
  std::printf("%-9s %-6s | %14s %14s %14s\n", "metric", "model",
              "traditional", "on-mr", "on-pregel");
  bench::PrintRule();

  for (const std::string model_kind : {"sage", "gat"}) {
    const std::unique_ptr<GnnModel> model =
        bench::UntrainedModelOn(dataset, model_kind, /*hidden_dim=*/32);

    Cell traditional, on_mr, on_pregel;
    {
      TraditionalPipelineOptions options;
      options.num_workers = 16;
      const Result<InferenceResult> r =
          RunTraditionalPipeline(dataset.graph, *model, options);
      INFERTURBO_CHECK(r.ok()) << r.status().ToString();
      traditional = {r->metrics.SimulatedWallSeconds(),
                     r->metrics.TotalCpuSeconds()};
    }
    {
      InferTurboOptions options;
      options.num_workers = 16;
      options.strategies.partial_gather = true;
      const Result<InferenceResult> r =
          RunInferTurboMapReduce(dataset.graph, *model, options);
      INFERTURBO_CHECK(r.ok()) << r.status().ToString();
      on_mr = {r->metrics.SimulatedWallSeconds(),
               r->metrics.TotalCpuSeconds()};
    }
    {
      InferTurboOptions options;
      options.num_workers = 16;
      options.strategies.partial_gather = true;
      const Result<InferenceResult> r =
          RunInferTurboPregel(dataset.graph, *model, options);
      INFERTURBO_CHECK(r.ok()) << r.status().ToString();
      on_pregel = {r->metrics.SimulatedWallSeconds(),
                   r->metrics.TotalCpuSeconds()};
    }

    std::printf("%-9s %-6s | %13.2fs %13.2fs %13.2fs\n", "time",
                model_kind.c_str(), traditional.wall_seconds,
                on_mr.wall_seconds, on_pregel.wall_seconds);
    std::printf("%-9s %-6s | %13.2fs %13.2fs %13.2fs\n", "cpu",
                model_kind.c_str(), traditional.cpu_seconds,
                on_mr.cpu_seconds, on_pregel.cpu_seconds);
    std::printf("%-9s %-6s | speedup over traditional: mr %.1fx, pregel "
                "%.1fx\n",
                "", model_kind.c_str(),
                traditional.wall_seconds / std::max(1e-9, on_mr.wall_seconds),
                traditional.wall_seconds /
                    std::max(1e-9, on_pregel.wall_seconds));
    bench::PrintRule();
  }
  std::printf(
      "expected shape (paper Tab. III): both InferTurbo backends beat the\n"
      "traditional pipeline by a wide margin (paper: 30-50x on 1000\n"
      "instances); Pregel edges out MapReduce on time, MapReduce trades\n"
      "time for lower resident memory.\n");
}

}  // namespace
}  // namespace inferturbo

int main() { inferturbo::Run(); }
