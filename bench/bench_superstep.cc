// Superstep data-plane benchmarks and regression harness: times the
// kernel-backed gather / combine / route path against the retained
// scalar oracles on power-law (zipf) inboxes and writes
// BENCH_superstep.json — one record per (op, shape, threads) with
// throughput, ns/message, and the measured speedup. Self-contained
// timing (no external benchmark framework), same JSON and flag shape
// as bench_kernels so the CI baseline check is shared tooling.
//
// Usage:
//   bench_superstep                    full sweep, writes BENCH_superstep.json
//   bench_superstep --quick            CI smoke: smaller inbox, shorter timing
//   bench_superstep --out=PATH         write the JSON elsewhere
//   bench_superstep --check=PATH       diff against a baseline JSON; exits 1
//                                      when any op's speedup-vs-scalar falls
//                                      below baseline/(1 + --check-tolerance).
//                                      Ratios, not absolute seconds: the
//                                      interleaved oracle cancels host speed.
//   bench_superstep --threads=LIST     comma-separated thread sweep
//                                      (default "1,2,8" — fixed so baselines
//                                      compare like against like)
//   bench_superstep --scaling-gate     exit 1 if any op's best multi-thread
//                                      time is worse than its 1-thread time
//                                      by more than --scaling-tolerance
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/flags.h"
#include "src/common/rng.h"
#include "src/common/timer.h"
#include "src/telemetry/perf_counters.h"
#include "src/gas/message.h"
#include "src/gas/superstep_gather.h"
#include "src/graph/partition.h"
#include "src/tensor/kernels/kernel_config.h"
#include "src/tensor/kernels/kernels.h"

namespace inferturbo {
namespace {

// Keeps results observable so the optimizer cannot delete a timed call.
volatile float g_sink = 0.0f;
void Sink(const Tensor& t) {
  if (t.size() > 0) g_sink = g_sink + t.data()[0];
}
void Sink(const GatherResult& r) {
  Sink(r.pooled);
  Sink(r.messages);
}

struct BenchRecord {
  std::string op;
  std::string shape;
  int threads = 1;
  double seconds_per_iter = 0.0;
  double gflops = 0.0;       // folded floats per second, 1e-9
  double ns_per_elem = 0.0;  // per message
  double speedup_vs_reference = 0.0;
  // Hardware counters per fast-side iteration; 0 when perf_event_open
  // is unavailable. Calling-thread counters only, so multi-thread rows
  // undercount fan-out work — compare threads=1 rows across runs.
  double cycles_per_iter = 0.0;
  double instructions_per_iter = 0.0;
  double llc_misses_per_iter = 0.0;
};

struct TimingOptions {
  double min_seconds = 0.3;
  std::int64_t max_iters = 200;
};

void SetThreads(int max_threads) {
  kernels::KernelConfig config = kernels::GetKernelConfig();
  config.max_threads = max_threads;
  config.min_parallel_work = max_threads > 1 ? 1 : (std::int64_t{1} << 62);
  kernels::SetKernelConfig(config);
}

struct Harness {
  TimingOptions timing;
  // Fixed sweep (default {1, 2, 8}) so baseline rows always compare
  // like against like regardless of the machine's core count.
  std::vector<int> thread_set = {1, 2, 8};
  std::vector<BenchRecord> records;

  template <typename RefFn, typename FastFn>
  void Bench(const std::string& op, const std::string& shape, double flops,
             double elems, RefFn&& ref, FastFn&& fast) {
    for (const int threads : thread_set) {
      // The scalar side is re-timed inside every row, interleaved
      // iteration by iteration with the fast side: on shared hardware
      // the effective memory bandwidth drifts minute to minute, and a
      // ratio of measurements taken a minute apart is mostly noise.
      // The reference always runs with the serial kernel config (the
      // always-serial oracle convention the kernel benches share).
      double ref_seconds = std::numeric_limits<double>::infinity();
      double seconds = std::numeric_limits<double>::infinity();
      double elapsed = 0.0;
      std::int64_t iters = 0;
      PerfCounterValues counters;
      SetThreads(1);
      ref();
      SetThreads(threads);
      fast();
      while (elapsed < 2.0 * timing.min_seconds && iters < timing.max_iters) {
        SetThreads(1);
        {
          WallTimer timer;
          ref();
          const double s = timer.ElapsedSeconds();
          ref_seconds = std::min(ref_seconds, s);
          elapsed += s;
        }
        SetThreads(threads);
        {
          // The scope brackets only the timed fast block, so counter
          // totals divide cleanly by `iters` (warmup excluded).
          PerfCounterScope profile("bench", &counters);
          WallTimer timer;
          fast();
          const double s = timer.ElapsedSeconds();
          seconds = std::min(seconds, s);
          elapsed += s;
        }
        ++iters;
      }
      BenchRecord record;
      record.op = op;
      record.shape = shape;
      record.threads = threads;
      record.seconds_per_iter = seconds;
      record.gflops = flops > 0 ? flops / seconds * 1e-9 : 0.0;
      record.ns_per_elem = elems > 0 ? seconds * 1e9 / elems : 0.0;
      record.speedup_vs_reference = ref_seconds / seconds;
      if (counters.valid && iters > 0) {
        const double per_iter = 1.0 / static_cast<double>(iters);
        record.cycles_per_iter =
            static_cast<double>(counters.cycles) * per_iter;
        record.instructions_per_iter =
            static_cast<double>(counters.instructions) * per_iter;
        record.llc_misses_per_iter =
            static_cast<double>(counters.llc_misses) * per_iter;
      }
      records.push_back(record);
      std::printf("%-15s %-16s threads=%d  %10.3f ms/iter  %7.2f Gfold/s"
                  "  %8.3f ns/msg  %5.2fx vs scalar\n",
                  op.c_str(), shape.c_str(), threads, seconds * 1e3,
                  record.gflops, record.ns_per_elem,
                  record.speedup_vs_reference);
    }
  }
};

// Zipf(alpha) destinations over [0, num_nodes): the hub-heavy inbox a
// power-law graph delivers. Sampled from an explicit CDF so the skew
// is exact and deterministic.
std::vector<NodeId> ZipfDsts(Rng* rng, std::int64_t num_msgs,
                             std::int64_t num_nodes, double alpha) {
  std::vector<double> cdf(static_cast<std::size_t>(num_nodes));
  double total = 0.0;
  for (std::int64_t i = 0; i < num_nodes; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
    cdf[static_cast<std::size_t>(i)] = total;
  }
  std::vector<NodeId> dsts(static_cast<std::size_t>(num_msgs));
  for (auto& d : dsts) {
    const double u = rng->NextDouble() * total;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    d = static_cast<NodeId>(it - cdf.begin());
  }
  return dsts;
}

// One superstep's worth of traffic: `senders` dense batches (as the
// engine's routing delivers them) plus the same messages as one flat
// batch for the combine/route ops.
struct Workload {
  std::vector<MessageBatch> batches;
  std::vector<bool> partial;
  MessageBatch flat;
  std::vector<std::int64_t> local_index;  // identity
  std::int64_t num_nodes = 0;
  std::int64_t num_msgs = 0;
  std::int64_t msg_dim = 0;
  std::string shape;
};

Workload MakeWorkload(std::int64_t num_msgs, std::int64_t msg_dim,
                      std::int64_t num_nodes, double alpha, int senders) {
  Rng rng(17);
  Workload w;
  w.num_nodes = num_nodes;
  w.num_msgs = num_msgs;
  w.msg_dim = msg_dim;
  w.local_index.resize(static_cast<std::size_t>(num_nodes));
  for (std::int64_t i = 0; i < num_nodes; ++i) {
    w.local_index[static_cast<std::size_t>(i)] = i;
  }
  const std::vector<NodeId> dsts = ZipfDsts(&rng, num_msgs, num_nodes, alpha);
  w.flat.payload = Tensor::RandomNormal(num_msgs, msg_dim, 1.0f, &rng);
  w.flat.dst = dsts;
  w.flat.src.assign(static_cast<std::size_t>(num_msgs), 0);
  const std::int64_t per = num_msgs / senders;
  for (int s = 0; s < senders; ++s) {
    const std::int64_t begin = s * per;
    const std::int64_t end = s + 1 == senders ? num_msgs : begin + per;
    MessageBatch b;
    b.payload = Tensor(end - begin, msg_dim);
    std::copy(w.flat.payload.RowPtr(begin), w.flat.payload.RowPtr(begin) +
                                                (end - begin) * msg_dim,
              b.payload.data());
    b.dst.assign(dsts.begin() + begin, dsts.begin() + end);
    b.src.assign(static_cast<std::size_t>(end - begin),
                 static_cast<NodeId>(s));
    w.batches.push_back(std::move(b));
    w.partial.push_back(false);
  }
  std::ostringstream label;
  label << num_msgs << "x" << msg_dim << "z" << alpha;
  w.shape = label.str();
  return w;
}

// Receiver-side gather: the full inbox → GatherResult fold, fast
// kernels vs the pinned scalar oracle.
void BenchGather(Harness* harness, const Workload& w) {
  const double elems = static_cast<double>(w.num_msgs);
  const double flops = elems * static_cast<double>(w.msg_dim);
  harness->Bench(
      "gather", w.shape, flops, elems,
      [&] {
        Sink(GatherSuperstepInboxScalar(AggKind::kSum, w.msg_dim, w.batches,
                                        w.partial, w.local_index, w.num_nodes,
                                        BroadcastLookupFn{}));
      },
      [&] {
        Sink(GatherSuperstepInbox(AggKind::kSum, w.msg_dim, w.batches,
                                  w.partial, w.local_index, w.num_nodes,
                                  BroadcastLookupFn{}));
      });
}

// Sender-side combine: folding one outgoing batch into a
// PooledAccumulator and emitting the partial wire batch, AddBatch vs
// the per-row Add loop.
void BenchCombine(Harness* harness, const Workload& w) {
  const double elems = static_cast<double>(w.num_msgs);
  const double flops = elems * static_cast<double>(w.msg_dim);
  harness->Bench(
      "combine", w.shape, flops, elems,
      [&] {
        PooledAccumulator acc(AggKind::kSum, w.msg_dim);
        for (std::int64_t i = 0; i < w.flat.size(); ++i) {
          acc.Add(w.flat.dst[static_cast<std::size_t>(i)],
                  w.flat.payload.RowPtr(i));
        }
        Sink(acc.ToPartialBatch(0).payload);
      },
      [&] {
        PooledAccumulator acc(AggKind::kSum, w.msg_dim);
        acc.AddBatch(w.flat, /*partial=*/false);
        Sink(acc.ToPartialBatch(0).payload);
      });
}

// The whole partial-gather data plane: every sender combines its
// outgoing batch, the receiver gathers the partial aggregates. This is
// the acceptance row — the per-superstep message path end to end.
void BenchGatherCombine(Harness* harness, const Workload& w) {
  const double elems = static_cast<double>(w.num_msgs);
  const double flops = elems * static_cast<double>(w.msg_dim);
  const std::vector<bool> all_partial(w.batches.size(), true);
  harness->Bench(
      "gather_combine", w.shape, flops, elems,
      [&] {
        std::vector<MessageBatch> partials;
        for (std::size_t s = 0; s < w.batches.size(); ++s) {
          const MessageBatch& b = w.batches[s];
          PooledAccumulator acc(AggKind::kSum, w.msg_dim);
          for (std::int64_t i = 0; i < b.size(); ++i) {
            acc.Add(b.dst[static_cast<std::size_t>(i)], b.payload.RowPtr(i));
          }
          partials.push_back(acc.ToPartialBatch(static_cast<NodeId>(s)));
        }
        Sink(GatherSuperstepInboxScalar(AggKind::kSum, w.msg_dim, partials,
                                        all_partial, w.local_index,
                                        w.num_nodes, BroadcastLookupFn{}));
      },
      [&] {
        // Senders combine concurrently — the engine shape: each sending
        // worker runs its combiner on its own pool thread, and every
        // accumulator is private to its sender. Only the baseline is
        // serial (the always-serial reference convention the kernel
        // benches share).
        const auto num_senders =
            static_cast<std::int64_t>(w.batches.size());
        std::vector<MessageBatch> partials(w.batches.size());
        kernels::ParallelForRanges(
            num_senders, (w.num_msgs / num_senders) * w.msg_dim,
            [&](std::int64_t s0, std::int64_t s1) {
              // One accumulator per task, Reset per sender — the
              // engines' allocation-reuse pattern.
              PooledAccumulator acc(AggKind::kSum, w.msg_dim);
              for (std::int64_t s = s0; s < s1; ++s) {
                acc.Reset(AggKind::kSum, w.msg_dim);
                acc.AddBatch(w.batches[static_cast<std::size_t>(s)],
                             /*partial=*/false);
                partials[static_cast<std::size_t>(s)] =
                    acc.ToPartialBatch(static_cast<NodeId>(s));
              }
            });
        Sink(GatherSuperstepInbox(AggKind::kSum, w.msg_dim, partials,
                                  all_partial, w.local_index, w.num_nodes,
                                  BroadcastLookupFn{}));
      });
}

// Routing: bucketing one outgoing batch by destination worker, the
// low-copy SplitByWorker vs a per-row Push loop.
void BenchRoute(Harness* harness, const Workload& w) {
  const std::int64_t num_workers = 8;
  const HashPartitioner partitioner(num_workers);
  const double elems = static_cast<double>(w.num_msgs);
  harness->Bench(
      "route", w.shape, 0.0, elems,
      [&] {
        // Both sides start from their own copy of the outgoing batch —
        // the engine hands routing a batch it owns — so the comparison
        // is split strategy, not copy avoidance.
        MessageBatch outgoing(w.flat);
        std::vector<MessageBatch> slices(static_cast<std::size_t>(num_workers));
        for (std::int64_t i = 0; i < outgoing.size(); ++i) {
          const auto owner = static_cast<std::size_t>(partitioner.PartitionOf(
              outgoing.dst[static_cast<std::size_t>(i)]));
          slices[owner].Push(outgoing.dst[static_cast<std::size_t>(i)],
                             outgoing.src[static_cast<std::size_t>(i)],
                             outgoing.payload.RowPtr(i), w.msg_dim);
        }
        Sink(slices[0].payload);
      },
      [&] {
        MessageBatch outgoing(w.flat);
        std::vector<MessageBatch> slices =
            SplitByWorker(std::move(outgoing), partitioner, num_workers);
        Sink(slices[0].payload);
      });
}

std::string ThreadSetLabel(const std::vector<int>& threads) {
  std::ostringstream out;
  for (std::size_t i = 0; i < threads.size(); ++i) {
    out << (i ? "," : "") << threads[i];
  }
  return out.str();
}

void WriteJson(const std::string& path, const std::vector<BenchRecord>& records,
               bool quick, const std::vector<int>& thread_set) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "bench_superstep: cannot write %s\n", path.c_str());
    std::exit(2);
  }
  out << "{\n";
  out << "  \"bench\": \"bench_superstep\",\n";
  out << "  \"mode\": \"" << (quick ? "quick" : "full") << "\",\n";
  out << "  \"avx2\": " << (kernels::UsingAvx2() ? "true" : "false") << ",\n";
  out << "  \"thread_set\": \"" << ThreadSetLabel(thread_set) << "\",\n";
  out << "  \"hardware_concurrency\": "
      << std::thread::hardware_concurrency() << ",\n";
  // Explicit marker: rows carry real hardware counts, or they are all
  // zero because perf_event_open is unavailable on this host.
  out << "  \"perf_counters\": \""
      << (PerfCountersSupported() ? "available" : "unavailable") << "\",\n";
  if (!PerfCountersSupported()) {
    out << "  \"perf_fallback_reason\": \""
        << PerfCountersUnavailableReason() << "\",\n";
  }
  out << "  \"results\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    char line[768];
    std::snprintf(line, sizeof(line),
                  "    {\"op\": \"%s\", \"shape\": \"%s\", \"threads\": %d, "
                  "\"seconds_per_iter\": %.6e, \"gflops\": %.4f, "
                  "\"ns_per_elem\": %.4f, \"speedup_vs_reference\": %.3f, "
                  "\"cycles_per_iter\": %.0f, "
                  "\"instructions_per_iter\": %.0f, "
                  "\"llc_misses_per_iter\": %.0f}%s",
                  r.op.c_str(), r.shape.c_str(), r.threads,
                  r.seconds_per_iter, r.gflops, r.ns_per_elem,
                  r.speedup_vs_reference, r.cycles_per_iter,
                  r.instructions_per_iter, r.llc_misses_per_iter,
                  i + 1 < records.size() ? "," : "");
    out << line << "\n";
  }
  out << "  ]\n}\n";
  std::printf("\nwrote %zu records to %s\n", records.size(), path.c_str());
}

// Minimal field extraction for the exact format WriteJson emits (one
// record per line) — enough for --check without a JSON dependency.
struct BaselineRecord {
  std::string op, shape;
  int threads = 0;
  double seconds_per_iter = 0.0;
  double speedup_vs_reference = 0.0;
};

std::string ExtractString(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\": \"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return "";
  const std::size_t begin = at + needle.size();
  const std::size_t end = line.find('"', begin);
  return end == std::string::npos ? "" : line.substr(begin, end - begin);
}

double ExtractNumber(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return 0.0;
  return std::strtod(line.c_str() + at + needle.size(), nullptr);
}

std::vector<BaselineRecord> LoadBaseline(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_superstep: cannot read baseline %s\n",
                 path.c_str());
    std::exit(2);
  }
  std::vector<BaselineRecord> baseline;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"op\"") == std::string::npos) continue;
    BaselineRecord record;
    record.op = ExtractString(line, "op");
    record.shape = ExtractString(line, "shape");
    record.threads = static_cast<int>(ExtractNumber(line, "threads"));
    record.seconds_per_iter = ExtractNumber(line, "seconds_per_iter");
    record.speedup_vs_reference = ExtractNumber(line, "speedup_vs_reference");
    baseline.push_back(record);
  }
  return baseline;
}

int CheckAgainstBaseline(const std::vector<BenchRecord>& records,
                         const std::string& path, double tolerance) {
  const std::vector<BaselineRecord> baseline = LoadBaseline(path);
  int regressions = 0, compared = 0;
  for (const BenchRecord& r : records) {
    for (const BaselineRecord& b : baseline) {
      if (b.op != r.op || b.shape != r.shape || b.threads != r.threads) {
        continue;
      }
      ++compared;
      // The gate compares speedup-vs-scalar, not absolute seconds: the
      // oracle is re-timed interleaved with the fast path inside every
      // row, so the ratio cancels out host speed and bandwidth drift.
      // A scalar fallback sneaking back in drives the ratio to ~1.0,
      // which a tolerance well under the baseline ratio still catches.
      if (b.speedup_vs_reference > 0.0 &&
          r.speedup_vs_reference <
              b.speedup_vs_reference / (1.0 + tolerance)) {
        ++regressions;
        std::printf("REGRESSION %s %s threads=%d: %.2fx vs scalar, baseline "
                    "%.2fx (tolerance %.0f%%)\n",
                    r.op.c_str(), r.shape.c_str(), r.threads,
                    r.speedup_vs_reference, b.speedup_vs_reference,
                    tolerance * 100.0);
      }
      break;
    }
  }
  std::printf("baseline check: %d rows compared, %d regressions\n", compared,
              regressions);
  return regressions == 0 ? 0 : 1;
}

// The multithreading-is-a-win gate: for every (op, shape) with both a
// 1-thread row and multi-thread rows, the BEST multi-thread time must
// not be worse than the 1-thread time by more than `tolerance`. On a
// single-core host the executor caps fan-out at the core count, so
// multi-thread rows degrade to ~parity and the gate still holds; on a
// real multi-core runner this enforces actual scaling.
int CheckScaling(const std::vector<BenchRecord>& records, double tolerance) {
  int violations = 0, groups = 0;
  for (const BenchRecord& r : records) {
    if (r.threads != 1) continue;
    double best_multi = 0.0;
    int best_threads = 0;
    for (const BenchRecord& m : records) {
      if (m.op != r.op || m.shape != r.shape || m.threads == 1) continue;
      if (best_threads == 0 || m.seconds_per_iter < best_multi) {
        best_multi = m.seconds_per_iter;
        best_threads = m.threads;
      }
    }
    if (best_threads == 0) continue;
    ++groups;
    if (best_multi > r.seconds_per_iter * (1.0 + tolerance)) {
      ++violations;
      std::printf("SCALING VIOLATION %s %s: best multi-thread %.3f ms/iter "
                  "(threads=%d) vs 1-thread %.3f ms/iter (tolerance %.0f%%)\n",
                  r.op.c_str(), r.shape.c_str(), best_multi * 1e3,
                  best_threads, r.seconds_per_iter * 1e3, tolerance * 100.0);
    } else {
      std::printf("scaling ok %s %s: %.2fx at best multi-thread\n",
                  r.op.c_str(), r.shape.c_str(),
                  r.seconds_per_iter / best_multi);
    }
  }
  std::printf("scaling gate: %d groups checked, %d violations\n", groups,
              violations);
  return violations == 0 ? 0 : 1;
}

std::vector<int> ParseThreadSet(const std::string& spec) {
  std::vector<int> threads;
  std::stringstream in(spec);
  std::string item;
  while (std::getline(in, item, ',')) {
    const int t = std::atoi(item.c_str());
    if (t >= 1) threads.push_back(t);
  }
  if (threads.empty()) threads.push_back(1);
  return threads;
}

int Main(int argc, char** argv) {
  Result<FlagParser> flags = FlagParser::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 2;
  }
  const bool quick = flags->GetBool("quick", false);
  const std::string out_path = flags->GetString("out", "BENCH_superstep.json");
  const std::string check_path = flags->GetString("check", "");
  const double tolerance = flags->GetDouble("check-tolerance", 0.25);
  const bool scaling_gate = flags->GetBool("scaling-gate", false);
  const double scaling_tolerance = flags->GetDouble("scaling-tolerance", 0.15);

  Harness harness;
  harness.thread_set = ParseThreadSet(flags->GetString("threads", "1,2,8"));
  harness.timing.min_seconds = quick ? 0.1 : 0.3;
  harness.timing.max_iters = quick ? 30 : 50;

  // Measurement is the whole point of a bench run, so profiling is on
  // unconditionally; rows degrade to zero counters where the host
  // forbids perf_event_open.
  SetProfilingEnabled(true);

  std::printf("bench_superstep (%s mode, avx2=%s, threads={%s}, %u hardware "
              "threads, perf counters %s)\n\n",
              quick ? "quick" : "full", kernels::UsingAvx2() ? "on" : "off",
              ThreadSetLabel(harness.thread_set).c_str(),
              std::thread::hardware_concurrency(),
              PerfCountersSupported()
                  ? "available"
                  : PerfCountersUnavailableReason().c_str());

  // The quick sweep reuses the smaller full-sweep inbox so CI --check
  // compares real rows against the checked-in Release baseline.
  const std::vector<std::int64_t> sizes =
      quick ? std::vector<std::int64_t>{262144}
            : std::vector<std::int64_t>{262144, 1048576};
  const kernels::KernelConfig saved = kernels::GetKernelConfig();
  for (const std::int64_t num_msgs : sizes) {
    const Workload w = MakeWorkload(num_msgs, /*msg_dim=*/64,
                                    /*num_nodes=*/65536, /*alpha=*/2.0,
                                    /*senders=*/8);
    BenchGather(&harness, w);
    BenchCombine(&harness, w);
    BenchGatherCombine(&harness, w);
    BenchRoute(&harness, w);
  }
  kernels::SetKernelConfig(saved);

  WriteJson(out_path, harness.records, quick, harness.thread_set);

  int rc = 0;
  if (scaling_gate) rc |= CheckScaling(harness.records, scaling_tolerance);
  if (!check_path.empty()) {
    rc |= CheckAgainstBaseline(harness.records, check_path, tolerance);
  }
  return rc;
}

}  // namespace
}  // namespace inferturbo

int main(int argc, char** argv) { return inferturbo::Main(argc, argv); }
