// Ablation (DESIGN.md §5): Pregel (state-resident) vs MapReduce
// (shuffle-everything) across worker counts, same graph and model.
// Quantifies the backend trade-off the paper describes qualitatively:
// MapReduce moves strictly more bytes (it re-ships self-state and
// out-edge lists every round) but holds less resident state.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/common/byte_size.h"
#include "src/inference/inferturbo_mapreduce.h"
#include "src/inference/inferturbo_pregel.h"

namespace inferturbo {
namespace {

void Run() {
  bench::PrintHeader("Ablation: backends",
                     "Pregel vs MapReduce across worker counts");
  PowerLawConfig config;
  config.num_nodes = 10000;
  config.avg_degree = 8.0;
  config.seed = 67;
  const Dataset dataset = MakePowerLawDataset(config, /*feature_dim=*/32);
  const std::unique_ptr<GnnModel> model =
      bench::UntrainedModelOn(dataset, "sage", /*hidden_dim=*/32);

  std::printf("%8s | %-8s | %10s %12s %14s %12s\n", "workers", "backend",
              "time (s)", "cpu (s)", "shuffle bytes", "peak mem");
  bench::PrintRule();
  for (const std::int64_t workers : {4L, 16L, 64L}) {
    InferTurboOptions options;
    options.num_workers = workers;
    options.strategies.partial_gather = true;

    const Result<InferenceResult> pregel =
        RunInferTurboPregel(dataset.graph, *model, options);
    INFERTURBO_CHECK(pregel.ok());
    std::printf("%8lld | %-8s | %10.3f %12.3f %14s %12s\n",
                static_cast<long long>(workers), "pregel",
                pregel->metrics.SimulatedWallSeconds(),
                pregel->metrics.TotalCpuSeconds(),
                FormatBytes(pregel->metrics.TotalBytesOut()).c_str(),
                FormatBytes(pregel->metrics.PeakResidentBytes()).c_str());

    const Result<InferenceResult> mr =
        RunInferTurboMapReduce(dataset.graph, *model, options);
    INFERTURBO_CHECK(mr.ok());
    std::printf("%8lld | %-8s | %10.3f %12.3f %14s %12s\n",
                static_cast<long long>(workers), "mapreduce",
                mr->metrics.SimulatedWallSeconds(),
                mr->metrics.TotalCpuSeconds(),
                FormatBytes(mr->metrics.TotalBytesOut()).c_str(),
                FormatBytes(mr->metrics.PeakResidentBytes()).c_str());
  }
  std::printf(
      "\nexpected shape: MapReduce ships strictly more bytes at every\n"
      "worker count (state re-shuffled each round); Pregel is faster\n"
      "wall-clock. Memory is the paper's §IV-C2 trade-off: Pregel's\n"
      "peak scales with the partition (graph_size / workers — grows\n"
      "unbounded as graphs outgrow the cluster), while MapReduce's is\n"
      "bounded by the largest single key group regardless of graph\n"
      "size, which is why the paper's largest runs only fit the MR\n"
      "backend. Both produce identical predictions (tested in\n"
      "tests/inference_equivalence_test.cc).\n");
}

}  // namespace
}  // namespace inferturbo

int main() { inferturbo::Run(); }
