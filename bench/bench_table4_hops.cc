// Table IV: time and resource vs GNN depth (hops 1-3). nbr50 /
// nbr10000 are the traditional pipeline at those fan-outs (10000
// exceeds every degree here, i.e. full neighborhoods, like the paper's
// setting that OOMs); "ours" is InferTurbo on MapReduce. The paper's
// shape: traditional cost grows superlinearly with hops and hits OOM;
// ours grows ~linearly.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/inference/inferturbo_mapreduce.h"
#include "src/inference/traditional_pipeline.h"

namespace inferturbo {
namespace {

struct Cell {
  bool oom = false;
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
};

void PrintRow(const char* name, const Cell* cells, bool cpu) {
  std::printf("%-9s |", name);
  for (int h = 0; h < 3; ++h) {
    if (cells[h].oom) {
      std::printf(" %11s", "OOM");
    } else {
      std::printf(" %10.2fs",
                  cpu ? cells[h].cpu_seconds : cells[h].wall_seconds);
    }
  }
  std::printf("\n");
}

void Run() {
  bench::PrintHeader("Table IV", "time and resource vs hops (1-3)");
  // In-degree-skewed power-law graph: hub in-degrees far exceed the
  // nbr50 cap, as on MAG240M, so the two fan-outs actually differ and
  // full-neighborhood extraction blows up with depth.
  PowerLawConfig config;
  config.num_nodes = 20000;
  config.avg_degree = 8.0;
  config.alpha = 1.4;
  config.skew = PowerLawSkew::kIn;
  config.seed = 5;
  const Dataset dataset = MakePowerLawDataset(config, /*feature_dim=*/64);
  std::printf("graph: %lld nodes, %lld edges\n",
              static_cast<long long>(dataset.graph.num_nodes()),
              static_cast<long long>(dataset.graph.num_edges()));
  Cell nbr50[3], nbr10000[3], ours[3];
  for (std::int64_t hops = 1; hops <= 3; ++hops) {
    const std::unique_ptr<GnnModel> model = bench::UntrainedModelOn(
        dataset, "sage", /*hidden_dim=*/32, /*num_layers=*/hops);

    const auto run_traditional = [&](std::int64_t fanout) {
      TraditionalPipelineOptions options;
      options.num_workers = 16;
      options.batch_size = 8;
      options.fanout = fanout;
      options.hops = hops;
      // A worker's memory budget, scaled to this graph as the paper's
      // 10 GB instances are to MAG240M: capped (nbr50) neighborhoods
      // fit at every depth, full (nbr10000) 3-hop ones do not.
      options.memory_budget_bytes = 36 * 1024 * 1024;
      const Result<InferenceResult> r =
          RunTraditionalPipeline(dataset.graph, *model, options);
      Cell cell;
      if (!r.ok()) {
        INFERTURBO_CHECK(r.status().IsOutOfMemory())
            << r.status().ToString();
        cell.oom = true;
      } else {
        cell.wall_seconds = r->metrics.SimulatedWallSeconds();
        cell.cpu_seconds = r->metrics.TotalCpuSeconds();
      }
      return cell;
    };
    nbr50[hops - 1] = run_traditional(50);
    nbr10000[hops - 1] = run_traditional(10000);

    InferTurboOptions options;
    options.num_workers = 16;
    options.strategies.partial_gather = true;
    const Result<InferenceResult> r =
        RunInferTurboMapReduce(dataset.graph, *model, options);
    INFERTURBO_CHECK(r.ok()) << r.status().ToString();
    ours[hops - 1] = {false, r->metrics.SimulatedWallSeconds(),
                      r->metrics.TotalCpuSeconds()};
  }

  std::printf("\ntime (simulated wall)          hops=1       hops=2       "
              "hops=3\n");
  bench::PrintRule();
  PrintRow("nbr50", nbr50, /*cpu=*/false);
  PrintRow("nbr10000", nbr10000, /*cpu=*/false);
  PrintRow("ours", ours, /*cpu=*/false);
  std::printf("\nresource (cpu seconds)         hops=1       hops=2       "
              "hops=3\n");
  bench::PrintRule();
  PrintRow("nbr50", nbr50, /*cpu=*/true);
  PrintRow("nbr10000", nbr10000, /*cpu=*/true);
  PrintRow("ours", ours, /*cpu=*/true);
  std::printf(
      "\nexpected shape (paper Tab. IV): traditional cost explodes with\n"
      "hops (nbr10000 OOMs at 3 hops); ours grows ~linearly in depth.\n");
}

}  // namespace
}  // namespace inferturbo

int main() { inferturbo::Run(); }
