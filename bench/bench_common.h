#ifndef INFERTURBO_BENCH_BENCH_COMMON_H_
#define INFERTURBO_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/common/logging.h"
#include "src/graph/datasets.h"
#include "src/nn/model.h"
#include "src/nn/trainer.h"

namespace inferturbo {
namespace bench {

/// Every experiment binary prints a header naming the paper artifact it
/// regenerates, so `for b in build/bench/*; do $b; done` output reads
/// as a reproduction log.
inline void PrintHeader(const std::string& artifact,
                        const std::string& description) {
  std::printf("\n==============================================================\n");
  std::printf("%s — %s\n", artifact.c_str(), description.c_str());
  std::printf("==============================================================\n");
}

inline void PrintRule() {
  std::printf("--------------------------------------------------------------\n");
}

/// Trains `kind` on `dataset` with fast defaults; benches that need a
/// trained model share this so tables stay comparable.
inline std::unique_ptr<GnnModel> TrainModelOn(const Dataset& dataset,
                                              const std::string& kind,
                                              std::int64_t hidden_dim = 32,
                                              std::int64_t num_layers = 2,
                                              std::int64_t epochs = 8) {
  ModelConfig config;
  config.input_dim = dataset.graph.feature_dim();
  config.hidden_dim = hidden_dim;
  config.num_classes = dataset.graph.num_classes();
  config.num_layers = num_layers;
  config.heads = 4;
  config.seed = 11;
  Result<std::unique_ptr<GnnModel>> model = MakeModel(kind, config);
  INFERTURBO_CHECK(model.ok()) << model.status().ToString();

  TrainerOptions trainer_options;
  trainer_options.epochs = epochs;
  trainer_options.batch_size = 64;
  trainer_options.fanout = 10;
  trainer_options.learning_rate = 1e-2f;
  trainer_options.seed = 7;
  MiniBatchTrainer trainer(&dataset.graph, model->get(), trainer_options);
  const Result<TrainReport> report = trainer.Train();
  INFERTURBO_CHECK(report.ok()) << report.status().ToString();
  return std::move(*model);
}

/// Untrained model with the dataset's shapes (for pure-performance
/// benches where accuracy is irrelevant).
inline std::unique_ptr<GnnModel> UntrainedModelOn(const Dataset& dataset,
                                                  const std::string& kind,
                                                  std::int64_t hidden_dim = 32,
                                                  std::int64_t num_layers = 2,
                                                  std::int64_t heads = 4) {
  ModelConfig config;
  config.input_dim = dataset.graph.feature_dim();
  config.hidden_dim = hidden_dim;
  config.num_classes = dataset.graph.num_classes();
  config.num_layers = num_layers;
  config.heads = heads;
  config.seed = 11;
  Result<std::unique_ptr<GnnModel>> model = MakeModel(kind, config);
  INFERTURBO_CHECK(model.ok()) << model.status().ToString();
  return std::move(*model);
}

}  // namespace bench
}  // namespace inferturbo

#endif  // INFERTURBO_BENCH_BENCH_COMMON_H_
