// Table I: summary of datasets. Prints the paper's numbers next to the
// synthetic analogues this repository generates (scaled down; the
// class/feature shapes match, see DESIGN.md §2).
#include <cstdio>

#include "bench/bench_common.h"
#include "src/graph/datasets.h"

namespace inferturbo {
namespace {

struct Row {
  const char* name;
  const char* paper_nodes;
  const char* paper_edges;
  Dataset dataset;
};

void Run() {
  bench::PrintHeader("Table I", "summary of datasets (paper vs analogue)");
  PowerLawConfig pl;
  pl.num_nodes = 20000;
  pl.avg_degree = 10.0;
  std::vector<Row> rows;
  rows.push_back({"PPI", "56,944", "818,716", MakePpiLike(1.0)});
  rows.push_back({"Product", "2.45e6", "6.19e7", MakeProductsLike(1.0)});
  rows.push_back({"MAG240M", "1.2e8", "2.6e9", MakeMag240mLike(0.2)});
  rows.push_back({"Power-Law", "1e10", "1e11", MakePowerLawDataset(pl)});

  std::printf("%-10s | %12s %12s | %9s %9s | %6s %7s\n", "dataset",
              "paper#node", "paper#edge", "#node", "#edge", "#feat",
              "#class");
  bench::PrintRule();
  for (const Row& row : rows) {
    std::printf("%-10s | %12s %12s | %9lld %9lld | %6lld %7lld\n", row.name,
                row.paper_nodes, row.paper_edges,
                static_cast<long long>(row.dataset.graph.num_nodes()),
                static_cast<long long>(row.dataset.graph.num_edges()),
                static_cast<long long>(row.dataset.graph.feature_dim()),
                static_cast<long long>(row.dataset.graph.num_classes()));
  }
  std::printf(
      "\nshape preserved: feature dim, class count, single/multi-label,\n"
      "density; node counts scaled to fit a single-machine simulation.\n");
}

}  // namespace
}  // namespace inferturbo

int main() { inferturbo::Run(); }
