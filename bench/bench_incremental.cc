// Extension ablation: incremental full-graph inference (historical
// embeddings + change propagation) vs re-scoring from scratch, as the
// daily delta grows. Shows where the crossover sits: tiny deltas are
// orders of magnitude cheaper; once the delta's k-hop out-cone covers
// the graph, incremental degenerates to the full pass.
#include <cstdio>

#include <numeric>

#include "bench/bench_common.h"
#include "src/common/timer.h"
#include "src/graph/graph_builder.h"
#include "src/inference/incremental.h"

namespace inferturbo {
namespace {

Graph WithRefreshedFeatures(const Graph& graph,
                            const std::vector<NodeId>& nodes) {
  GraphBuilder builder(graph.num_nodes());
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    builder.AddEdge(graph.EdgeSrc(e), graph.EdgeDst(e));
  }
  Tensor features = graph.node_features();
  for (NodeId v : nodes) {
    for (std::int64_t j = 0; j < features.cols(); ++j) {
      features.At(v, j) += 0.25f;
    }
  }
  builder.SetNodeFeatures(std::move(features));
  builder.SetLabels(graph.labels(), graph.num_classes());
  return std::move(builder).Finish().ValueOrDie();
}

void Run() {
  bench::PrintHeader("Extension: incremental inference",
                     "delta size vs recomputation and wall time");
  PlantedGraphConfig config;
  config.num_nodes = 20000;
  config.avg_degree = 8.0;
  config.num_classes = 4;
  config.feature_dim = 32;
  config.seed = 71;
  const Dataset dataset = MakePlantedDataset("incremental-bench", config);
  const std::unique_ptr<GnnModel> model =
      bench::UntrainedModelOn(dataset, "sage", /*hidden_dim=*/32);

  WallTimer full_timer;
  const LayerStates history = ComputeLayerStates(*model, dataset.graph);
  const double full_seconds = full_timer.ElapsedSeconds();
  const std::int64_t full_work =
      dataset.graph.num_nodes() * model->num_layers();
  std::printf("full pass: %.3fs, %lld node-state computations\n",
              full_seconds, static_cast<long long>(full_work));
  std::printf("\n%10s | %14s %10s | %10s %9s\n", "delta", "recomputed",
              "of full", "time (s)", "speedup");
  bench::PrintRule();

  Rng rng(5);
  for (const std::int64_t delta_size : {1L, 10L, 100L, 1000L, 10000L}) {
    std::vector<NodeId> changed;
    for (std::int64_t i = 0; i < delta_size; ++i) {
      changed.push_back(static_cast<NodeId>(rng.NextBounded(
          static_cast<std::uint64_t>(dataset.graph.num_nodes()))));
    }
    std::sort(changed.begin(), changed.end());
    changed.erase(std::unique(changed.begin(), changed.end()),
                  changed.end());
    const Graph mutated = WithRefreshedFeatures(dataset.graph, changed);
    GraphDelta delta;
    delta.changed_nodes = changed;

    WallTimer timer;
    const Result<IncrementalResult> r =
        IncrementalInference(*model, mutated, history, delta);
    const double seconds = timer.ElapsedSeconds();
    INFERTURBO_CHECK(r.ok()) << r.status().ToString();
    const std::int64_t recomputed = std::accumulate(
        r->recomputed_per_layer.begin(), r->recomputed_per_layer.end(),
        std::int64_t{0});
    std::printf("%10lld | %14lld %9.2f%% | %10.4f %8.1fx\n",
                static_cast<long long>(delta_size),
                static_cast<long long>(recomputed),
                100.0 * static_cast<double>(recomputed) /
                    static_cast<double>(full_work),
                seconds, full_seconds / std::max(1e-9, seconds));
  }
  std::printf(
      "\nexpected shape: recomputation tracks the delta's k-hop out-cone;\n"
      "small daily deltas re-score a few percent of the graph, converging\n"
      "to a full pass as the delta saturates it.\n");
}

}  // namespace
}  // namespace inferturbo

int main() { inferturbo::Run(); }
