// Extension ablation: incremental full-graph inference (historical
// embeddings + change propagation) vs re-scoring from scratch, as the
// daily delta grows. Shows where the crossover sits: tiny deltas are
// orders of magnitude cheaper; once the delta's k-hop out-cone covers
// the graph, incremental degenerates to the full pass.
//
// Every row folds the incremental run's logits into a deterministic
// logits_crc and records the exact recomputation count; both are
// host-invariant (seeded dataset + deterministic kernels), so --check
// gates them with zero tolerance while wall times get the usual slack.
//
// Usage:
//   bench_incremental                 full sweep, writes BENCH_incremental.json
//   bench_incremental --quick         CI smoke: same rows, single timed iter
//   bench_incremental --out=PATH      write the JSON elsewhere
//   bench_incremental --check=PATH    diff against a baseline JSON; exits 1 on
//                                     a timing regression past
//                                     --check-tolerance, a recomputation-count
//                                     drift, or a logits_crc mismatch
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <numeric>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/crc32.h"
#include "src/common/flags.h"
#include "src/common/timer.h"
#include "src/graph/graph_builder.h"
#include "src/inference/incremental.h"

namespace inferturbo {
namespace {

volatile std::uint64_t g_sink = 0;

struct BenchRecord {
  std::int64_t delta_size = 0;  // 0 = the full pass row
  double seconds_per_iter = 0.0;
  std::int64_t recomputed = 0;
  std::uint64_t logits_crc = 0;
  double speedup = 1.0;
};

Graph WithRefreshedFeatures(const Graph& graph,
                            const std::vector<NodeId>& nodes) {
  GraphBuilder builder(graph.num_nodes());
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    builder.AddEdge(graph.EdgeSrc(e), graph.EdgeDst(e));
  }
  Tensor features = graph.node_features();
  for (NodeId v : nodes) {
    for (std::int64_t j = 0; j < features.cols(); ++j) {
      features.At(v, j) += 0.25f;
    }
  }
  builder.SetNodeFeatures(std::move(features));
  builder.SetLabels(graph.labels(), graph.num_classes());
  return std::move(builder).Finish().ValueOrDie();
}

std::uint64_t LogitsCrc(const Tensor& logits) {
  return Crc32(logits.RowPtr(0), static_cast<std::size_t>(logits.rows() *
                                                          logits.cols()) *
                                     sizeof(float));
}

void WriteJson(const std::string& path,
               const std::vector<BenchRecord>& records, bool quick,
               const std::string& shape) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "bench_incremental: cannot write %s\n",
                 path.c_str());
    std::exit(2);
  }
  out << "{\n";
  out << "  \"bench\": \"bench_incremental\",\n";
  out << "  \"mode\": \"" << (quick ? "quick" : "full") << "\",\n";
  out << "  \"shape\": \"" << shape << "\",\n";
  out << "  \"results\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    char line[512];
    std::snprintf(
        line, sizeof(line),
        "    {\"op\": \"%s\", \"delta\": %lld, \"seconds_per_iter\": %.6e, "
        "\"recomputed\": %lld, \"logits_crc\": \"%llu\", "
        "\"speedup\": %.2f}%s",
        r.delta_size == 0 ? "full_pass" : "incremental",
        static_cast<long long>(r.delta_size), r.seconds_per_iter,
        static_cast<long long>(r.recomputed),
        static_cast<unsigned long long>(r.logits_crc), r.speedup,
        i + 1 < records.size() ? "," : "");
    out << line << "\n";
  }
  out << "  ]\n}\n";
  std::printf("\nwrote %zu records to %s\n", records.size(), path.c_str());
}

std::string ExtractString(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\": \"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return "";
  const std::size_t begin = at + needle.size();
  const std::size_t end = line.find('"', begin);
  return end == std::string::npos ? "" : line.substr(begin, end - begin);
}

double ExtractNumber(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return 0.0;
  return std::strtod(line.c_str() + at + needle.size(), nullptr);
}

int CheckAgainstBaseline(const std::vector<BenchRecord>& records,
                         const std::string& path, double tolerance) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_incremental: cannot read baseline %s\n",
                 path.c_str());
    return 1;
  }
  int compared = 0;
  int regressions = 0;
  std::string line;
  while (std::getline(in, line)) {
    const std::string op = ExtractString(line, "op");
    if (op.empty()) continue;
    const std::int64_t delta =
        static_cast<std::int64_t>(ExtractNumber(line, "delta"));
    for (const BenchRecord& r : records) {
      const std::string r_op = r.delta_size == 0 ? "full_pass" : "incremental";
      if (r_op != op || r.delta_size != delta) continue;
      ++compared;
      // Host-invariant gates: the change-propagation cone and the
      // logits bits are exact functions of the seeded inputs.
      const std::int64_t baseline_recomputed =
          static_cast<std::int64_t>(ExtractNumber(line, "recomputed"));
      if (baseline_recomputed != r.recomputed) {
        ++regressions;
        std::printf("CONE DRIFT delta=%lld: recomputed %lld vs baseline "
                    "%lld — change propagation visits a different set\n",
                    static_cast<long long>(delta),
                    static_cast<long long>(r.recomputed),
                    static_cast<long long>(baseline_recomputed));
      }
      const std::string baseline_crc = ExtractString(line, "logits_crc");
      if (!baseline_crc.empty() &&
          baseline_crc != std::to_string(r.logits_crc)) {
        ++regressions;
        std::printf("CHECKSUM MISMATCH delta=%lld: logits bits differ "
                    "from the baseline run\n",
                    static_cast<long long>(delta));
      }
      const double baseline_seconds = ExtractNumber(line, "seconds_per_iter");
      if (baseline_seconds > 0.0 &&
          r.seconds_per_iter > baseline_seconds * (1.0 + tolerance)) {
        ++regressions;
        std::printf("REGRESSION %s delta=%lld: %.3f ms/iter vs baseline "
                    "%.3f ms/iter (tolerance %.0f%%)\n",
                    op.c_str(), static_cast<long long>(delta),
                    r.seconds_per_iter * 1e3, baseline_seconds * 1e3,
                    tolerance * 100.0);
      }
    }
  }
  std::printf("baseline check: %d rows compared, %d regressions\n", compared,
              regressions);
  return regressions == 0 ? 0 : 1;
}

int Main(int argc, const char* const argv[]) {
  const Result<FlagParser> flags = FlagParser::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 2;
  }
  const bool quick = flags->GetBool("quick", false);
  const std::string out_path =
      flags->GetString("out", "BENCH_incremental.json");
  const std::string check_path = flags->GetString("check", "");
  const double tolerance = flags->GetDouble("check-tolerance", 0.5);
  const std::int64_t timed_iters = quick ? 1 : 3;

  bench::PrintHeader("Extension: incremental inference",
                     "delta size vs recomputation and wall time");
  PlantedGraphConfig config;
  config.num_nodes = 20000;
  config.avg_degree = 8.0;
  config.num_classes = 4;
  config.feature_dim = 32;
  config.seed = 71;
  const Dataset dataset = MakePlantedDataset("incremental-bench", config);
  const std::unique_ptr<GnnModel> model =
      bench::UntrainedModelOn(dataset, "sage", /*hidden_dim=*/32);

  std::vector<BenchRecord> records;

  // Full-pass row: the from-scratch cost every speedup is relative to.
  double full_seconds = 0.0;
  Tensor full_logits;
  LayerStates history;
  for (std::int64_t i = 0; i < timed_iters; ++i) {
    WallTimer timer;
    history = ComputeLayerStates(*model, dataset.graph);
    full_logits = model->PredictLogits(history.states.back());
    full_seconds += timer.ElapsedSeconds();
  }
  full_seconds /= static_cast<double>(timed_iters);
  const std::int64_t full_work =
      dataset.graph.num_nodes() * model->num_layers();
  {
    BenchRecord r;
    r.seconds_per_iter = full_seconds;
    r.recomputed = full_work;
    r.logits_crc = LogitsCrc(full_logits);
    records.push_back(r);
  }
  std::printf("full pass: %.3fs, %lld node-state computations\n",
              full_seconds, static_cast<long long>(full_work));
  std::printf("\n%10s | %14s %10s | %10s %9s\n", "delta", "recomputed",
              "of full", "time (s)", "speedup");
  bench::PrintRule();

  int failures = 0;
  Rng rng(5);
  for (const std::int64_t delta_size : {1L, 10L, 100L, 1000L, 10000L}) {
    std::vector<NodeId> changed;
    for (std::int64_t i = 0; i < delta_size; ++i) {
      changed.push_back(static_cast<NodeId>(rng.NextBounded(
          static_cast<std::uint64_t>(dataset.graph.num_nodes()))));
    }
    std::sort(changed.begin(), changed.end());
    changed.erase(std::unique(changed.begin(), changed.end()),
                  changed.end());
    const Graph mutated = WithRefreshedFeatures(dataset.graph, changed);
    GraphDelta delta;
    delta.changed_nodes = changed;

    BenchRecord record;
    record.delta_size = delta_size;
    double seconds = 0.0;
    for (std::int64_t i = 0; i < timed_iters; ++i) {
      WallTimer timer;
      const Result<IncrementalResult> r =
          IncrementalInference(*model, mutated, history, delta);
      seconds += timer.ElapsedSeconds();
      INFERTURBO_CHECK(r.ok()) << r.status().ToString();
      record.recomputed = std::accumulate(
          r->recomputed_per_layer.begin(), r->recomputed_per_layer.end(),
          std::int64_t{0});
      record.logits_crc = LogitsCrc(r->logits);
      g_sink = g_sink + record.logits_crc;
      // Exactness invariant, not just a report: the incremental logits
      // must match a from-scratch pass on the mutated graph bitwise.
      if (i == 0) {
        const LayerStates fresh = ComputeLayerStates(*model, mutated);
        const Tensor fresh_logits = model->PredictLogits(fresh.states.back());
        if (LogitsCrc(fresh_logits) != record.logits_crc) {
          std::fprintf(stderr,
                       "INVARIANT: delta=%lld incremental logits diverge "
                       "from the from-scratch pass\n",
                       static_cast<long long>(delta_size));
          ++failures;
        }
      }
    }
    record.seconds_per_iter = seconds / static_cast<double>(timed_iters);
    record.speedup = full_seconds / std::max(1e-9, record.seconds_per_iter);
    records.push_back(record);
    std::printf("%10lld | %14lld %9.2f%% | %10.4f %8.1fx\n",
                static_cast<long long>(delta_size),
                static_cast<long long>(record.recomputed),
                100.0 * static_cast<double>(record.recomputed) /
                    static_cast<double>(full_work),
                record.seconds_per_iter, record.speedup);
  }
  std::printf(
      "\nexpected shape: recomputation tracks the delta's k-hop out-cone;\n"
      "small daily deltas re-score a few percent of the graph, converging\n"
      "to a full pass as the delta saturates it.\n");

  char shape[64];
  std::snprintf(shape, sizeof(shape), "%lldx%lld",
                static_cast<long long>(config.num_nodes),
                static_cast<long long>(config.feature_dim));
  WriteJson(out_path, records, quick, shape);

  if (failures != 0) {
    std::fprintf(stderr, "bench_incremental: %d invariant violation(s)\n",
                 failures);
    return 1;
  }
  if (!check_path.empty()) {
    return CheckAgainstBaseline(records, check_path, tolerance);
  }
  return 0;
}

}  // namespace
}  // namespace inferturbo

int main(int argc, char** argv) { return inferturbo::Main(argc, argv); }
