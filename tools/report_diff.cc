// The CI regression gate over telemetry documents. Two modes:
//
//   report_diff --baseline=BENCH_x.json --current=BENCH_x.ci.json
//       [--tolerance=0.25] [--abs-tolerance=1e-9] [--keys=speedup,gflops]
//       [--fail-on-missing] [--min-compared=1]
//
//     Compares two run_report.v1 / BENCH_*.json documents. Bench
//     documents (top-level "results" array) are aligned row-by-row on
//     their identity fields; keys are gated by direction (times may
//     not grow, throughputs may not shrink, checksums/CRCs must match
//     exactly — see ClassifyMetricKey). Exit 1 on any regression.
//
//   report_diff --lint=FILE [--schema=inferturbo.run_timeline.v1]
//
//     Validates that FILE is well-formed JSON (one document or JSONL)
//     using the in-tree strict parser, optionally requiring every
//     document's "schema" member. Exit 1 on malformed input.
//
// Exit codes: 0 ok, 1 regression/lint failure, 2 usage error.
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/telemetry/report_diff.h"

namespace inferturbo {
namespace {

std::vector<std::string> SplitCommas(const std::string& text) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find(',', start);
    if (end == std::string::npos) end = text.size();
    if (end > start) parts.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

int Main(int argc, const char* const argv[]) {
  const Result<FlagParser> flags = FlagParser::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 2;
  }

  const std::string lint = flags->GetString("lint", "");
  if (!lint.empty()) {
    const Result<std::int64_t> documents =
        LintJsonFile(lint, flags->GetString("schema", ""));
    if (!documents.ok()) {
      std::fprintf(stderr, "report_diff: lint failed: %s\n",
                   documents.status().ToString().c_str());
      return 1;
    }
    std::printf("report_diff: %s ok (%lld documents)\n", lint.c_str(),
                static_cast<long long>(*documents));
    return 0;
  }

  const std::string baseline = flags->GetString("baseline", "");
  const std::string current = flags->GetString("current", "");
  if (baseline.empty() || current.empty()) {
    std::fprintf(
        stderr,
        "usage: report_diff --baseline=A.json --current=B.json\n"
        "           [--tolerance=0.25] [--abs-tolerance=1e-9]\n"
        "           [--keys=substr,substr] [--fail-on-missing]\n"
        "           [--min-compared=1]\n"
        "       report_diff --lint=FILE [--schema=NAME]\n");
    return 2;
  }

  ReportDiffOptions options;
  options.tolerance = flags->GetDouble("tolerance", options.tolerance);
  options.abs_tolerance =
      flags->GetDouble("abs-tolerance", options.abs_tolerance);
  options.key_filters = SplitCommas(flags->GetString("keys", ""));
  options.fail_on_missing = flags->GetBool("fail-on-missing", false);
  options.min_compared =
      flags->GetInt("min-compared", options.min_compared);

  const Result<ReportDiffResult> result =
      DiffReportFiles(baseline, current, options);
  if (!result.ok()) {
    std::fprintf(stderr, "report_diff: %s\n",
                 result.status().ToString().c_str());
    return 2;
  }
  std::printf("report_diff: %s vs %s\n%s", baseline.c_str(),
              current.c_str(), FormatReportDiff(*result).c_str());
  return result->ok ? 0 : 1;
}

}  // namespace
}  // namespace inferturbo

int main(int argc, char** argv) {
  return inferturbo::Main(argc, argv);
}
