// Packs node/edge text tables into an immutable shard directory the
// out-of-core inference path streams (src/storage/):
//
//   graph_pack --nodes=nodes.tsv --edges=edges.tsv
//       --out=/data/job/shards --partitions=8 [--verify]
//
// --partitions must equal the --workers a later shard-backed
// --backend=mapreduce run will use: the shard partitioning *is* the
// worker assignment, which is what makes the streamed run's logits
// bit-identical to an in-memory one. --verify re-opens the pack,
// rebuilds the graph from it, and compares every byte against the
// input before declaring success.
#include <cstdio>
#include <string>

#include "src/common/byte_size.h"
#include "src/common/flags.h"
#include "src/graph/graph_io.h"
#include "src/storage/graph_view.h"
#include "src/storage/shard_store.h"
#include "src/storage/shard_writer.h"

namespace inferturbo {
namespace {

bool BitIdentical(const Graph& a, const Graph& b) {
  return a.num_nodes() == b.num_nodes() && a.num_edges() == b.num_edges() &&
         a.edge_src() == b.edge_src() && a.edge_dst() == b.edge_dst() &&
         a.labels() == b.labels() &&
         a.node_features().ApproxEquals(b.node_features(), 0.0f) &&
         a.has_edge_features() == b.has_edge_features() &&
         (!a.has_edge_features() ||
          a.edge_features().ApproxEquals(b.edge_features(), 0.0f));
}

int Main(int argc, const char* const argv[]) {
  const Result<FlagParser> flags = FlagParser::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 2;
  }
  const std::string nodes = flags->GetString("nodes", "");
  const std::string edges = flags->GetString("edges", "");
  const std::string out = flags->GetString("out", "");
  if (nodes.empty() || edges.empty() || out.empty()) {
    std::fprintf(stderr,
                 "usage: graph_pack --nodes=NODES.tsv --edges=EDGES.tsv "
                 "--out=SHARD_DIR [--partitions=N] [--verify]\n");
    return 2;
  }

  const Result<Graph> graph = LoadGraphFromTables(nodes, edges);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }

  ShardWriterOptions writer;
  writer.num_partitions = flags->GetInt("partitions", 8);
  const Result<ShardMeta> meta = WriteGraphShards(*graph, out, writer);
  if (!meta.ok()) {
    std::fprintf(stderr, "%s\n", meta.status().ToString().c_str());
    return 1;
  }
  std::printf("packed %lld nodes / %lld edges into %lld shards under %s\n",
              static_cast<long long>(meta->num_nodes),
              static_cast<long long>(meta->num_edges),
              static_cast<long long>(meta->num_partitions()), out.c_str());

  if (flags->GetBool("verify", false)) {
    ShardStoreOptions store_options;
    store_options.directory = out;
    Result<ShardStore> store = ShardStore::Open(std::move(store_options));
    if (!store.ok()) {
      std::fprintf(stderr, "verify: %s\n",
                   store.status().ToString().c_str());
      return 1;
    }
    ShardGraphView view(std::move(*store));
    const Result<Graph> rebuilt = MaterializeGraph(view);
    if (!rebuilt.ok()) {
      std::fprintf(stderr, "verify: %s\n",
                   rebuilt.status().ToString().c_str());
      return 1;
    }
    if (!BitIdentical(*graph, *rebuilt)) {
      std::fprintf(stderr,
                   "verify: rebuilt graph differs from the input\n");
      return 1;
    }
    const StorageMetrics metrics = view.storage_metrics();
    std::printf("verify: OK (bit-identical round trip; peak mapped %s)\n",
                FormatBytes(metrics.peak_bytes_mapped).c_str());
  }
  return 0;
}

}  // namespace
}  // namespace inferturbo

int main(int argc, char** argv) { return inferturbo::Main(argc, argv); }
