// A production-style daily scoring pipeline, end to end:
//
//   day 0: ingest node/edge tables -> train -> save model + signature
//          file -> full-graph inference (MapReduce backend with disk
//          spill, like a real batch job) -> persist per-layer states
//          ("historical embeddings") and scores;
//   day 1: a small delta arrives (some accounts' features refreshed,
//          a few new transfers) -> *incremental* inference recomputes
//          only the affected cone and must agree with a from-scratch
//          run.
//
// This is the cost-sensitive nightly-batch shape the paper's MapReduce
// backend exists for (§IV-C2).
#include <cstdio>
#include <filesystem>
#include <numeric>

#include "src/graph/datasets.h"
#include "src/graph/graph_builder.h"
#include "src/graph/graph_io.h"
#include "src/inference/incremental.h"
#include "src/inference/inferturbo_mapreduce.h"
#include "src/nn/metrics.h"
#include "src/nn/model.h"
#include "src/nn/trainer.h"

int main() {
  using namespace inferturbo;
  const std::string work_dir = "/tmp/inferturbo_daily";
  std::filesystem::create_directories(work_dir);
  std::filesystem::create_directories(work_dir + "/spill");

  // --- day 0: ingest ------------------------------------------------
  PlantedGraphConfig graph_config;
  graph_config.num_nodes = 3000;
  graph_config.avg_degree = 8.0;
  graph_config.num_classes = 5;
  graph_config.feature_dim = 16;
  graph_config.seed = 99;
  const Dataset day0 = MakePlantedDataset("daily", graph_config);
  if (!WriteNodeTable(day0.graph, work_dir + "/nodes.tsv").ok() ||
      !WriteEdgeTable(day0.graph, work_dir + "/edges.tsv").ok()) {
    return 1;
  }
  const Result<Graph> ingested =
      LoadGraphFromTables(work_dir + "/nodes.tsv", work_dir + "/edges.tsv");
  if (!ingested.ok()) return 1;
  std::printf("day 0: ingested %lld nodes / %lld edges from tables\n",
              static_cast<long long>(ingested->num_nodes()),
              static_cast<long long>(ingested->num_edges()));

  // --- day 0: train + persist ---------------------------------------
  ModelConfig model_config;
  model_config.input_dim = day0.graph.feature_dim();
  model_config.hidden_dim = 24;
  model_config.num_classes = graph_config.num_classes;
  model_config.num_layers = 2;
  std::unique_ptr<GnnModel> model = MakeSageModel(model_config);
  TrainerOptions trainer_options;
  trainer_options.epochs = 8;
  MiniBatchTrainer trainer(&day0.graph, model.get(), trainer_options);
  if (!trainer.Train().ok()) return 1;
  if (!model->SaveParameters(work_dir + "/model.bin").ok() ||
      !model->SaveSignatures(work_dir + "/signatures.txt").ok()) {
    return 1;
  }

  // --- day 0: batch scoring on MapReduce with real disk spill --------
  InferTurboOptions options;
  options.num_workers = 16;
  options.strategies.partial_gather = true;
  options.mr_spill_directory = work_dir + "/spill";
  const Result<InferenceResult> day0_scores =
      RunInferTurboMapReduce(day0.graph, *model, options);
  if (!day0_scores.ok()) return 1;
  std::printf("day 0: scored all nodes (%.2f cpu-s, %.1f MB shuffled "
              "through external storage)\n",
              day0_scores->metrics.TotalCpuSeconds(),
              static_cast<double>(day0_scores->metrics.TotalBytesOut()) /
                  1e6);

  // Persist the historical per-layer embeddings for tomorrow.
  const LayerStates history = ComputeLayerStates(*model, day0.graph);

  // --- day 1: a small delta ------------------------------------------
  GraphBuilder builder(day0.graph.num_nodes());
  for (EdgeId e = 0; e < day0.graph.num_edges(); ++e) {
    builder.AddEdge(day0.graph.EdgeSrc(e), day0.graph.EdgeDst(e));
  }
  builder.AddEdge(5, 1200);  // new transfers
  builder.AddEdge(5, 2048);
  Tensor features = day0.graph.node_features();
  for (std::int64_t j = 0; j < features.cols(); ++j) {
    features.At(42, j) += 0.5f;  // account 42's profile refreshed
  }
  builder.SetNodeFeatures(std::move(features));
  builder.SetLabels(day0.graph.labels(), day0.graph.num_classes());
  const Graph day1 = std::move(builder).Finish().ValueOrDie();

  GraphDelta delta;
  delta.changed_nodes = {42};
  delta.changed_in_edges = {1200, 2048};
  const Result<IncrementalResult> incremental =
      IncrementalInference(*model, day1, history, delta);
  if (!incremental.ok()) return 1;
  const std::int64_t recomputed = std::accumulate(
      incremental->recomputed_per_layer.begin(),
      incremental->recomputed_per_layer.end(), std::int64_t{0});
  std::printf("day 1: delta touched %lld node-state recomputations vs "
              "%lld for a full pass (%.2f%%)\n",
              static_cast<long long>(recomputed),
              static_cast<long long>(day1.num_nodes() *
                                     model->num_layers()),
              100.0 * static_cast<double>(recomputed) /
                  static_cast<double>(day1.num_nodes() *
                                      model->num_layers()));

  // Verify against a from-scratch run.
  const LayerStates fresh = ComputeLayerStates(*model, day1);
  const bool exact = incremental->states.states.back().ApproxEquals(
      fresh.states.back(), 0.0f);
  std::printf("day 1: incremental result bit-identical to full rerun: %s\n",
              exact ? "yes" : "NO");
  return exact ? 0 : 1;
}
