// Quickstart: the full InferTurbo loop in ~80 lines.
//
//   1. build (or generate) an attributed graph;
//   2. train a GraphSAGE model mini-batch on sampled k-hop
//      neighborhoods — the *training* half of the paper's pipeline;
//   3. save the model + layer signature file;
//   4. run exact full-graph inference on the Pregel backend — the
//      *inference* half — and check it agrees with a fresh process
//      loading the same parameters.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_quickstart
#include <cstdio>

#include "src/graph/datasets.h"
#include "src/inference/inferturbo_pregel.h"
#include "src/nn/metrics.h"
#include "src/nn/model.h"
#include "src/nn/trainer.h"

int main() {
  using namespace inferturbo;

  // 1. A synthetic citation-style graph: 4 communities, homophilous
  //    edges, features clustered per community.
  PlantedGraphConfig graph_config;
  graph_config.num_nodes = 2000;
  graph_config.avg_degree = 12.0;
  graph_config.num_classes = 4;
  graph_config.feature_dim = 16;
  graph_config.homophily = 0.8;
  const Dataset dataset = MakePlantedDataset("quickstart", graph_config);
  std::printf("graph: %lld nodes, %lld edges, %lld classes\n",
              static_cast<long long>(dataset.graph.num_nodes()),
              static_cast<long long>(dataset.graph.num_edges()),
              static_cast<long long>(dataset.graph.num_classes()));

  // 2. A 2-layer GraphSAGE model trained mini-batch with neighbor
  //    sampling (fast, stochastic — fine for training, per the paper).
  ModelConfig model_config;
  model_config.input_dim = dataset.graph.feature_dim();
  model_config.hidden_dim = 32;
  model_config.num_classes = dataset.graph.num_classes();
  model_config.num_layers = 2;
  std::unique_ptr<GnnModel> model = MakeSageModel(model_config);

  TrainerOptions trainer_options;
  trainer_options.epochs = 10;
  trainer_options.fanout = 10;
  MiniBatchTrainer trainer(&dataset.graph, model.get(), trainer_options);
  const Result<TrainReport> report = trainer.Train();
  if (!report.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("trained %lld steps, final loss %.4f\n",
              static_cast<long long>(report->steps), report->final_loss);

  // 3. Persist what a deployment needs: parameters + signature file
  //    (the annotations the inference runtime reads, §IV-B).
  const std::string dir = "/tmp/inferturbo_quickstart";
  (void)std::system(("mkdir -p " + dir).c_str());
  if (!model->SaveParameters(dir + "/model.bin").ok() ||
      !model->SaveSignatures(dir + "/signatures.txt").ok()) {
    std::fprintf(stderr, "failed to save model\n");
    return 1;
  }
  std::printf("saved model + signatures under %s\n", dir.c_str());

  // 4. Exact full-graph inference — no sampling, no k-hop redundancy.
  InferTurboOptions inference_options;
  inference_options.num_workers = 8;
  inference_options.strategies.partial_gather = true;
  const Result<InferenceResult> result =
      RunInferTurboPregel(dataset.graph, *model, inference_options);
  if (!result.ok()) {
    std::fprintf(stderr, "inference failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const double accuracy = AccuracyOn(result->logits, dataset.graph.labels(),
                                     dataset.graph.test_nodes());
  std::printf("full-graph inference: test accuracy %.3f (chance %.3f)\n",
              accuracy, 1.0 / static_cast<double>(
                                  dataset.graph.num_classes()));
  std::printf("cluster accounting: %.2f cpu-seconds across %zu workers, "
              "simulated makespan %.3fs\n",
              result->metrics.TotalCpuSeconds(),
              result->metrics.workers.size(),
              result->metrics.SimulatedWallSeconds());

  // A second process would load the saved parameters and get the same
  // predictions — simulate that here.
  std::unique_ptr<GnnModel> reloaded = MakeSageModel(model_config);
  if (!reloaded->LoadParameters(dir + "/model.bin").ok()) return 1;
  const Result<InferenceResult> again =
      RunInferTurboPregel(dataset.graph, *reloaded, inference_options);
  if (!again.ok()) return 1;
  std::printf("reloaded model agrees: %s\n",
              again->logits.ApproxEquals(result->logits, 0.0f) ? "yes"
                                                               : "NO");
  return 0;
}
