// Offline embedding production for a recommender — the other common
// industrial inference job: instead of class scores, the job exports
// every node's final-layer *embedding* for a downstream ANN index.
// Demonstrates: the MapReduce backend (embedding jobs are usually
// cost-sensitive batch jobs), the node/edge-table input format, and
// cosine-similarity sanity checks on the produced embeddings.
#include <cstdio>

#include <cmath>

#include "src/graph/datasets.h"
#include "src/graph/graph_io.h"
#include "src/inference/inferturbo_mapreduce.h"
#include "src/inference/reference_inference.h"
#include "src/nn/model.h"
#include "src/nn/trainer.h"

namespace {

double Cosine(const inferturbo::Tensor& e, inferturbo::NodeId a,
              inferturbo::NodeId b) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::int64_t j = 0; j < e.cols(); ++j) {
    dot += static_cast<double>(e.At(a, j)) * e.At(b, j);
    na += static_cast<double>(e.At(a, j)) * e.At(a, j);
    nb += static_cast<double>(e.At(b, j)) * e.At(b, j);
  }
  return dot / (std::sqrt(na) * std::sqrt(nb) + 1e-12);
}

}  // namespace

int main() {
  using namespace inferturbo;

  // A user-item-ish interaction graph with planted taste communities.
  PlantedGraphConfig graph_config;
  graph_config.num_nodes = 3000;
  graph_config.avg_degree = 15.0;
  graph_config.num_classes = 8;  // taste communities
  graph_config.feature_dim = 24;
  graph_config.homophily = 0.85;
  const Dataset dataset = MakePlantedDataset("recsys", graph_config);

  // Round-trip the graph through the MapReduce input format (node
  // table + edge table) — the shape a production pipeline consumes.
  const std::string dir = "/tmp/inferturbo_recsys";
  (void)std::system(("mkdir -p " + dir).c_str());
  if (!WriteNodeTable(dataset.graph, dir + "/nodes.tsv").ok() ||
      !WriteEdgeTable(dataset.graph, dir + "/edges.tsv").ok()) {
    return 1;
  }
  const Result<Graph> loaded =
      LoadGraphFromTables(dir + "/nodes.tsv", dir + "/edges.tsv");
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("tables round-tripped: %lld nodes, %lld edges\n",
              static_cast<long long>(loaded->num_nodes()),
              static_cast<long long>(loaded->num_edges()));

  // Train a small GCN to pull community members together.
  ModelConfig model_config;
  model_config.input_dim = dataset.graph.feature_dim();
  model_config.hidden_dim = 16;
  model_config.num_classes = graph_config.num_classes;
  model_config.num_layers = 2;
  std::unique_ptr<GnnModel> model = MakeGcnModel(model_config);
  TrainerOptions trainer_options;
  trainer_options.epochs = 8;
  MiniBatchTrainer trainer(&dataset.graph, model.get(), trainer_options);
  if (!trainer.Train().ok()) return 1;

  // Produce class scores for every node on the cost-friendly
  // MapReduce backend.
  InferTurboOptions options;
  options.num_workers = 16;
  options.strategies.partial_gather = true;
  const Result<InferenceResult> result =
      RunInferTurboMapReduce(*loaded, *model, options);
  if (!result.ok()) return 1;

  // Embeddings for the ANN index come from the layer stack (the logits
  // head is just a linear readout on top of them).
  const Tensor embeddings =
      LayerStackForward(*model, loaded->node_features(), loaded->edge_src(),
                        loaded->edge_dst());
  std::printf("produced %lld x %lld embedding table\n",
              static_cast<long long>(embeddings.rows()),
              static_cast<long long>(embeddings.cols()));

  // Sanity: same-community pairs should be closer than cross-community
  // pairs on average.
  const auto& labels = dataset.graph.labels();
  double same = 0.0, cross = 0.0;
  std::int64_t same_n = 0, cross_n = 0;
  Rng rng(9);
  for (int i = 0; i < 4000; ++i) {
    const NodeId a = static_cast<NodeId>(
        rng.NextBounded(static_cast<std::uint64_t>(loaded->num_nodes())));
    const NodeId b = static_cast<NodeId>(
        rng.NextBounded(static_cast<std::uint64_t>(loaded->num_nodes())));
    if (a == b) continue;
    const double cos = Cosine(embeddings, a, b);
    if (labels[static_cast<std::size_t>(a)] ==
        labels[static_cast<std::size_t>(b)]) {
      same += cos;
      ++same_n;
    } else {
      cross += cos;
      ++cross_n;
    }
  }
  std::printf("mean cosine similarity: same community %.3f vs cross %.3f\n",
              same / same_n, cross / cross_n);
  std::printf("job shuffle volume: %.1f MB across %zu instances\n",
              static_cast<double>(result->metrics.TotalBytesOut()) / 1e6,
              result->metrics.workers.size());
  return 0;
}
