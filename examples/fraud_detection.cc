// Fraud detection on a transaction graph — the paper's motivating
// financial scenario. Three things matter here and the example
// demonstrates each:
//
//   * the graph is power-law (merchant "hub" accounts with huge
//     degree), so the hub strategies are enabled;
//   * predictions must be *consistent* across runs (a flip-flopping
//     fraud score is unacceptable) — shown by diffing repeated runs of
//     the sampled baseline vs InferTurbo;
//   * GAT is used, whose attention cannot be partially gathered —
//     the broadcast strategy carries its hub traffic instead.
#include <cstdio>

#include <set>

#include "src/graph/datasets.h"
#include "src/inference/inferturbo_pregel.h"
#include "src/inference/traditional_pipeline.h"
#include "src/nn/model.h"
#include "src/nn/trainer.h"

int main() {
  using namespace inferturbo;

  // Transaction graph: accounts with a heavy-tailed degree
  // distribution (hub merchants receive payments from thousands of
  // accounts), two classes: benign / fraudulent.
  PowerLawConfig graph_config;
  graph_config.num_nodes = 8000;
  graph_config.avg_degree = 10.0;
  graph_config.alpha = 1.7;
  graph_config.skew = PowerLawSkew::kBoth;
  graph_config.seed = 2024;
  const Dataset dataset = MakePowerLawDataset(graph_config,
                                              /*feature_dim=*/24);
  std::printf("transaction graph: %lld accounts, %lld transfers\n",
              static_cast<long long>(dataset.graph.num_nodes()),
              static_cast<long long>(dataset.graph.num_edges()));

  // 2-layer GAT risk model, trained on the millesimal labeled split
  // (fraud labels are scarce, as in production).
  ModelConfig model_config;
  model_config.input_dim = dataset.graph.feature_dim();
  model_config.hidden_dim = 32;
  model_config.num_classes = 2;
  model_config.num_layers = 2;
  model_config.heads = 4;
  std::unique_ptr<GnnModel> model = MakeGatModel(model_config);
  TrainerOptions trainer_options;
  trainer_options.epochs = 20;
  trainer_options.batch_size = 8;
  MiniBatchTrainer trainer(&dataset.graph, model.get(), trainer_options);
  if (!trainer.Train().ok()) return 1;

  // Baseline: sampled k-hop serving, re-run 5 times. Count accounts
  // whose fraud verdict changes between runs.
  std::vector<std::vector<std::int64_t>> runs;
  for (int run = 0; run < 5; ++run) {
    TraditionalPipelineOptions baseline;
    baseline.num_workers = 8;
    baseline.fanout = 5;
    baseline.seed = static_cast<std::uint64_t>(run + 1);
    const Result<InferenceResult> r =
        RunTraditionalPipeline(dataset.graph, *model, baseline);
    if (!r.ok()) return 1;
    runs.push_back(r->predictions);
  }
  std::int64_t flapping = 0;
  for (NodeId v = 0; v < dataset.graph.num_nodes(); ++v) {
    std::set<std::int64_t> verdicts;
    for (const auto& run : runs) {
      verdicts.insert(run[static_cast<std::size_t>(v)]);
    }
    flapping += verdicts.size() > 1;
  }
  std::printf("sampled baseline: %lld of %lld accounts change verdict "
              "across 5 runs\n",
              static_cast<long long>(flapping),
              static_cast<long long>(dataset.graph.num_nodes()));

  // InferTurbo: exact full-graph scoring with all hub strategies on.
  InferTurboOptions options;
  options.num_workers = 16;
  options.strategies.partial_gather = true;  // no-op for GAT, harmless
  options.strategies.broadcast = true;       // carries hub out-traffic
  options.strategies.shadow_nodes = true;    // splits extreme hubs
  const Result<InferenceResult> first =
      RunInferTurboPregel(dataset.graph, *model, options);
  const Result<InferenceResult> second =
      RunInferTurboPregel(dataset.graph, *model, options);
  if (!first.ok() || !second.ok()) return 1;
  std::printf("inferturbo: verdicts identical across runs: %s\n",
              first->predictions == second->predictions ? "yes" : "NO");

  std::int64_t flagged = 0;
  for (std::int64_t p : first->predictions) flagged += p == 1;
  std::printf("flagged %lld accounts; job used %.2f cpu-seconds, "
              "simulated makespan %.3fs\n",
              static_cast<long long>(flagged),
              first->metrics.TotalCpuSeconds(),
              first->metrics.SimulatedWallSeconds());
  return 0;
}
