// A flag-driven command-line front end over the whole public API —
// what an operator would actually run. Subcommand-less; the --mode
// flag selects the action:
//
//   generate   synthesize a dataset and write node/edge tables
//   train      train a model on tables, save parameters + signatures
//   infer      load tables + model, full-graph inference, write
//              sharded scores (+ optional embeddings)
//   serve      stand up the online serving engine on the trained
//              model: zipf query threads + a background delta stream,
//              latency percentiles and cache hit rate at the end
//
// Example session:
//   example_inferturbo_cli --mode=generate --dir=/tmp/job --nodes=5000
//   example_inferturbo_cli --mode=train    --dir=/tmp/job --model=sage
//   example_inferturbo_cli --mode=infer    --dir=/tmp/job --model=sage \
//       --backend=pregel --workers=16 --partial_gather=true
//   example_inferturbo_cli --mode=serve    --dir=/tmp/job --model=sage \
//       --serve_threads=4 --serve_requests=2000 --serve_deltas=16 \
//       --serve_batch_window=1 --serve_max_batch=64
//
// Serve-mode flags:
//   --serve_threads=N         concurrent query threads (default 4)
//   --serve_requests=N        queries per thread (default 500)
//   --serve_nodes_per_query=N node ids per query (default 4)
//   --serve_batch_window=MS   batcher coalescing window (default 1)
//   --serve_max_batch=N       queries per coalesced batch (default 64)
//   --serve_cache=BOOL        per-generation logits cache (default true)
//   --zipf_alpha=A            query popularity skew (default 1.1)
//   --serve_deltas=N          background graph deltas (default 8)
//   --delta_features=N        feature rows refreshed per delta
//   --delta_edges=N           edges added per delta
//   --delta_interval_ms=MS    pause between deltas (default 5)
//   --serve_verify=BOOL       after the run, check served logits are
//                             bit-identical to a from-scratch batch
//                             pass on the final graph (default true)
//
// Observability flags (any mode):
//   --log_level=debug|info|warning|error
//   --trace_out=FILE     Chrome trace-event JSON (open in Perfetto)
//   --metrics_out=FILE   machine-readable run report (infer/serve mode)
//   --profile=true       hardware-counter profiling (perf_event_open);
//                        per-scope cycle/instruction/LLC-miss totals
//                        land in the run report's metrics + profiling
//                        sections (graceful no-op where unavailable)
//   --flight_record_out=FILE  always-on flight recorder: on engine
//                        error or fatal signal the last ~4096
//                        structured events (retries, evictions, fault
//                        injections, generation swaps...) dump as
//                        inferturbo.flight_record.v1 JSON
//   --stats_interval=SEC serve mode: sampler thread appends one
//                        inferturbo.run_timeline.v1 JSONL line per
//                        interval (counter deltas, latency
//                        percentiles, epoch, batcher occupancy)
//   --timeline_out=FILE  serve mode: timeline destination (default
//                        <dir>/timeline.jsonl)
//
// Robustness flags (infer mode; any of them enables task supervision):
//   --task_deadline_ms=N        per-attempt deadline (0 = none)
//   --max_task_retries=N        retry budget per task (default 3)
//   --speculative_execution=true  backup attempts for stragglers
//   --fault_plan=SPEC           compute-side chaos schedule, e.g.
//       "crash@compute:1:0;transient@map:*:1x2;straggle@reduce:*:2~80"
//
// Performance flags (any mode):
//   --num_threads=N             kernel-layer threads (0 = all cores);
//                               results are bit-identical at any value
//   --fast_math=true            opt-in FMA matmul tier — faster, NOT
//                               bit-identical (documented tolerance)
//   --fast_math_precision=fp32|bf16   fast-math panel storage; bf16
//                               halves panel bytes at a wider tolerance
//
// Run with no flags for a demo that chains all three in /tmp.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <algorithm>
#include <numeric>
#include <optional>
#include <thread>

#include "src/common/flags.h"
#include "src/common/logging.h"
#include "src/runtime/fault_plan.h"
#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/perf_counters.h"
#include "src/telemetry/run_report.h"
#include "src/telemetry/timeline.h"
#include "src/telemetry/trace.h"
#include "src/graph/datasets.h"
#include "src/graph/graph_io.h"
#include "src/inference/inferturbo_mapreduce.h"
#include "src/inference/inferturbo_pregel.h"
#include "src/inference/output_writer.h"
#include "src/inference/reference_inference.h"
#include "src/nn/metrics.h"
#include "src/common/byte_size.h"
#include "src/storage/graph_view.h"
#include "src/storage/shard_store.h"
#include "src/nn/model.h"
#include "src/nn/trainer.h"
#include "src/serving/serving_engine.h"
#include "src/serving/workload.h"
#include "src/common/timer.h"
#include "src/tensor/kernels/kernels.h"

namespace inferturbo {
namespace {

ModelConfig ModelConfigFromFlags(const FlagParser& flags,
                                 const Graph& graph) {
  ModelConfig config;
  config.input_dim = graph.feature_dim();
  config.hidden_dim = flags.GetInt("hidden", 32);
  config.num_classes = graph.num_classes();
  config.num_layers = flags.GetInt("layers", 2);
  config.heads = flags.GetInt("heads", 4);
  config.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 11));
  return config;
}

int Generate(const FlagParser& flags, const std::string& dir) {
  PlantedGraphConfig config;
  config.num_nodes = flags.GetInt("nodes", 5000);
  config.avg_degree = flags.GetDouble("avg_degree", 10.0);
  config.num_classes = flags.GetInt("classes", 6);
  config.feature_dim = flags.GetInt("features", 16);
  config.homophily = flags.GetDouble("homophily", 0.75);
  config.in_skew_alpha = flags.GetDouble("in_skew", 0.0);
  config.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 11));
  const Dataset dataset = MakePlantedDataset("cli", config);
  if (!WriteNodeTable(dataset.graph, dir + "/nodes.tsv").ok() ||
      !WriteEdgeTable(dataset.graph, dir + "/edges.tsv").ok()) {
    std::fprintf(stderr, "failed to write tables under %s\n", dir.c_str());
    return 1;
  }
  std::printf("generated %lld nodes / %lld edges -> %s/{nodes,edges}.tsv\n",
              static_cast<long long>(dataset.graph.num_nodes()),
              static_cast<long long>(dataset.graph.num_edges()),
              dir.c_str());
  return 0;
}

int Train(const FlagParser& flags, const std::string& dir) {
  const Result<Graph> graph =
      LoadGraphFromTables(dir + "/nodes.tsv", dir + "/edges.tsv");
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  const std::string kind = flags.GetString("model", "sage");
  Result<std::unique_ptr<GnnModel>> model =
      MakeModel(kind, ModelConfigFromFlags(flags, *graph));
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }
  TrainerOptions options;
  // Tables carry no train/val/test split; draw a labeled subset.
  if (graph->train_nodes().empty()) {
    Rng rng(static_cast<std::uint64_t>(flags.GetInt("seed", 11)));
    const std::int64_t count =
        std::max<std::int64_t>(32, graph->num_nodes() / 5);
    for (std::int64_t i = 0; i < count; ++i) {
      options.train_nodes.push_back(static_cast<NodeId>(rng.NextBounded(
          static_cast<std::uint64_t>(graph->num_nodes()))));
    }
    std::sort(options.train_nodes.begin(), options.train_nodes.end());
    options.train_nodes.erase(
        std::unique(options.train_nodes.begin(), options.train_nodes.end()),
        options.train_nodes.end());
  }
  options.epochs = flags.GetInt("epochs", 10);
  options.batch_size = flags.GetInt("batch", 64);
  options.fanout = flags.GetInt("fanout", 10);
  options.learning_rate =
      static_cast<float>(flags.GetDouble("lr", 1e-2));
  options.verbose = flags.GetBool("verbose", false);
  MiniBatchTrainer trainer(&*graph, model->get(), options);
  const Result<TrainReport> report = trainer.Train();
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  if (!(*model)->SaveParameters(dir + "/model.bin").ok() ||
      !(*model)->SaveSignatures(dir + "/signatures.txt").ok()) {
    std::fprintf(stderr, "failed to save model under %s\n", dir.c_str());
    return 1;
  }
  std::printf("trained %s for %lld steps (final loss %.4f); saved model + "
              "signature file\n",
              kind.c_str(), static_cast<long long>(report->steps),
              report->final_loss);
  return 0;
}

int Infer(const FlagParser& flags, const std::string& dir) {
  const Result<Graph> graph =
      LoadGraphFromTables(dir + "/nodes.tsv", dir + "/edges.tsv");
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  const std::string kind = flags.GetString("model", "sage");
  Result<std::unique_ptr<GnnModel>> model =
      MakeModel(kind, ModelConfigFromFlags(flags, *graph));
  if (!model.ok() || !(*model)->LoadParameters(dir + "/model.bin").ok()) {
    std::fprintf(stderr, "cannot rebuild the trained model (same flags as "
                         "--mode=train required)\n");
    return 1;
  }

  InferTurboOptions options;
  options.num_workers = flags.GetInt("workers", 8);
  options.strategies.partial_gather = flags.GetBool("partial_gather", true);
  options.strategies.broadcast = flags.GetBool("broadcast", false);
  options.strategies.shadow_nodes = flags.GetBool("shadow_nodes", false);
  options.strategies.lambda = flags.GetDouble("lambda", 0.1);
  options.export_embeddings = flags.GetBool("embeddings", false);
  // Durable checkpoints: --checkpoint_dir enables them; --resume picks
  // up a previously killed job from its newest valid checkpoint.
  options.checkpoint_directory = flags.GetString("checkpoint_dir", "");
  options.checkpoint_interval = flags.GetInt("checkpoint_interval", 0);
  options.checkpoint_keep_last = flags.GetInt("keep_last", 2);
  options.resume_from = flags.GetBool("resume", false);
  if (!options.checkpoint_directory.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options.checkpoint_directory, ec);
    if (ec) {
      std::fprintf(stderr, "cannot create checkpoint directory %s: %s\n",
                   options.checkpoint_directory.c_str(),
                   ec.message().c_str());
      return 1;
    }
  }
  // Task supervision + compute-side chaos. Any of these flags turns
  // the TaskSupervisor on; --fault_plan additionally injects the given
  // crash/transient/straggle schedule (see ParseFaultPlan for the
  // grammar, e.g. "crash@compute:1:0;straggle@reduce:*:2~80").
  FaultPlan fault_plan;
  const std::string fault_spec = flags.GetString("fault_plan", "");
  if (!fault_spec.empty()) {
    const Status parsed = ParseFaultPlan(fault_spec, &fault_plan);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
      return 2;
    }
    options.fault_plan = &fault_plan;
  }
  options.supervision.task_deadline_seconds =
      flags.GetDouble("task_deadline_ms", 0.0) / 1000.0;
  options.supervision.max_task_retries =
      static_cast<int>(flags.GetInt("max_task_retries", 3));
  options.supervision.speculative_execution =
      flags.GetBool("speculative_execution", false);
  options.supervise_tasks =
      flags.GetBool("supervise_tasks", false) ||
      flags.Has("task_deadline_ms") || flags.Has("max_task_retries") ||
      flags.Has("speculative_execution");
  const std::string backend = flags.GetString("backend", "pregel");

  // --packed=DIR streams the graph from a graph_pack shard directory
  // (out-of-core) instead of the resident copy; the resident load above
  // still supplies model dims and the accuracy labels.
  // --storage_memory_budget caps resident shard bytes ("512MB", "4GiB").
  // --pipeline_slots sets the streaming pipeline's in-flight window
  // (2 = double buffering, 0 = demand loads); --read_path forces a read
  // tier (auto|mmap|pread|direct|uring); --storage_pinned_budget +
  // --pin_hubs keep the hub-heavy shards resident across the sweep.
  const std::string packed = flags.GetString("packed", "");
  Result<InferenceResult> result = Status::Internal("unset");
  options.storage_pipeline_slots =
      static_cast<int>(flags.GetInt("pipeline_slots", 2));
  options.pin_hub_shards = flags.GetBool("pin_hubs", false);
  if (!packed.empty()) {
    const Result<std::uint64_t> budget =
        flags.GetBytes("storage_memory_budget", 0);
    if (!budget.ok()) {
      std::fprintf(stderr, "%s\n", budget.status().ToString().c_str());
      return 1;
    }
    const Result<std::uint64_t> pinned_budget =
        flags.GetBytes("storage_pinned_budget", 0);
    if (!pinned_budget.ok()) {
      std::fprintf(stderr, "%s\n",
                   pinned_budget.status().ToString().c_str());
      return 1;
    }
    const Result<ShardReadPath> read_path =
        ParseShardReadPath(flags.GetString("read_path", "auto"));
    if (!read_path.ok()) {
      std::fprintf(stderr, "%s\n", read_path.status().ToString().c_str());
      return 1;
    }
    ShardStoreOptions store_options;
    store_options.directory = packed;
    store_options.memory_budget_bytes = *budget;
    store_options.pinned_budget_bytes = *pinned_budget;
    store_options.read_path = *read_path;
    Result<ShardStore> store = ShardStore::Open(std::move(store_options));
    if (!store.ok()) {
      std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
      return 1;
    }
    if (backend == "mapreduce" &&
        options.num_workers != store->meta().num_partitions()) {
      std::fprintf(stderr,
                   "--workers=%lld must equal the pack's --partitions=%lld "
                   "for the mapreduce backend\n",
                   static_cast<long long>(options.num_workers),
                   static_cast<long long>(store->meta().num_partitions()));
      return 1;
    }
    ShardGraphView view(std::move(*store));
    result = backend == "mapreduce"
                 ? RunInferTurboMapReduce(view, **model, options)
                 : RunInferTurboPregel(view, **model, options);
  } else {
    result = backend == "mapreduce"
                 ? RunInferTurboMapReduce(*graph, **model, options)
                 : RunInferTurboPregel(*graph, **model, options);
  }
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  const std::string out_dir = dir + "/output";
  std::filesystem::create_directories(out_dir);
  OutputWriterOptions writer;
  writer.num_shards = flags.GetInt("shards", 4);
  if (!WriteInferenceOutput(*result, out_dir, writer).ok()) {
    std::fprintf(stderr, "failed to write output shards\n");
    return 1;
  }
  std::printf("scored %lld nodes on %s backend: %.3f cpu-s, makespan "
              "%.4fs, %lld shards under %s\n",
              static_cast<long long>(graph->num_nodes()), backend.c_str(),
              result->metrics.TotalCpuSeconds(),
              result->metrics.SimulatedWallSeconds(),
              static_cast<long long>(writer.num_shards), out_dir.c_str());
  if (options.fault_plan != nullptr || options.supervise_tasks) {
    const SupervisionMetrics& sup = result->metrics.supervision;
    std::printf("supervision: %lld tasks / %lld attempts, %lld retries, "
                "%lld injected faults (%lld crash, %lld transient, %lld "
                "straggle), %lld speculative commits\n",
                static_cast<long long>(sup.tasks),
                static_cast<long long>(sup.attempts),
                static_cast<long long>(sup.retries),
                static_cast<long long>(sup.injected_crashes +
                                       sup.injected_transients +
                                       sup.injected_delays),
                static_cast<long long>(sup.injected_crashes),
                static_cast<long long>(sup.injected_transients),
                static_cast<long long>(sup.injected_delays),
                static_cast<long long>(sup.speculative_commits));
    // The realized schedule, for deterministic replay of this run.
    for (const TaskFaultEvent& event : fault_plan.realized_events()) {
      INFERTURBO_LOG(Info) << "fault_plan realized: "
                           << TaskFaultEventToString(event);
    }
  }
  // --metrics_out: one JSON document unifying job + storage accounting,
  // the metric-registry snapshot, and the flags this run was given.
  const std::string metrics_out = flags.GetString("metrics_out", "");
  if (!metrics_out.empty()) {
    RunReportOptions report;
    report.backend = backend;
    for (const std::string& key : flags.Keys()) {
      report.config[key] = flags.GetString(key, "");
    }
    const Status status =
        WriteRunReport(metrics_out, result->metrics, report);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("run report -> %s\n", metrics_out.c_str());
  }
  if (!graph->labels().empty()) {
    std::vector<NodeId> all(static_cast<std::size_t>(graph->num_nodes()));
    std::iota(all.begin(), all.end(), 0);
    std::printf("accuracy over all nodes: %.4f\n",
                AccuracyOn(result->logits, graph->labels(), all));
  }
  return 0;
}

int Serve(const FlagParser& flags, const std::string& dir) {
  Result<Graph> graph =
      LoadGraphFromTables(dir + "/nodes.tsv", dir + "/edges.tsv");
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  const std::string kind = flags.GetString("model", "sage");
  Result<std::unique_ptr<GnnModel>> model =
      MakeModel(kind, ModelConfigFromFlags(flags, *graph));
  if (!model.ok() || !(*model)->LoadParameters(dir + "/model.bin").ok()) {
    std::fprintf(stderr, "cannot rebuild the trained model (same flags as "
                         "--mode=train required)\n");
    return 1;
  }
  // Percentiles come from the registry's histograms; serve mode always
  // wants them, not only when --metrics_out is set.
  SetMetricsEnabled(true);

  ServingOptions options;
  options.batch_window_seconds =
      flags.GetDouble("serve_batch_window", 1.0) / 1000.0;
  options.max_batch = flags.GetInt("serve_max_batch", 64);
  options.cache_logits = flags.GetBool("serve_cache", true);
  std::printf("warming store: full %lld-layer forward over %lld nodes...\n",
              static_cast<long long>((*model)->num_layers()),
              static_cast<long long>(graph->num_nodes()));
  ServingEngine engine(model->get(), std::move(*graph), options);

  // --stats_interval / --timeline_out: a sampler thread appends one
  // run_timeline.v1 JSONL line per interval while the workload runs —
  // registry counter deltas plus the serving-specific gauges below.
  std::optional<TimelineSampler> timeline;
  const double stats_interval = flags.GetDouble("stats_interval", 0.0);
  std::string timeline_out = flags.GetString("timeline_out", "");
  if (stats_interval > 0.0 || !timeline_out.empty()) {
    if (timeline_out.empty()) timeline_out = dir + "/timeline.jsonl";
    TimelineOptions timeline_options;
    timeline_options.path = timeline_out;
    timeline_options.interval_seconds =
        stats_interval > 0.0 ? stats_interval : 1.0;
    timeline_options.extra = [&engine] {
      const ServingStats s = engine.stats();
      return JsonValue(JsonValue::Object{
          {"serving",
           JsonValue(JsonValue::Object{
               {"epoch", JsonValue(s.epoch)},
               {"queries", JsonValue(s.queries)},
               {"batches", JsonValue(s.batches)},
               {"deltas", JsonValue(s.deltas)},
               {"mean_batch_occupancy", JsonValue(s.mean_batch_occupancy)},
               {"cache_hit_rate", JsonValue(s.cache_hit_rate())},
           })},
      });
    };
    timeline.emplace(timeline_options);
  }

  const std::int64_t num_threads =
      std::max<std::int64_t>(1, flags.GetInt("serve_threads", 4));
  const std::int64_t requests_per_thread =
      std::max<std::int64_t>(1, flags.GetInt("serve_requests", 500));
  const std::int64_t nodes_per_query =
      std::max<std::int64_t>(1, flags.GetInt("serve_nodes_per_query", 4));
  const double zipf_alpha = flags.GetDouble("zipf_alpha", 1.1);
  const std::int64_t num_deltas = flags.GetInt("serve_deltas", 8);
  const double delta_interval_seconds =
      flags.GetDouble("delta_interval_ms", 5.0) / 1000.0;
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 11));

  // Queries hit only the warm-start id range: the zipf domain is fixed
  // up front while the delta stream may append nodes concurrently.
  const std::int64_t query_domain = engine.graph_snapshot()->num_nodes();
  std::atomic<std::int64_t> query_failures{0};
  WallTimer wall;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(num_threads));
  for (std::int64_t t = 0; t < num_threads; ++t) {
    workers.emplace_back([&, t] {
      ZipfQueryStream stream(query_domain, zipf_alpha,
                             seed + static_cast<std::uint64_t>(t) * 1001);
      for (std::int64_t i = 0; i < requests_per_thread; ++i) {
        const Result<QueryResponse> response =
            engine.Query(stream.Next(nodes_per_query));
        if (!response.ok()) {
          query_failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Background writer: live graph updates race the query threads.
  DeltaStream::Options delta_options;
  delta_options.feature_updates = flags.GetInt("delta_features", 4);
  delta_options.new_edges = flags.GetInt("delta_edges", 2);
  delta_options.zipf_alpha = zipf_alpha;
  delta_options.seed = seed + 7777;
  DeltaStream delta_stream(*engine.graph_snapshot(), delta_options);
  std::int64_t delta_failures = 0;
  for (std::int64_t d = 0; d < num_deltas; ++d) {
    const Result<DeltaApplied> applied =
        engine.ApplyMutation(delta_stream.Next());
    if (!applied.ok()) {
      std::fprintf(stderr, "%s\n", applied.status().ToString().c_str());
      ++delta_failures;
      continue;
    }
    INFERTURBO_LOG(Info) << "epoch " << applied->epoch << ": recomputed "
                         << applied->recomputed_nodes << " node states, "
                         << "invalidated "
                         << applied->invalidated_cache_rows
                         << " cached logits rows in " << applied->seconds
                         << "s";
    if (delta_interval_seconds > 0.0 && d + 1 < num_deltas) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(delta_interval_seconds));
    }
  }
  for (std::thread& worker : workers) worker.join();
  const double wall_seconds = wall.ElapsedSeconds();
  if (timeline) {
    timeline->Stop();
    std::printf("timeline -> %s (%lld samples)\n", timeline_out.c_str(),
                static_cast<long long>(timeline->samples()));
  }

  const ServingStats stats = engine.stats();
  const double qps =
      wall_seconds > 0.0 ? static_cast<double>(stats.queries) / wall_seconds
                         : 0.0;
  std::printf(
      "served %lld queries on %lld threads in %.3fs (%.0f qps), %lld "
      "batches (mean occupancy %.2f)\n",
      static_cast<long long>(stats.queries),
      static_cast<long long>(num_threads), wall_seconds, qps,
      static_cast<long long>(stats.batches), stats.mean_batch_occupancy);
  std::printf(
      "latency p50 %.1fus  p95 %.1fus  p99 %.1fus; cache hit rate %.1f%% "
      "(%lld hits / %lld misses)\n",
      stats.query_p50_seconds * 1e6, stats.query_p95_seconds * 1e6,
      stats.query_p99_seconds * 1e6, stats.cache_hit_rate() * 100.0,
      static_cast<long long>(stats.cache_hits),
      static_cast<long long>(stats.cache_misses));
  std::printf(
      "deltas: %lld applied -> epoch %lld, %lld node states recomputed, "
      "%lld cache rows invalidated\n",
      static_cast<long long>(stats.deltas),
      static_cast<long long>(stats.epoch),
      static_cast<long long>(stats.recomputed_nodes),
      static_cast<long long>(stats.invalidated_cache_rows));
  if (query_failures.load() > 0 || delta_failures > 0) {
    std::fprintf(stderr, "%lld queries / %lld deltas failed\n",
                 static_cast<long long>(query_failures.load()),
                 static_cast<long long>(delta_failures));
    return 1;
  }

  // Exactness spot-check: every served row must be bit-identical to a
  // from-scratch batch run on the final graph. The oracle is the
  // layer-wise reference pass — the same fold order the warm store and
  // change propagation use; the distributed backends match it within
  // the repo-wide logit tolerance, not bitwise (their partition-local
  // folds reassociate the gather sums).
  if (flags.GetBool("serve_verify", true)) {
    const std::shared_ptr<const Graph> final_graph = engine.graph_snapshot();
    std::vector<NodeId> all(
        static_cast<std::size_t>(final_graph->num_nodes()));
    std::iota(all.begin(), all.end(), 0);
    const Result<QueryResponse> served = engine.Query(all);
    if (!served.ok()) {
      std::fprintf(stderr, "verification query failed\n");
      return 1;
    }
    const Tensor batch = FullGraphReferenceLogits(**model, *final_graph);
    const bool identical =
        served->logits.rows() == batch.rows() &&
        served->logits.cols() == batch.cols() &&
        std::memcmp(served->logits.RowPtr(0), batch.RowPtr(0),
                    static_cast<std::size_t>(served->logits.rows() *
                                             served->logits.cols()) *
                        sizeof(float)) == 0;
    if (!identical) {
      std::fprintf(stderr, "served logits diverge from a from-scratch "
                           "batch run on the final graph\n");
      return 1;
    }
    std::printf("verify: served logits bit-identical to a from-scratch "
                "batch run on the final graph (epoch %lld)\n",
                static_cast<long long>(served->epoch));
  }

  const std::string metrics_out = flags.GetString("metrics_out", "");
  if (!metrics_out.empty()) {
    ServingReport serving;
    serving.queries = stats.queries;
    serving.batches = stats.batches;
    serving.cache_hits = stats.cache_hits;
    serving.cache_misses = stats.cache_misses;
    serving.deltas = stats.deltas;
    serving.epoch = stats.epoch;
    serving.recomputed_nodes = stats.recomputed_nodes;
    serving.invalidated_cache_rows = stats.invalidated_cache_rows;
    serving.query_p50_seconds = stats.query_p50_seconds;
    serving.query_p95_seconds = stats.query_p95_seconds;
    serving.query_p99_seconds = stats.query_p99_seconds;
    serving.mean_batch_occupancy = stats.mean_batch_occupancy;
    serving.cache_hit_rate = stats.cache_hit_rate();
    serving.wall_seconds = wall_seconds;
    serving.queries_per_second = qps;
    RunReportOptions report;
    report.backend = "serving";
    report.serving = &serving;
    for (const std::string& key : flags.Keys()) {
      report.config[key] = flags.GetString(key, "");
    }
    const Status status = WriteRunReport(metrics_out, JobMetrics{}, report);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("run report -> %s\n", metrics_out.c_str());
  }
  return 0;
}

int Main(int argc, const char* const argv[]) {
  const Result<FlagParser> flags = FlagParser::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 2;
  }
  const std::string log_level = flags->GetString("log_level", "");
  if (!log_level.empty()) {
    LogLevel level;
    if (!ParseLogLevel(log_level, &level)) {
      std::fprintf(stderr,
                   "unknown --log_level=%s (debug|info|warning|error)\n",
                   log_level.c_str());
      return 2;
    }
    SetLogLevel(level);
  }
  // Kernel-layer performance knobs. --num_threads bounds kernel
  // fan-out (bit-identical at any value); --fast_math opts in to the
  // tolerance-validated FMA tier and is never on by default.
  {
    kernels::KernelConfig config = kernels::GetKernelConfig();
    config.max_threads = static_cast<int>(flags->GetInt("num_threads", 0));
    config.fast_math = flags->GetBool("fast_math", false);
    const std::string precision =
        flags->GetString("fast_math_precision", "fp32");
    if (precision != "fp32" && precision != "bf16") {
      std::fprintf(stderr,
                   "unknown --fast_math_precision=%s (fp32|bf16)\n",
                   precision.c_str());
      return 2;
    }
    config.fast_math_bf16 = precision == "bf16";
    kernels::SetKernelConfig(config);
    if (config.fast_math && !kernels::UsingFastMath()) {
      std::fprintf(stderr,
                   "warning: --fast_math requested but this CPU/build lacks "
                   "AVX2+FMA; staying on the deterministic tier\n");
    }
  }
  // Telemetry is opt-in per run: tracing/metrics stay compiled-out-cheap
  // (a branch on a relaxed atomic) unless the flags ask for output.
  const std::string trace_out = flags->GetString("trace_out", "");
  if (!trace_out.empty()) SetTracingEnabled(true);
  if (!flags->GetString("metrics_out", "").empty()) SetMetricsEnabled(true);
  if (flags->GetBool("profile", false)) {
    // Counter totals accumulate through the registry, so profiling
    // implies metrics.
    SetProfilingEnabled(true);
    SetMetricsEnabled(true);
    if (!PerfCountersSupported()) {
      std::fprintf(stderr,
                   "warning: --profile requested but hardware counters are "
                   "unavailable (%s); profile.* metrics will stay zero\n",
                   PerfCountersUnavailableReason().c_str());
    }
  }
  const std::string flight_out = flags->GetString("flight_record_out", "");
  if (!flight_out.empty()) {
    // Non-empty path arms the recorder; the signal handler covers
    // fatal crashes, DumpFlightRecordOnError below covers clean
    // error exits.
    SetFlightRecordPath(flight_out);
    InstallFlightRecordSignalHandler();
  }

  const std::string dir = flags->GetString("dir", "/tmp/inferturbo_cli");
  std::filesystem::create_directories(dir);
  const std::string mode = flags->GetString("mode", "");
  const int rc = [&]() -> int {
    if (mode == "generate") return Generate(*flags, dir);
    if (mode == "train") return Train(*flags, dir);
    if (mode == "infer") return Infer(*flags, dir);
    if (mode == "serve") return Serve(*flags, dir);
    if (!mode.empty()) {
      std::fprintf(stderr,
                   "unknown --mode=%s (generate|train|infer|serve)\n",
                   mode.c_str());
      return 2;
    }
    // Demo: chain all three.
    std::printf("== demo: generate -> train -> infer under %s ==\n",
                dir.c_str());
    if (const int rc = Generate(*flags, dir); rc != 0) return rc;
    if (const int rc = Train(*flags, dir); rc != 0) return rc;
    return Infer(*flags, dir);
  }();
  if (rc != 0 &&
      DumpFlightRecordOnError("cli exit code " + std::to_string(rc))) {
    std::fprintf(stderr, "flight record -> %s\n", flight_out.c_str());
  }
  if (!trace_out.empty()) {
    const Status status = WriteTraceFile(trace_out);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return rc != 0 ? rc : 1;
    }
    std::printf("trace -> %s (open in https://ui.perfetto.dev)\n",
                trace_out.c_str());
  }
  return rc;
}

}  // namespace
}  // namespace inferturbo

int main(int argc, char** argv) { return inferturbo::Main(argc, argv); }
