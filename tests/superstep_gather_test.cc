// Randomized equivalence suite for the kernel-backed superstep data
// plane: the fast gather (BucketInbox + segment kernels) must be
// BIT-identical to the retained scalar oracle for every aggregator
// kind, batch mix (dense / partial / id-only broadcast refs / empty),
// and thread count; PooledAccumulator::AddBatch must be bit-identical
// to the per-row Add/AddPartial fold including emission order; and the
// new SegmentMax/SegmentMin kernels must match their pinned scalar
// references exactly.
#include "src/gas/superstep_gather.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/gas/message.h"
#include "src/tensor/kernels/kernel_config.h"
#include "src/tensor/kernels/kernels.h"
#include "src/tensor/kernels/reference.h"

namespace inferturbo {
namespace {

// Forces the kernel layer to `threads` workers with no serial
// fallback, restoring the previous config on scope exit.
class ThreadGuard {
 public:
  explicit ThreadGuard(int threads) : saved_(kernels::GetKernelConfig()) {
    kernels::KernelConfig config = saved_;
    config.max_threads = threads;
    config.min_parallel_work = threads > 1 ? 1 : (std::int64_t{1} << 62);
    kernels::SetKernelConfig(config);
  }
  ~ThreadGuard() { kernels::SetKernelConfig(saved_); }

 private:
  kernels::KernelConfig saved_;
};

// Skewed destination draw: min of two uniforms concentrates mass on
// low ids, so some segments are hubs and some are empty.
std::int64_t SkewedDst(Rng* rng, std::int64_t num_nodes) {
  const auto bound = static_cast<std::uint64_t>(num_nodes);
  const std::uint64_t a = rng->NextBounded(bound);
  const std::uint64_t b = rng->NextBounded(bound);
  return static_cast<std::int64_t>(a < b ? a : b);
}

struct RandomInbox {
  std::vector<MessageBatch> batches;
  std::vector<bool> partial;
  std::unordered_map<NodeId, std::vector<float>> board;
  std::vector<std::int64_t> local_index;  // identity over [0, num_nodes)
  std::int64_t num_nodes = 0;

  BroadcastLookupFn Lookup() const {
    return [this](NodeId key) -> const std::vector<float>* {
      const auto it = board.find(key);
      return it == board.end() ? nullptr : &it->second;
    };
  }
};

// A worker inbox like the Pregel engine delivers: dense batches,
// optionally sender-combined partial batches (built through the real
// PooledAccumulator so count columns are authentic), optionally
// id-only broadcast references, plus one deliberately empty batch.
RandomInbox MakeInbox(Rng* rng, AggKind kind, std::int64_t msg_dim,
                      bool with_partial, bool with_id_only) {
  RandomInbox inbox;
  inbox.num_nodes = 40;
  inbox.local_index.resize(static_cast<std::size_t>(inbox.num_nodes));
  for (std::int64_t i = 0; i < inbox.num_nodes; ++i) {
    inbox.local_index[static_cast<std::size_t>(i)] = i;
  }

  const std::int64_t num_dense = 3;
  for (std::int64_t bi = 0; bi < num_dense; ++bi) {
    MessageBatch b;
    const std::int64_t n =
        static_cast<std::int64_t>(rng->NextBounded(120)) + 1;
    b.payload = Tensor::RandomNormal(n, msg_dim, 2.0f, rng);
    for (std::int64_t i = 0; i < n; ++i) {
      b.dst.push_back(SkewedDst(rng, inbox.num_nodes));
      b.src.push_back(static_cast<NodeId>(rng->NextBounded(1000)));
    }
    inbox.batches.push_back(std::move(b));
    inbox.partial.push_back(false);
  }

  inbox.batches.emplace_back();  // empty batch must be a no-op
  inbox.partial.push_back(false);

  if (with_partial) {
    for (int sender = 0; sender < 2; ++sender) {
      PooledAccumulator acc(kind, msg_dim);
      const std::int64_t n =
          static_cast<std::int64_t>(rng->NextBounded(200)) + 1;
      const Tensor rows = Tensor::RandomNormal(n, msg_dim, 2.0f, rng);
      for (std::int64_t i = 0; i < n; ++i) {
        acc.Add(SkewedDst(rng, inbox.num_nodes), rows.RowPtr(i));
      }
      inbox.batches.push_back(acc.ToPartialBatch(/*from=*/sender));
      inbox.partial.push_back(true);
    }
  }

  if (with_id_only) {
    for (NodeId key = 900; key < 904; ++key) {
      std::vector<float> value(static_cast<std::size_t>(msg_dim));
      for (float& v : value) v = rng->NextFloat(-3.0f, 3.0f);
      inbox.board[key] = std::move(value);
    }
    MessageBatch refs;
    refs.payload = Tensor(0, 0);
    const std::int64_t n =
        static_cast<std::int64_t>(rng->NextBounded(60)) + 1;
    for (std::int64_t i = 0; i < n; ++i) {
      refs.dst.push_back(SkewedDst(rng, inbox.num_nodes));
      refs.src.push_back(900 + static_cast<NodeId>(rng->NextBounded(4)));
    }
    inbox.batches.push_back(std::move(refs));
    inbox.partial.push_back(false);
  }
  return inbox;
}

void ExpectBitIdentical(const GatherResult& fast, const GatherResult& oracle) {
  EXPECT_EQ(fast.kind, oracle.kind);
  EXPECT_EQ(fast.counts, oracle.counts);
  // Tolerance 0: bit-identity is the contract, not approximation.
  EXPECT_TRUE(fast.pooled.ApproxEquals(oracle.pooled, 0.0f));
  EXPECT_TRUE(fast.messages.ApproxEquals(oracle.messages, 0.0f));
  EXPECT_EQ(fast.dst_index, oracle.dst_index);
}

TEST(SuperstepGatherTest, PooledKindsMatchScalarOracleBitIdentically) {
  Rng rng(2024);
  for (const AggKind kind :
       {AggKind::kSum, AggKind::kMean, AggKind::kMax, AggKind::kMin}) {
    for (const bool with_partial : {false, true}) {
      for (const bool with_id_only : {false, true}) {
        const std::int64_t msg_dim = 1 + static_cast<std::int64_t>(
                                             rng.NextBounded(19));
        const RandomInbox inbox =
            MakeInbox(&rng, kind, msg_dim, with_partial, with_id_only);
        const GatherResult oracle = GatherSuperstepInboxScalar(
            kind, msg_dim, inbox.batches, inbox.partial, inbox.local_index,
            inbox.num_nodes, inbox.Lookup());
        for (const int threads : {1, 4}) {
          ThreadGuard guard(threads);
          const GatherResult fast = GatherSuperstepInbox(
              kind, msg_dim, inbox.batches, inbox.partial, inbox.local_index,
              inbox.num_nodes, inbox.Lookup());
          ExpectBitIdentical(fast, oracle);
        }
      }
    }
  }
}

TEST(SuperstepGatherTest, UnionMatchesScalarOracleBitIdentically) {
  Rng rng(77);
  for (const bool with_id_only : {false, true}) {
    const std::int64_t msg_dim = 8;
    const RandomInbox inbox = MakeInbox(&rng, AggKind::kUnion, msg_dim,
                                        /*with_partial=*/false, with_id_only);
    const GatherResult oracle = GatherSuperstepInboxScalar(
        AggKind::kUnion, msg_dim, inbox.batches, inbox.partial,
        inbox.local_index, inbox.num_nodes, inbox.Lookup());
    for (const int threads : {1, 4}) {
      ThreadGuard guard(threads);
      const GatherResult fast = GatherSuperstepInbox(
          AggKind::kUnion, msg_dim, inbox.batches, inbox.partial,
          inbox.local_index, inbox.num_nodes, inbox.Lookup());
      ExpectBitIdentical(fast, oracle);
    }
  }
}

TEST(SuperstepGatherTest, EmptyInboxYieldsNeutralZeros) {
  const std::vector<MessageBatch> batches;
  const std::vector<bool> partial;
  const std::vector<std::int64_t> local_index = {0, 1, 2};
  for (const AggKind kind : {AggKind::kSum, AggKind::kMean, AggKind::kMax,
                             AggKind::kMin, AggKind::kUnion}) {
    const GatherResult fast =
        GatherSuperstepInbox(kind, 5, batches, partial, local_index, 3,
                             BroadcastLookupFn{});
    const GatherResult oracle =
        GatherSuperstepInboxScalar(kind, 5, batches, partial, local_index, 3,
                                   BroadcastLookupFn{});
    ExpectBitIdentical(fast, oracle);
    EXPECT_EQ(fast.counts, (std::vector<std::int64_t>{0, 0, 0}));
    if (kind != AggKind::kUnion) {
      EXPECT_EQ(fast.pooled.rows(), 3);
      for (std::int64_t v = 0; v < 3; ++v) {
        for (std::int64_t j = 0; j < 5; ++j) {
          EXPECT_EQ(fast.pooled.At(v, j), 0.0f);
        }
      }
    }
  }
}

TEST(SuperstepGatherTest, EmptyLocalIndexBucketsEverythingToSegmentZero) {
  // The MapReduce reduce stage: one key group, no local-index table.
  Rng rng(5);
  MessageBatch b;
  const std::int64_t n = 37, msg_dim = 6;
  b.payload = Tensor::RandomNormal(n, msg_dim, 1.0f, &rng);
  for (std::int64_t i = 0; i < n; ++i) {
    b.dst.push_back(static_cast<NodeId>(rng.NextBounded(1000)));
    b.src.push_back(static_cast<NodeId>(i));
  }
  const std::vector<MessageBatch> batches = {b};
  const std::vector<bool> partial = {false};
  const GatherResult fast = GatherSuperstepInbox(
      AggKind::kSum, msg_dim, batches, partial, {}, 1, BroadcastLookupFn{});
  const GatherResult oracle = GatherSuperstepInboxScalar(
      AggKind::kSum, msg_dim, batches, partial, {}, 1, BroadcastLookupFn{});
  ExpectBitIdentical(fast, oracle);
  EXPECT_EQ(fast.counts, (std::vector<std::int64_t>{n}));
}

TEST(SuperstepGatherTest, AddBatchMatchesPerRowFoldAndEmissionOrder) {
  Rng rng(909);
  for (const AggKind kind :
       {AggKind::kSum, AggKind::kMean, AggKind::kMax, AggKind::kMin}) {
    for (const bool partial : {false, true}) {
      const std::int64_t width = 7;
      MessageBatch batch;
      if (partial) {
        PooledAccumulator sender(kind, width);
        const std::int64_t n = 150;
        const Tensor rows = Tensor::RandomNormal(n, width, 2.0f, &rng);
        for (std::int64_t i = 0; i < n; ++i) {
          sender.Add(static_cast<NodeId>(rng.NextBounded(25)), rows.RowPtr(i));
        }
        batch = sender.ToPartialBatch(/*from=*/3);
      } else {
        const std::int64_t n = 150;
        batch.payload = Tensor::RandomNormal(n, width, 2.0f, &rng);
        for (std::int64_t i = 0; i < n; ++i) {
          batch.dst.push_back(static_cast<NodeId>(rng.NextBounded(25)));
          batch.src.push_back(static_cast<NodeId>(i));
        }
      }

      PooledAccumulator oracle(kind, width);
      for (std::int64_t i = 0; i < batch.size(); ++i) {
        const float* row = batch.payload.RowPtr(i);
        if (partial) {
          oracle.AddPartial(batch.dst[static_cast<std::size_t>(i)], row,
                            static_cast<std::int64_t>(row[width]));
        } else {
          oracle.Add(batch.dst[static_cast<std::size_t>(i)], row);
        }
      }
      PooledAccumulator batched(kind, width);
      batched.AddBatch(batch, partial);

      const auto fin_oracle = oracle.Finalize();
      const auto fin_batched = batched.Finalize();
      // dst equality covers first-seen EMISSION order, not just content.
      EXPECT_EQ(fin_batched.dst, fin_oracle.dst);
      EXPECT_EQ(fin_batched.counts, fin_oracle.counts);
      EXPECT_TRUE(fin_batched.values.ApproxEquals(fin_oracle.values, 0.0f));

      // Wire form must also be byte-stable (the partial-gather payload).
      const MessageBatch wire_oracle = oracle.ToPartialBatch(9);
      const MessageBatch wire_batched = batched.ToPartialBatch(9);
      EXPECT_EQ(wire_batched.dst, wire_oracle.dst);
      EXPECT_EQ(wire_batched.src, wire_oracle.src);
      EXPECT_TRUE(wire_batched.payload.ApproxEquals(wire_oracle.payload,
                                                    0.0f));
    }
  }
}

TEST(SuperstepGatherTest, SegmentExtremaMatchPinnedReference) {
  Rng rng(42);
  const std::int64_t rows = 700, cols = 13, segments = 50;
  // Shift everything negative so a buggy zero-init would surface in max.
  Tensor values = Tensor::RandomNormal(rows, cols, 1.0f, &rng);
  for (std::int64_t i = 0; i < values.size(); ++i) {
    values.data()[i] -= 5.0f;
  }
  std::vector<std::int64_t> ids(static_cast<std::size_t>(rows));
  // Leave segments [40, 50) empty: they must read neutral zero.
  for (auto& id : ids) {
    id = static_cast<std::int64_t>(rng.NextBounded(40));
  }
  const Tensor ref_max = kernels::reference::SegmentMax(values, ids, segments);
  const Tensor ref_min = kernels::reference::SegmentMin(values, ids, segments);
  for (const int threads : {1, 4}) {
    ThreadGuard guard(threads);
    EXPECT_TRUE(
        kernels::SegmentMax(values, ids, segments).ApproxEquals(ref_max, 0.0f));
    EXPECT_TRUE(
        kernels::SegmentMin(values, ids, segments).ApproxEquals(ref_min, 0.0f));
  }
  for (std::int64_t s = 40; s < segments; ++s) {
    for (std::int64_t j = 0; j < cols; ++j) {
      EXPECT_EQ(ref_max.At(s, j), 0.0f);
      EXPECT_EQ(ref_min.At(s, j), 0.0f);
    }
  }
}

}  // namespace
}  // namespace inferturbo
