#include "src/inference/traditional_pipeline.h"

#include <gtest/gtest.h>

#include <set>

#include "src/graph/datasets.h"
#include "src/nn/model.h"

namespace inferturbo {
namespace {

Dataset SmallSkewed() {
  PowerLawConfig config;
  config.num_nodes = 300;
  config.avg_degree = 8.0;
  config.alpha = 1.7;
  config.seed = 13;
  return MakePowerLawDataset(config, /*feature_dim=*/8);
}

std::unique_ptr<GnnModel> SmallSage(const Graph& g) {
  ModelConfig config;
  config.input_dim = g.feature_dim();
  config.hidden_dim = 8;
  config.num_classes = g.num_classes();
  config.num_layers = 2;
  return MakeSageModel(config);
}

TEST(TraditionalPipelineTest, SamplingChangesLogitsAcrossSeeds) {
  // The root of the Fig. 7 effect: with a small fan-out, different runs
  // see different neighborhoods, so scores move. (Whether the *argmax*
  // flips depends on the trained model and class count; the Fig. 7
  // bench measures that on a trained many-class model.)
  const Dataset d = SmallSkewed();
  const std::unique_ptr<GnnModel> model = SmallSage(d.graph);
  TraditionalPipelineOptions options;
  options.num_workers = 4;
  options.fanout = 2;

  options.seed = 1;
  const Result<InferenceResult> a =
      RunTraditionalPipeline(d.graph, *model, options);
  options.seed = 2;
  const Result<InferenceResult> b =
      RunTraditionalPipeline(d.graph, *model, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_FALSE(a->logits.ApproxEquals(b->logits, 1e-6f));
}

TEST(TraditionalPipelineTest, SameSeedIsReproducible) {
  const Dataset d = SmallSkewed();
  const std::unique_ptr<GnnModel> model = SmallSage(d.graph);
  TraditionalPipelineOptions options;
  options.num_workers = 4;
  options.fanout = 3;
  options.seed = 9;
  const Result<InferenceResult> a =
      RunTraditionalPipeline(d.graph, *model, options);
  const Result<InferenceResult> b =
      RunTraditionalPipeline(d.graph, *model, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a->logits.ApproxEquals(b->logits, 0.0f));
}

TEST(TraditionalPipelineTest, TinyMemoryBudgetTriggersOom) {
  const Dataset d = SmallSkewed();
  const std::unique_ptr<GnnModel> model = SmallSage(d.graph);
  TraditionalPipelineOptions options;
  options.num_workers = 2;
  options.memory_budget_bytes = 1024;  // absurd on purpose
  const Result<InferenceResult> r =
      RunTraditionalPipeline(d.graph, *model, options);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsOutOfMemory());
}

TEST(TraditionalPipelineTest, ChargesStoreTraffic) {
  const Dataset d = SmallSkewed();
  const std::unique_ptr<GnnModel> model = SmallSage(d.graph);
  TraditionalPipelineOptions options;
  options.num_workers = 3;
  const Result<InferenceResult> r =
      RunTraditionalPipeline(d.graph, *model, options);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->metrics.TotalBytesIn(), 0u);
  EXPECT_GT(r->metrics.SimulatedWallSeconds(), 0.0);
  // Redundancy: the pipeline refetches overlapping neighborhoods, so
  // store traffic far exceeds one copy of the feature table.
  EXPECT_GT(r->metrics.TotalBytesIn(),
            2 * d.graph.node_features().ByteSize());
}

TEST(TraditionalPipelineTest, TargetSubsetOnlyScoresTargets) {
  const Dataset d = SmallSkewed();
  const std::unique_ptr<GnnModel> model = SmallSage(d.graph);
  TraditionalPipelineOptions options;
  options.num_workers = 2;
  options.targets = {5, 10, 20};
  const Result<InferenceResult> r =
      RunTraditionalPipeline(d.graph, *model, options);
  ASSERT_TRUE(r.ok());
  std::int64_t scored = 0;
  for (NodeId v = 0; v < d.graph.num_nodes(); ++v) {
    bool nonzero = false;
    for (std::int64_t j = 0; j < r->logits.cols(); ++j) {
      nonzero = nonzero || r->logits.At(v, j) != 0.0f;
    }
    scored += nonzero;
  }
  EXPECT_EQ(scored, 3);
}

TEST(TraditionalPipelineTest, HopCountGrowsFetchedBytesSuperlinearly) {
  // The Tab. IV effect: each extra hop multiplies neighborhood size.
  const Dataset d = SmallSkewed();
  const std::unique_ptr<GnnModel> model = SmallSage(d.graph);
  std::vector<std::uint64_t> fetched;
  for (std::int64_t hops = 1; hops <= 3; ++hops) {
    TraditionalPipelineOptions options;
    options.num_workers = 2;
    options.hops = hops;
    const Result<InferenceResult> r =
        RunTraditionalPipeline(d.graph, *model, options);
    ASSERT_TRUE(r.ok());
    fetched.push_back(r->metrics.TotalBytesIn());
  }
  EXPECT_GT(fetched[1], fetched[0]);
  EXPECT_GT(fetched[2], fetched[1]);
  // Growth factor itself grows (super-linear blow-up).
  EXPECT_GT(static_cast<double>(fetched[2]) / fetched[1], 1.2);
}

}  // namespace
}  // namespace inferturbo
