// Randomized trials of the central exactness claim: over a family of
// random graphs (varying skew, density, seeds) and random strategy
// subsets, distributed inference must match the single-machine
// reference and stay deterministic. This is the shotgun behind the
// hand-picked cases in inference_equivalence_test.cc.
#include <gtest/gtest.h>

#include "src/graph/datasets.h"
#include "src/inference/inferturbo_mapreduce.h"
#include "src/inference/inferturbo_pregel.h"
#include "src/inference/reference_inference.h"
#include "src/nn/model.h"
#include "src/tensor/ops.h"

namespace inferturbo {
namespace {

TEST(RandomizedExactnessTest, ManyRandomConfigurations) {
  Rng trial_rng(2026);
  const std::vector<std::string> kinds = {"sage", "gcn", "gat", "gin",
                                          "pool_sage"};
  int hub_trials = 0;
  for (int trial = 0; trial < 12; ++trial) {
    PowerLawConfig graph_config;
    graph_config.num_nodes =
        100 + static_cast<std::int64_t>(trial_rng.NextBounded(300));
    graph_config.avg_degree =
        3.0 + static_cast<double>(trial_rng.NextBounded(6));
    graph_config.alpha = 1.4 + 0.2 * static_cast<double>(
                                          trial_rng.NextBounded(4));
    graph_config.skew = static_cast<PowerLawSkew>(trial_rng.NextBounded(4));
    graph_config.seed = trial_rng.NextUint64();
    const Dataset dataset =
        MakePowerLawDataset(graph_config, /*feature_dim=*/6 +
                                              static_cast<std::int64_t>(
                                                  trial_rng.NextBounded(6)));

    ModelConfig model_config;
    model_config.input_dim = dataset.graph.feature_dim();
    model_config.hidden_dim = 8;
    model_config.num_classes = dataset.graph.num_classes();
    model_config.num_layers =
        1 + static_cast<std::int64_t>(trial_rng.NextBounded(3));
    model_config.heads = 2;
    model_config.seed = trial_rng.NextUint64();
    const std::string kind =
        kinds[static_cast<std::size_t>(trial_rng.NextBounded(kinds.size()))];
    const std::unique_ptr<GnnModel> model =
        MakeModel(kind, model_config).ValueOrDie();

    const Tensor reference = FullGraphReferenceLogits(*model, dataset.graph);

    InferTurboOptions options;
    options.num_workers =
        1 + static_cast<std::int64_t>(trial_rng.NextBounded(12));
    options.strategies.partial_gather = trial_rng.NextBounded(2) == 0;
    options.strategies.broadcast = trial_rng.NextBounded(2) == 0;
    options.strategies.shadow_nodes = trial_rng.NextBounded(2) == 0;
    options.strategies.threshold_override =
        5 + static_cast<std::int64_t>(trial_rng.NextBounded(40));
    if (options.strategies.broadcast || options.strategies.shadow_nodes) {
      ++hub_trials;
    }

    SCOPED_TRACE("trial " + std::to_string(trial) + " kind=" + kind +
                 " nodes=" + std::to_string(graph_config.num_nodes) +
                 " layers=" + std::to_string(model_config.num_layers) +
                 " workers=" + std::to_string(options.num_workers));

    const Result<InferenceResult> pregel =
        RunInferTurboPregel(dataset.graph, *model, options);
    ASSERT_TRUE(pregel.ok()) << pregel.status().ToString();
    EXPECT_TRUE(pregel->logits.ApproxEquals(reference, 3e-3f));

    const Result<InferenceResult> mapreduce =
        RunInferTurboMapReduce(dataset.graph, *model, options);
    ASSERT_TRUE(mapreduce.ok()) << mapreduce.status().ToString();
    EXPECT_TRUE(mapreduce->logits.ApproxEquals(reference, 3e-3f));

    // Determinism inside the trial.
    const Result<InferenceResult> again =
        RunInferTurboPregel(dataset.graph, *model, options);
    ASSERT_TRUE(again.ok());
    EXPECT_TRUE(again->logits.ApproxEquals(pregel->logits, 0.0f));
  }
  // The random draw must actually have exercised hub strategies.
  EXPECT_GT(hub_trials, 2);
}

}  // namespace
}  // namespace inferturbo
