// Chaos sweep — the supervision counterpart of crash_sweep_test.
// Randomized compute-fault schedules (crash / transient / straggle),
// straggler-plus-speculation scenarios, the Pregel degradation ladder
// (task retry -> superstep re-execution -> checkpoint restore -> clean
// error), and seeded random I/O fault record/replay, on both backends
// and all three load-balancing strategies. Every recovered run must be
// bit-identical to an undisturbed one, and the supervision counters
// must account for exactly the faults the plan injected.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/io_fault.h"
#include "src/common/rng.h"
#include "src/graph/datasets.h"
#include "src/inference/inferturbo_mapreduce.h"
#include "src/inference/inferturbo_pregel.h"
#include "src/nn/model.h"
#include "src/runtime/fault_plan.h"
#include "src/telemetry/run_report.h"

namespace inferturbo {
namespace {

// Out-skewed so broadcast and shadow-nodes actually engage their hub
// handling while the supervisor retries around them.
Dataset ChaosGraph() {
  PowerLawConfig config;
  config.num_nodes = 400;
  config.avg_degree = 8.0;
  config.alpha = 1.5;
  config.skew = PowerLawSkew::kOut;
  config.seed = 23;
  return MakePowerLawDataset(config, /*feature_dim=*/10);
}

std::unique_ptr<GnnModel> SmallModel(const Graph& g) {
  ModelConfig config;
  config.input_dim = g.feature_dim();
  config.hidden_dim = 8;
  config.num_classes = g.num_classes();
  config.num_layers = 3;  // 4 Pregel supersteps / 1 map + 3 reduce rounds
  return MakeSageModel(config);
}

std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

constexpr std::int64_t kWorkers = 3;
constexpr std::int64_t kSteps = 4;  // supersteps / MR stage indices

struct StrategyVariant {
  const char* name;
  StrategyConfig strategies;
};

std::vector<StrategyVariant> AllStrategies() {
  StrategyConfig pg;
  pg.partial_gather = true;
  StrategyConfig bc;
  bc.broadcast = true;
  bc.threshold_override = 10;
  StrategyConfig sn;
  sn.shadow_nodes = true;
  sn.threshold_override = 10;
  return {{"partial_gather", pg}, {"broadcast", bc}, {"shadow_nodes", sn}};
}

// A seeded plan that is always inside the default retry budget: the
// crash and the transient can at worst land on the same task in the
// same stage (2 failures < 3 retries), and straggles never fail.
void ArmRandomPlan(std::uint64_t seed, FaultPlan* plan) {
  Rng rng(seed);
  const auto step = [&] {
    return static_cast<std::int64_t>(rng.NextBounded(kSteps));
  };
  const auto worker = [&] { return static_cast<int>(rng.NextBounded(kWorkers)); };
  plan->ArmCrash(TaskStageKind::kAny, step(), worker(), /*times=*/1);
  plan->ArmTransient(TaskStageKind::kAny, step(), worker(), /*times=*/1);
  for (int i = 0; i < 2; ++i) {
    plan->ArmDelay(TaskStageKind::kAny, step(), worker(),
                   /*delay_seconds=*/0.005 + 0.005 * rng.NextBounded(3),
                   /*times=*/1);
  }
}

using BackendFn = Result<InferenceResult> (*)(const Graph&, const GnnModel&,
                                              const InferTurboOptions&);

struct Backend {
  const char* name;
  BackendFn run;
};

std::vector<Backend> BothBackends() {
  return {{"pregel",
           [](const Graph& g, const GnnModel& m, const InferTurboOptions& o) {
             return RunInferTurboPregel(g, m, o);
           }},
          {"mapreduce",
           [](const Graph& g, const GnnModel& m, const InferTurboOptions& o) {
             return RunInferTurboMapReduce(g, m, o);
           }}};
}

TEST(ChaosSweepTest, RandomizedPlansStayBitIdenticalOnBothBackends) {
  const Dataset d = ChaosGraph();
  const std::unique_ptr<GnnModel> model = SmallModel(d.graph);

  for (const Backend& backend : BothBackends()) {
    for (const StrategyVariant& variant : AllStrategies()) {
      InferTurboOptions clean;
      clean.num_workers = kWorkers;
      clean.strategies = variant.strategies;
      const Result<InferenceResult> reference =
          backend.run(d.graph, *model, clean);
      ASSERT_TRUE(reference.ok())
          << backend.name << "/" << variant.name << ": "
          << reference.status().ToString();

      for (std::uint64_t seed = 1; seed <= 2; ++seed) {
        FaultPlan plan;
        ArmRandomPlan(seed * 31 + (variant.name[0] == 'p' ? 0 : 7), &plan);

        InferTurboOptions chaotic = clean;
        chaotic.fault_plan = &plan;  // implicitly enables supervision
        const Result<InferenceResult> survived =
            backend.run(d.graph, *model, chaotic);
        ASSERT_TRUE(survived.ok())
            << backend.name << "/" << variant.name << " seed " << seed
            << ": " << survived.status().ToString();
        EXPECT_TRUE(survived->logits.ApproxEquals(reference->logits, 0.0f))
            << backend.name << "/" << variant.name << " seed " << seed
            << ": chaotic run must be bit-identical";

        // Supervision accounting matches the realized plan exactly:
        // every injected crash/transient burned one retry, straggles
        // burned none, and nothing escalated past rung 1.
        const SupervisionMetrics& s = survived->metrics.supervision;
        EXPECT_EQ(s.injected_crashes, plan.crashes_fired());
        EXPECT_EQ(s.injected_transients, plan.transients_fired());
        EXPECT_EQ(s.injected_delays, plan.delays_fired());
        EXPECT_EQ(s.retries, plan.crashes_fired() + plan.transients_fired());
        EXPECT_EQ(s.superstep_reexecutions, 0);
        EXPECT_EQ(s.checkpoint_restores, 0);
        EXPECT_GT(s.tasks, 0);
        // The crash rule's coordinates always occur on both backends,
        // so the plan never fires zero faults.
        EXPECT_GE(plan.crashes_fired(), 1) << backend.name << " seed " << seed;
      }
    }
  }
}

TEST(ChaosSweepTest, SpeculativeBackupRescuesStragglerOnBothBackends) {
  const Dataset d = ChaosGraph();
  const std::unique_ptr<GnnModel> model = SmallModel(d.graph);

  for (const Backend& backend : BothBackends()) {
    InferTurboOptions clean;
    clean.num_workers = kWorkers;
    clean.strategies.partial_gather = true;
    const Result<InferenceResult> reference =
        backend.run(d.graph, *model, clean);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();

    // Worker 1's first matching attempt sleeps 500 ms; the backup
    // launches after 20 ms, commits, and the straggler's cooperative
    // delay aborts — so the run finishes long before the straggle
    // would have.
    FaultPlan plan;
    plan.ArmDelay(TaskStageKind::kAny, -1, /*executor=*/1,
                  /*delay_seconds=*/0.5, /*times=*/1);

    InferTurboOptions mitigated = clean;
    mitigated.fault_plan = &plan;
    mitigated.supervision.speculative_execution = true;
    mitigated.supervision.speculation_delay_seconds = 0.02;
    const Result<InferenceResult> survived =
        backend.run(d.graph, *model, mitigated);
    ASSERT_TRUE(survived.ok())
        << backend.name << ": " << survived.status().ToString();
    EXPECT_TRUE(survived->logits.ApproxEquals(reference->logits, 0.0f))
        << backend.name << ": speculative winner must be bit-identical";

    const SupervisionMetrics& s = survived->metrics.supervision;
    EXPECT_EQ(s.injected_delays, 1) << backend.name;
    EXPECT_GE(s.speculative_launched, 1) << backend.name;
    EXPECT_GE(s.speculative_commits, 1) << backend.name;
    EXPECT_EQ(s.retries, 0) << backend.name;  // straggle is not a failure
  }
}

TEST(PregelChaosLadderTest, SuperstepReexecutionRecoversAfterRetryExhaustion) {
  const Dataset d = ChaosGraph();
  const std::unique_ptr<GnnModel> model = SmallModel(d.graph);

  InferTurboOptions clean;
  clean.num_workers = kWorkers;
  clean.strategies.partial_gather = true;
  const Result<InferenceResult> reference =
      RunInferTurboPregel(d.graph, *model, clean);
  ASSERT_TRUE(reference.ok());

  // Five crash shots pinned to executor 0 in superstep 1: four exhaust
  // the per-task retry budget (failing the stage), the fifth burns one
  // retry inside the re-executed superstep, which then completes.
  // Quarantine is disabled so the shots cannot be dodged by
  // reassignment — this test is about rung 2, not rung 1.5.
  FaultPlan plan;
  plan.ArmCrash(TaskStageKind::kPregelCompute, /*stage_index=*/1,
                /*executor=*/0, /*times=*/5);

  InferTurboOptions faulty = clean;
  faulty.fault_plan = &plan;
  faulty.supervision.quarantine_threshold = 0;
  const Result<InferenceResult> recovered =
      RunInferTurboPregel(d.graph, *model, faulty);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(recovered->logits.ApproxEquals(reference->logits, 0.0f))
      << "re-executed superstep must be bit-identical";

  const SupervisionMetrics& s = recovered->metrics.supervision;
  EXPECT_EQ(s.injected_crashes, 5);
  EXPECT_EQ(s.superstep_reexecutions, 1);
  EXPECT_EQ(s.checkpoint_restores, 0);
  EXPECT_EQ(plan.crashes_fired(), 5);
}

TEST(PregelChaosLadderTest, CheckpointRestoreIsTheRungAfterReexecution) {
  const Dataset d = ChaosGraph();
  const std::unique_ptr<GnnModel> model = SmallModel(d.graph);

  InferTurboOptions clean;
  clean.num_workers = kWorkers;
  clean.strategies.partial_gather = true;
  const Result<InferenceResult> reference =
      RunInferTurboPregel(d.graph, *model, clean);
  ASSERT_TRUE(reference.ok());

  // Twelve shots = three failed stage executions of superstep 1 (the
  // original plus both re-executions, four failures each). That
  // exhausts rung 2, forcing a checkpoint restore; the replay after
  // the restore runs with the plan spent and completes.
  FaultPlan plan;
  plan.ArmCrash(TaskStageKind::kPregelCompute, /*stage_index=*/1,
                /*executor=*/0, /*times=*/12);

  InferTurboOptions faulty = clean;
  faulty.checkpoint_interval = 1;
  faulty.fault_plan = &plan;
  faulty.supervision.quarantine_threshold = 0;
  const Result<InferenceResult> recovered =
      RunInferTurboPregel(d.graph, *model, faulty);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(recovered->logits.ApproxEquals(reference->logits, 0.0f))
      << "checkpoint-restored run must be bit-identical";

  const SupervisionMetrics& s = recovered->metrics.supervision;
  EXPECT_EQ(s.injected_crashes, 12);
  EXPECT_EQ(s.superstep_reexecutions, 2);
  EXPECT_EQ(s.checkpoint_restores, 1);
}

TEST(PregelChaosLadderTest, ExhaustedLadderReturnsCleanErrorNotAHang) {
  const Dataset d = ChaosGraph();
  const std::unique_ptr<GnnModel> model = SmallModel(d.graph);

  // Unbounded crashes on executor 0 in superstep 1 and no checkpoint:
  // retries, then both re-executions fail, and rung 4 surfaces the
  // stage error as a Status instead of hanging or crashing.
  FaultPlan plan;
  plan.ArmCrash(TaskStageKind::kPregelCompute, /*stage_index=*/1,
                /*executor=*/0, /*times=*/-1);

  InferTurboOptions doomed;
  doomed.num_workers = kWorkers;
  doomed.strategies.partial_gather = true;
  doomed.fault_plan = &plan;
  doomed.supervision.quarantine_threshold = 0;
  const Result<InferenceResult> failed =
      RunInferTurboPregel(d.graph, *model, doomed);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kInternal);
  EXPECT_NE(failed.status().message().find("exhausted"), std::string::npos)
      << failed.status().ToString();
  // Original + two re-executions, four failures each.
  EXPECT_EQ(plan.crashes_fired(), 12);
}

TEST(MapReduceChaosTest, ExhaustedRetriesFailCleanly) {
  const Dataset d = ChaosGraph();
  const std::unique_ptr<GnnModel> model = SmallModel(d.graph);

  // Every reduce attempt of round 0 crashes, on every executor — even
  // quarantine-driven reassignment finds no healthy home, so the task
  // exhausts its budget and the job reports a clean error.
  FaultPlan plan;
  plan.ArmCrash(TaskStageKind::kMrReduce, /*stage_index=*/1, /*executor=*/-1,
                /*times=*/-1);

  InferTurboOptions doomed;
  doomed.num_workers = kWorkers;
  doomed.strategies.partial_gather = true;
  doomed.fault_plan = &plan;
  const Result<InferenceResult> failed =
      RunInferTurboMapReduce(d.graph, *model, doomed);
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.status().message().find("exhausted"), std::string::npos)
      << failed.status().ToString();
}

TEST(ChaosSweepTest, RunReportCarriesTheFaultsSection) {
  const Dataset d = ChaosGraph();
  const std::unique_ptr<GnnModel> model = SmallModel(d.graph);

  FaultPlan plan;
  plan.ArmCrash(TaskStageKind::kPregelCompute, /*stage_index=*/1,
                /*executor=*/0, /*times=*/1);
  plan.ArmDelay(TaskStageKind::kAny, -1, /*executor=*/2,
                /*delay_seconds=*/0.01, /*times=*/2);

  InferTurboOptions options;
  options.num_workers = kWorkers;
  options.strategies.partial_gather = true;
  options.fault_plan = &plan;
  const Result<InferenceResult> run =
      RunInferTurboPregel(d.graph, *model, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  RunReportOptions report_options;
  report_options.backend = "pregel";
  const JsonValue report = BuildRunReport(run->metrics, report_options);
  const JsonValue* faults = report.Find("faults");
  ASSERT_NE(faults, nullptr) << report.Dump(2);
  EXPECT_EQ(faults->Find("injected_crashes")->as_int(), 1);
  EXPECT_EQ(faults->Find("injected_delays")->as_int(), 2);
  EXPECT_EQ(faults->Find("retries")->as_int(), 1);
  EXPECT_GT(faults->Find("tasks")->as_int(), 0);
  EXPECT_GT(faults->Find("attempts")->as_int(),
            faults->Find("tasks")->as_int());

  // The report round-trips through the strict parser, faults included.
  const Result<JsonValue> reparsed = ParseJson(report.Dump(2));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->Find("faults")->Find("injected_crashes")->as_int(), 1);

  // Every realized injection is in the plan's replayable log. (Firing
  // order between concurrent attempts is not deterministic, so count
  // kinds rather than positions.)
  const std::vector<TaskFaultEvent> events = plan.realized_events();
  ASSERT_EQ(events.size(), 3u);
  int crashes = 0;
  int straggles = 0;
  for (const TaskFaultEvent& event : events) {
    crashes += event.kind == TaskFaultKind::kCrash ? 1 : 0;
    straggles += event.kind == TaskFaultKind::kStraggle ? 1 : 0;
    EXPECT_FALSE(TaskFaultEventToString(event).empty());
  }
  EXPECT_EQ(crashes, 1);
  EXPECT_EQ(straggles, 2);
}

TEST(RandomIoFaultTest, SameSeedSameScheduleAndReplayMatches) {
  RandomIoFaultInjector::Profile profile;
  profile.fault_probability = 0.5;
  profile.log_faults = false;

  const auto drive = [](IoFaultInjector* injector) {
    std::vector<IoFaultKind> kinds;
    for (int i = 0; i < 40; ++i) {
      const IoOp op = (i % 2 == 0) ? IoOp::kWrite : IoOp::kRead;
      kinds.push_back(
          injector->Tick(op, "spill/block_" + std::to_string(i % 5)));
    }
    return kinds;
  };

  RandomIoFaultInjector a(/*seed=*/99, profile);
  RandomIoFaultInjector b(/*seed=*/99, profile);
  const std::vector<IoFaultKind> realized = drive(&a);
  EXPECT_EQ(realized, drive(&b)) << "same seed must realize identically";
  ASSERT_GT(a.faults_fired(), 0);
  EXPECT_EQ(a.realized_schedule().size(),
            static_cast<std::size_t>(a.faults_fired()));

  RandomIoFaultInjector other(/*seed=*/100, profile);
  EXPECT_NE(realized, drive(&other)) << "different seed, different chaos";

  // Replay is keyed by (op, path) — each key's faults come back in
  // recorded order, front-loaded within that key's ticks (by design,
  // so replay is robust to thread-interleaving differences). The
  // faults per key must therefore match the recording exactly.
  ReplayIoFaultInjector replay(a.realized_schedule());
  const std::vector<IoFaultKind> replayed = drive(&replay);
  std::map<std::pair<int, std::string>, std::vector<IoFaultKind>> want;
  for (const IoFaultEvent& event : a.realized_schedule()) {
    want[{static_cast<int>(event.op), event.path}].push_back(event.kind);
  }
  std::map<std::pair<int, std::string>, std::vector<IoFaultKind>> got;
  for (int i = 0; i < 40; ++i) {
    if (replayed[static_cast<std::size_t>(i)] == IoFaultKind::kNone) continue;
    const IoOp op = (i % 2 == 0) ? IoOp::kWrite : IoOp::kRead;
    got[{static_cast<int>(op), "spill/block_" + std::to_string(i % 5)}]
        .push_back(replayed[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(got, want);
  EXPECT_EQ(replay.faults_fired(), a.faults_fired());
  EXPECT_EQ(replay.faults_pending(), 0);
}

TEST(RandomIoFaultTest, SpillChaosRecordsAndReplaysBitIdentical) {
  const Dataset d = ChaosGraph();
  const std::unique_ptr<GnnModel> model = SmallModel(d.graph);

  InferTurboOptions clean;
  clean.num_workers = kWorkers;
  clean.strategies.partial_gather = true;
  const Result<InferenceResult> reference =
      RunInferTurboMapReduce(d.graph, *model, clean);
  ASSERT_TRUE(reference.ok());

  // Only retryable fault kinds (write failures; read-side draws degrade
  // to short reads) and a cap well under the retry budget, so the run
  // always survives.
  RandomIoFaultInjector::Profile profile;
  profile.fault_probability = 0.3;
  profile.write_fail_weight = 1.0;
  profile.no_space_weight = 0.0;
  profile.short_read_weight = 0.0;
  profile.bit_flip_weight = 0.0;
  profile.max_faults = 3;
  profile.log_faults = false;
  RandomIoFaultInjector random(/*seed=*/7, profile);

  // One directory for both runs: replay keys faults by path, so the
  // replayed job must touch the exact paths the recording did.
  const std::string spill_dir = FreshDir("chaos_spill");

  InferTurboOptions recorded = clean;
  recorded.mr_spill_directory = spill_dir;
  recorded.io_fault_injector = &random;
  recorded.io_retry.max_attempts = 8;
  const Result<InferenceResult> first =
      RunInferTurboMapReduce(d.graph, *model, recorded);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_TRUE(first->logits.ApproxEquals(reference->logits, 0.0f));

  const std::vector<IoFaultEvent> schedule = random.realized_schedule();
  ASSERT_GT(schedule.size(), 0u) << "expected the seed to fire faults";

  // A second run replays the exact same faults against the same spill
  // paths — the deterministic reproduction of a randomized failure.
  ReplayIoFaultInjector replay(schedule);
  InferTurboOptions replayed = clean;
  replayed.mr_spill_directory = FreshDir("chaos_spill");
  replayed.io_fault_injector = &replay;
  replayed.io_retry.max_attempts = 8;
  const Result<InferenceResult> second =
      RunInferTurboMapReduce(d.graph, *model, replayed);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(second->logits.ApproxEquals(reference->logits, 0.0f));
  EXPECT_EQ(replay.faults_fired(),
            static_cast<std::int64_t>(schedule.size()));
  EXPECT_EQ(replay.faults_pending(), 0);
}

}  // namespace
}  // namespace inferturbo
