// Table I/O: exact round trips (topology, labels, node + edge feature
// bytes) and the line-level parse-error contract — every malformed row
// fails with a clean Status naming file, line number, and reason.
#include "src/graph/graph_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "src/graph/graph_builder.h"

namespace inferturbo {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

void WriteText(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  ASSERT_TRUE(out) << path;
  out << text;
}

/// A small graph whose feature values survive the writer's %.6g text
/// encoding exactly, so round trips can be compared bit-for-bit.
Graph RepresentableGraph(bool with_edge_features) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 2);
  builder.AddEdge(1, 3);
  builder.AddEdge(2, 3);
  builder.AddEdge(3, 0);
  builder.SetNodeFeatures(Tensor::FromRows({{1.0f, -0.5f, 3.25f},
                                            {0.0f, 2.0f, -8.125f},
                                            {4.5f, 0.75f, 1.0f},
                                            {-2.0f, 0.25f, 0.5f}}));
  builder.SetLabels({0, 1, 1, 2}, 3);
  if (with_edge_features) {
    builder.SetEdgeFeatures(Tensor::FromRows({{1.0f, 0.5f},
                                              {-1.0f, 0.25f},
                                              {2.0f, -0.75f},
                                              {0.0f, 4.0f},
                                              {-3.5f, 1.25f}}));
  }
  Result<Graph> graph = std::move(builder).Finish();
  EXPECT_TRUE(graph.ok()) << graph.status().ToString();
  return std::move(graph).ValueOrDie();
}

void ExpectBitIdentical(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.edge_src(), b.edge_src());
  EXPECT_EQ(a.edge_dst(), b.edge_dst());
  EXPECT_EQ(a.labels(), b.labels());
  EXPECT_TRUE(a.node_features().ApproxEquals(b.node_features(), 0.0f));
  ASSERT_EQ(a.has_edge_features(), b.has_edge_features());
  if (a.has_edge_features()) {
    EXPECT_TRUE(a.edge_features().ApproxEquals(b.edge_features(), 0.0f));
  }
}

TEST(GraphIoRoundTripTest, ExactRoundTripWithEdgeFeatures) {
  const Graph original = RepresentableGraph(/*with_edge_features=*/true);
  const std::string nodes = TempPath("rt_nodes.tsv");
  const std::string edges = TempPath("rt_edges.tsv");
  ASSERT_TRUE(WriteNodeTable(original, nodes).ok());
  ASSERT_TRUE(WriteEdgeTable(original, edges).ok());
  const Result<Graph> loaded = LoadGraphFromTables(nodes, edges);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectBitIdentical(original, *loaded);
  std::remove(nodes.c_str());
  std::remove(edges.c_str());
}

TEST(GraphIoRoundTripTest, ExactRoundTripWithoutEdgeFeatures) {
  const Graph original = RepresentableGraph(/*with_edge_features=*/false);
  const std::string nodes = TempPath("rtb_nodes.tsv");
  const std::string edges = TempPath("rtb_edges.tsv");
  ASSERT_TRUE(WriteNodeTable(original, nodes).ok());
  ASSERT_TRUE(WriteEdgeTable(original, edges).ok());
  const Result<Graph> loaded = LoadGraphFromTables(nodes, edges);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(loaded->has_edge_features());
  ExpectBitIdentical(original, *loaded);
  std::remove(nodes.c_str());
  std::remove(edges.c_str());
}

/// Loads tables expecting failure; returns the error message.
std::string LoadError(const std::string& nodes, const std::string& edges) {
  const Result<Graph> loaded = LoadGraphFromTables(nodes, edges);
  EXPECT_FALSE(loaded.ok());
  return loaded.ok() ? "" : loaded.status().ToString();
}

class GraphIoErrorTest : public testing::Test {
 protected:
  void SetUp() override {
    nodes_ = TempPath("err_nodes.tsv");
    edges_ = TempPath("err_edges.tsv");
    // A valid baseline both tables can be corrupted from.
    WriteText(nodes_, "0\t0\t1,2\t1\n1\t1\t3,4\t\n");
    WriteText(edges_, "0\t1\n");
  }
  void TearDown() override {
    std::remove(nodes_.c_str());
    std::remove(edges_.c_str());
  }
  std::string nodes_, edges_;
};

TEST_F(GraphIoErrorTest, ValidBaselineLoads) {
  const Result<Graph> loaded = LoadGraphFromTables(nodes_, edges_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_nodes(), 2);
  EXPECT_EQ(loaded->num_edges(), 1);
}

TEST_F(GraphIoErrorTest, BadNodeIdNamesFileLineAndValue) {
  WriteText(nodes_, "0\t0\t1,2\t\nx7\t1\t3,4\t\n");
  const std::string error = LoadError(nodes_, edges_);
  EXPECT_NE(error.find(nodes_ + ":2:"), std::string::npos) << error;
  EXPECT_NE(error.find("x7"), std::string::npos) << error;
}

TEST_F(GraphIoErrorTest, NonDenseNodeIdsNameTheLine) {
  WriteText(nodes_, "0\t0\t1,2\t\n5\t1\t3,4\t\n");
  const std::string error = LoadError(nodes_, edges_);
  EXPECT_NE(error.find(nodes_ + ":2:"), std::string::npos) << error;
  EXPECT_NE(error.find("dense"), std::string::npos) << error;
}

TEST_F(GraphIoErrorTest, BadFloatNamesTheColumnValue) {
  WriteText(nodes_, "0\t0\t1,2\t\n1\t1\t3,oops\t\n");
  const std::string error = LoadError(nodes_, edges_);
  EXPECT_NE(error.find(nodes_ + ":2:"), std::string::npos) << error;
  EXPECT_NE(error.find("oops"), std::string::npos) << error;
}

TEST_F(GraphIoErrorTest, InconsistentFeatureDimNamesBothWidths) {
  WriteText(nodes_, "0\t0\t1,2\t\n1\t1\t3,4,5\t\n");
  const std::string error = LoadError(nodes_, edges_);
  EXPECT_NE(error.find(nodes_ + ":2:"), std::string::npos) << error;
  EXPECT_NE(error.find('3'), std::string::npos) << error;
  EXPECT_NE(error.find('2'), std::string::npos) << error;
}

TEST_F(GraphIoErrorTest, TooFewNodeFieldsNamesTheLine) {
  WriteText(nodes_, "0\t0\t1,2\t\n1\t1\n");
  const std::string error = LoadError(nodes_, edges_);
  EXPECT_NE(error.find(nodes_ + ":2:"), std::string::npos) << error;
}

TEST_F(GraphIoErrorTest, EmptyNodeTableIsAnError) {
  WriteText(nodes_, "");
  const std::string error = LoadError(nodes_, edges_);
  EXPECT_NE(error.find("empty node table"), std::string::npos) << error;
}

TEST_F(GraphIoErrorTest, BadEdgeEndpointNamesTheLine) {
  WriteText(edges_, "0\t1\nfoo\t0\n");
  const std::string error = LoadError(nodes_, edges_);
  EXPECT_NE(error.find(edges_ + ":2:"), std::string::npos) << error;
  EXPECT_NE(error.find("foo"), std::string::npos) << error;
}

TEST_F(GraphIoErrorTest, OutOfRangeEdgeNamesTheLine) {
  WriteText(edges_, "0\t1\n1\t9\n");
  const std::string error = LoadError(nodes_, edges_);
  EXPECT_NE(error.find(edges_ + ":2:"), std::string::npos) << error;
  EXPECT_NE(error.find('9'), std::string::npos) << error;
}

TEST_F(GraphIoErrorTest, MixedEdgeFeatureRowsNameTheBareLine) {
  WriteText(edges_, "0\t1\t0.5,0.5\n1\t0\n");
  const std::string error = LoadError(nodes_, edges_);
  EXPECT_NE(error.find(edges_ + ":2:"), std::string::npos) << error;
  EXPECT_NE(error.find("mixes"), std::string::npos) << error;
}

TEST_F(GraphIoErrorTest, InconsistentEdgeFeatureDimNamesTheLine) {
  WriteText(edges_, "0\t1\t0.5,0.5\n1\t0\t0.5\n");
  const std::string error = LoadError(nodes_, edges_);
  EXPECT_NE(error.find(edges_ + ":2:"), std::string::npos) << error;
}

TEST_F(GraphIoErrorTest, BadEdgeFeatureFloatNamesTheLine) {
  WriteText(edges_, "0\t1\t0.5,zap\n");
  const std::string error = LoadError(nodes_, edges_);
  EXPECT_NE(error.find(edges_ + ":1:"), std::string::npos) << error;
  EXPECT_NE(error.find("zap"), std::string::npos) << error;
}

}  // namespace
}  // namespace inferturbo
