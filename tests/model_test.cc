#include "src/nn/model.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/gas/signature.h"
#include "src/graph/datasets.h"
#include "src/inference/reference_inference.h"

namespace inferturbo {
namespace {

ModelConfig SmallConfig() {
  ModelConfig config;
  config.input_dim = 6;
  config.hidden_dim = 8;
  config.num_classes = 3;
  config.num_layers = 2;
  config.heads = 2;
  return config;
}

TEST(ModelTest, FactoryDispatch) {
  for (const std::string kind : {"sage", "gcn", "gat"}) {
    const Result<std::unique_ptr<GnnModel>> model =
        MakeModel(kind, SmallConfig());
    ASSERT_TRUE(model.ok()) << kind;
    EXPECT_EQ((*model)->num_layers(), 2);
    EXPECT_EQ((*model)->num_classes(), 3);
    EXPECT_EQ((*model)->input_dim(), 6);
    EXPECT_EQ((*model)->embedding_dim(), 8);
    EXPECT_EQ((*model)->layer(0).signature().layer_type, kind);
  }
  EXPECT_FALSE(MakeModel("transformer", SmallConfig()).ok());
}

TEST(ModelTest, ParameterCountBySpec) {
  const std::unique_ptr<GnnModel> sage = MakeSageModel(SmallConfig());
  // Each SAGE layer: w_self, w_nbr, bias -> 3; head: w, b -> 2.
  EXPECT_EQ(sage->Parameters().size(), 2u * 3 + 2);
  const std::unique_ptr<GnnModel> gat = MakeGatModel(SmallConfig());
  // Each GAT layer: W, bias + per-head (a_src, a_dst) -> 2 + 2*2 = 6.
  EXPECT_EQ(gat->Parameters().size(), 2u * 6 + 2);
}

TEST(ModelTest, SignatureFileHasOneLinePerLayerPlusHead) {
  const std::unique_ptr<GnnModel> model = MakeGatModel(SmallConfig());
  const std::string path = testing::TempDir() + "/signatures.txt";
  ASSERT_TRUE(model->SaveSignatures(path).ok());
  std::ifstream in(path);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);
  const Result<LayerSignature> sig0 = LayerSignature::Parse(lines[0]);
  ASSERT_TRUE(sig0.ok());
  EXPECT_EQ(sig0->layer_type, "gat");
  EXPECT_EQ(sig0->agg_kind, AggKind::kUnion);
  EXPECT_EQ(lines[2], "head in=8 out=3");
  std::remove(path.c_str());
}

TEST(ModelTest, SaveLoadParametersRoundTripsPredictions) {
  const Dataset d = MakeProductsLike(0.02, /*seed=*/9);
  ModelConfig config = SmallConfig();
  config.input_dim = d.graph.feature_dim();
  config.num_classes = d.graph.num_classes();

  config.seed = 1;
  const std::unique_ptr<GnnModel> source = MakeSageModel(config);
  const Tensor expected = FullGraphReferenceLogits(*source, d.graph);

  const std::string path = testing::TempDir() + "/params.bin";
  ASSERT_TRUE(source->SaveParameters(path).ok());

  config.seed = 999;  // different init, then overwritten by Load
  const std::unique_ptr<GnnModel> target = MakeSageModel(config);
  EXPECT_FALSE(
      FullGraphReferenceLogits(*target, d.graph).ApproxEquals(expected,
                                                              1e-6f));
  ASSERT_TRUE(target->LoadParameters(path).ok());
  EXPECT_TRUE(
      FullGraphReferenceLogits(*target, d.graph).ApproxEquals(expected,
                                                              0.0f));
  std::remove(path.c_str());
}

TEST(ModelTest, LoadRejectsArchitectureMismatch) {
  const std::unique_ptr<GnnModel> sage = MakeSageModel(SmallConfig());
  const std::string path = testing::TempDir() + "/params_mismatch.bin";
  ASSERT_TRUE(sage->SaveParameters(path).ok());
  const std::unique_ptr<GnnModel> gat = MakeGatModel(SmallConfig());
  EXPECT_FALSE(gat->LoadParameters(path).ok());
  std::remove(path.c_str());
}

TEST(ModelTest, LoadRejectsMissingFile) {
  const std::unique_ptr<GnnModel> model = MakeSageModel(SmallConfig());
  EXPECT_FALSE(model->LoadParameters("/nonexistent/params.bin").ok());
}

TEST(SignatureTest, SerializeParseRoundTrip) {
  LayerSignature sig;
  sig.layer_type = "sage";
  sig.agg_kind = AggKind::kMean;
  sig.input_dim = 64;
  sig.output_dim = 32;
  sig.message_dim = 64;
  sig.partial_gather = true;
  sig.broadcastable_messages = true;
  const Result<LayerSignature> parsed =
      LayerSignature::Parse(sig.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, sig);
}

TEST(SignatureTest, ParseRejectsGarbage) {
  EXPECT_FALSE(LayerSignature::Parse("not a signature").ok());
  EXPECT_FALSE(LayerSignature::Parse("agg=mean in=4").ok());  // no type
  EXPECT_FALSE(
      LayerSignature::Parse("layer_type=sage agg=banana").ok());
  EXPECT_FALSE(LayerSignature::Parse("layer_type=sage in=abc").ok());
}

TEST(SignatureTest, AggKindStringsRoundTrip) {
  for (const AggKind kind : {AggKind::kSum, AggKind::kMean, AggKind::kMax,
                             AggKind::kMin, AggKind::kUnion}) {
    const Result<AggKind> parsed =
        AggKindFromString(AggKindToString(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(AggKindFromString("median").ok());
}

}  // namespace
}  // namespace inferturbo
