#include "src/inference/output_writer.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "src/graph/datasets.h"
#include "src/inference/inferturbo_pregel.h"
#include "src/nn/model.h"

namespace inferturbo {
namespace {

InferenceResult ScoreSomething(bool embeddings) {
  PowerLawConfig config;
  config.num_nodes = 200;
  config.avg_degree = 5.0;
  config.seed = 19;
  const Dataset d = MakePowerLawDataset(config, /*feature_dim=*/8);
  ModelConfig mc;
  mc.input_dim = 8;
  mc.hidden_dim = 6;
  mc.num_classes = 2;
  mc.num_layers = 2;
  const std::unique_ptr<GnnModel> model = MakeSageModel(mc);
  InferTurboOptions options;
  options.num_workers = 3;
  options.export_embeddings = embeddings;
  return RunInferTurboPregel(d.graph, *model, options).ValueOrDie();
}

std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(OutputWriterTest, PredictionsRoundTripThroughShards) {
  const InferenceResult result = ScoreSomething(false);
  const std::string dir = FreshDir("writer_roundtrip");
  OutputWriterOptions options;
  options.num_shards = 5;
  ASSERT_TRUE(WriteInferenceOutput(result, dir, options).ok());
  const Result<std::vector<std::int64_t>> read = ReadPredictions(dir);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, result.predictions);
}

TEST(OutputWriterTest, WritesExpectedShardFiles) {
  const InferenceResult result = ScoreSomething(true);
  const std::string dir = FreshDir("writer_files");
  OutputWriterOptions options;
  options.num_shards = 3;
  ASSERT_TRUE(WriteInferenceOutput(result, dir, options).ok());
  EXPECT_TRUE(std::filesystem::exists(dir + "/MANIFEST.tsv"));
  for (int s = 0; s < 3; ++s) {
    char score_name[64], emb_name[64];
    std::snprintf(score_name, sizeof(score_name), "%s/scores_%05d.tsv",
                  dir.c_str(), s);
    std::snprintf(emb_name, sizeof(emb_name), "%s/embeddings_%05d.tsv",
                  dir.c_str(), s);
    EXPECT_TRUE(std::filesystem::exists(score_name));
    EXPECT_TRUE(std::filesystem::exists(emb_name));
  }
}

TEST(OutputWriterTest, EmbeddingExportIsOptIn) {
  const InferenceResult without = ScoreSomething(false);
  EXPECT_TRUE(without.embeddings.empty());
  const InferenceResult with = ScoreSomething(true);
  EXPECT_EQ(with.embeddings.rows(), with.logits.rows());
  EXPECT_EQ(with.embeddings.cols(), 6);
  // Logits are the head applied to the exported embeddings — spot-check
  // one is consistent with the other (nonzero rows everywhere).
  EXPECT_GT(with.embeddings.ByteSize(), 0u);
}

TEST(OutputWriterTest, ShardingIsDeterministic) {
  const InferenceResult result = ScoreSomething(false);
  const std::string dir_a = FreshDir("writer_det_a");
  const std::string dir_b = FreshDir("writer_det_b");
  OutputWriterOptions options;
  ASSERT_TRUE(WriteInferenceOutput(result, dir_a, options).ok());
  ASSERT_TRUE(WriteInferenceOutput(result, dir_b, options).ok());
  for (int s = 0; s < options.num_shards; ++s) {
    char name[64];
    std::snprintf(name, sizeof(name), "scores_%05d.tsv", s);
    std::ifstream a(dir_a + "/" + name), b(dir_b + "/" + name);
    std::string content_a((std::istreambuf_iterator<char>(a)),
                          std::istreambuf_iterator<char>());
    std::string content_b((std::istreambuf_iterator<char>(b)),
                          std::istreambuf_iterator<char>());
    EXPECT_EQ(content_a, content_b);
    EXPECT_FALSE(content_a.empty());
  }
}

TEST(OutputWriterTest, ReadRejectsMissingManifest) {
  EXPECT_FALSE(ReadPredictions("/no/such/dir").ok());
}

TEST(OutputWriterTest, RejectsZeroShards) {
  const InferenceResult result = ScoreSomething(false);
  OutputWriterOptions options;
  options.num_shards = 0;
  EXPECT_TRUE(WriteInferenceOutput(result, "/tmp", options)
                  .IsInvalidArgument());
}

TEST(OutputWriterTest, ExportLeavesNoTempFilesBehind) {
  const InferenceResult result = ScoreSomething(true);
  const std::string dir = FreshDir("writer_no_temp");
  OutputWriterOptions options;
  options.num_shards = 3;
  // Even with transient write faults forcing retries, every file lands
  // via rename and no .tmp. leftovers survive the export.
  ScriptedIoFaultInjector injector;
  injector.Arm(IoOp::kWrite, "scores_", IoFaultKind::kWriteFail,
               /*times=*/2);
  options.fault_injector = &injector;
  ASSERT_TRUE(WriteInferenceOutput(result, dir, options).ok());
  EXPECT_EQ(injector.faults_fired(), 2);
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    EXPECT_EQ(entry.path().filename().string().find(".tmp."),
              std::string::npos)
        << "leftover temp file: " << entry.path();
  }
  const Result<std::vector<std::int64_t>> read = ReadPredictions(dir);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, result.predictions);
}

TEST(OutputWriterTest, FailedManifestWriteLeavesNoCommitRecord) {
  const InferenceResult result = ScoreSomething(false);
  const std::string dir = FreshDir("writer_manifest_fail");
  OutputWriterOptions options;
  ScriptedIoFaultInjector injector;
  injector.Arm(IoOp::kWrite, "MANIFEST", IoFaultKind::kNoSpace,
               /*times=*/-1);
  options.fault_injector = &injector;
  const Status status = WriteInferenceOutput(result, dir, options);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  // The manifest is the commit record: without it the export directory
  // reads as "no export", never as a torn one.
  EXPECT_FALSE(std::filesystem::exists(dir + "/MANIFEST.tsv"));
  EXPECT_FALSE(ReadPredictions(dir).ok());
}

TEST(OutputWriterTest, ShardCorruptionOnDiskIsDetected) {
  const InferenceResult result = ScoreSomething(false);
  const std::string dir = FreshDir("writer_shard_corrupt");
  OutputWriterOptions options;
  ASSERT_TRUE(WriteInferenceOutput(result, dir, options).ok());
  // Flip a byte in one score shard after the export committed.
  const std::string victim = dir + "/scores_00001.tsv";
  std::string content;
  {
    std::ifstream in(victim, std::ios::binary);
    content.assign((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  }
  ASSERT_FALSE(content.empty());
  content[content.size() / 2] ^= 0x10;
  {
    std::ofstream out(victim, std::ios::binary | std::ios::trunc);
    out << content;
  }
  const Result<std::vector<std::int64_t>> read = ReadPredictions(dir);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIoError);
  EXPECT_NE(read.status().message().find("checksum mismatch"),
            std::string::npos)
      << read.status().ToString();
}

TEST(OutputWriterTest, TransientReadFaultIsRetried) {
  const InferenceResult result = ScoreSomething(false);
  const std::string dir = FreshDir("writer_read_retry");
  OutputWriterOptions options;
  ASSERT_TRUE(WriteInferenceOutput(result, dir, options).ok());
  ScriptedIoFaultInjector injector;
  injector.Arm(IoOp::kRead, "scores_", IoFaultKind::kBitFlip, /*times=*/1);
  const Result<std::vector<std::int64_t>> read =
      ReadPredictions(dir, &injector);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(injector.faults_fired(), 1);
  EXPECT_EQ(*read, result.predictions);
}

}  // namespace
}  // namespace inferturbo
