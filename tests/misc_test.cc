// Sparse matrices, graph IO round-trips, loss/metric helpers, and
// worker-metrics arithmetic.
#include <gtest/gtest.h>

#include <cstdio>

#include "src/graph/datasets.h"
#include "src/graph/graph_io.h"
#include "src/nn/loss.h"
#include "src/nn/metrics.h"
#include "src/pregel/worker_metrics.h"
#include "src/tensor/autograd.h"
#include "src/tensor/optimizer.h"
#include "src/tensor/ops.h"
#include "src/tensor/segment_ops.h"
#include "src/tensor/sparse.h"

namespace inferturbo {
namespace {

TEST(CsrMatrixTest, FromCooMergesDuplicates) {
  const std::vector<std::int64_t> rows = {0, 0, 1};
  const std::vector<std::int64_t> cols = {1, 1, 0};
  const std::vector<float> values = {2.0f, 3.0f, 4.0f};
  const CsrMatrix m = CsrMatrix::FromCoo(2, 2, rows, cols, values);
  EXPECT_EQ(m.nnz(), 2);
  const Tensor dense = m.MatMulDense(Tensor::FromRows({{1, 0}, {0, 1}}));
  EXPECT_TRUE(dense.ApproxEquals(Tensor::FromRows({{0, 5}, {4, 0}})));
}

TEST(CsrMatrixTest, SpmmMatchesSegmentSum) {
  Rng rng(3);
  const std::int64_t n = 20, e = 80, d = 4;
  Tensor x = Tensor::RandomNormal(n, d, 1.0f, &rng);
  std::vector<std::int64_t> src, dst;
  for (std::int64_t i = 0; i < e; ++i) {
    src.push_back(static_cast<std::int64_t>(
        rng.NextBounded(static_cast<std::uint64_t>(n))));
    dst.push_back(static_cast<std::int64_t>(
        rng.NextBounded(static_cast<std::uint64_t>(n))));
  }
  const CsrMatrix a = CsrMatrix::FromEdges(n, dst, src);
  const Tensor via_spmm = a.MatMulDense(x);
  const Tensor via_segment = SegmentSum(GatherRows(x, src), dst, n);
  EXPECT_TRUE(via_spmm.ApproxEquals(via_segment, 1e-4f));
}

TEST(CsrMatrixTest, TransposeRoundTrip) {
  Rng rng(11);
  const std::int64_t n = 12, e = 50;
  std::vector<std::int64_t> src, dst;
  for (std::int64_t i = 0; i < e; ++i) {
    src.push_back(static_cast<std::int64_t>(
        rng.NextBounded(static_cast<std::uint64_t>(n))));
    dst.push_back(static_cast<std::int64_t>(
        rng.NextBounded(static_cast<std::uint64_t>(n))));
  }
  const CsrMatrix a = CsrMatrix::FromEdges(n, dst, src);
  const CsrMatrix att = a.Transpose().Transpose();
  const Tensor x = Tensor::RandomNormal(n, 3, 1.0f, &rng);
  EXPECT_TRUE(att.MatMulDense(x).ApproxEquals(a.MatMulDense(x), 1e-5f));
  // (A x)^T-check: y^T (A x) == (A^T y)^T x for random y.
  const Tensor y = Tensor::RandomNormal(n, 3, 1.0f, &rng);
  const double lhs = SumAll(Mul(y, a.MatMulDense(x)));
  const double rhs = SumAll(Mul(a.Transpose().MatMulDense(y), x));
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(CsrMatrixTest, NormalizeRowsTurnsSumIntoMean) {
  const CsrMatrix m = [] {
    const std::vector<std::int64_t> rows = {0, 0};
    const std::vector<std::int64_t> cols = {0, 1};
    const std::vector<float> values = {1.0f, 1.0f};
    CsrMatrix m = CsrMatrix::FromCoo(1, 2, rows, cols, values);
    m.NormalizeRows();
    return m;
  }();
  const Tensor out = m.MatMulDense(Tensor::FromRows({{2}, {4}}));
  EXPECT_NEAR(out.At(0, 0), 3.0f, 1e-6f);
}

TEST(GraphIoTest, NodeAndEdgeTablesRoundTrip) {
  const Dataset d = MakeProductsLike(0.01, /*seed=*/4);
  const std::string node_path = testing::TempDir() + "/nodes.tsv";
  const std::string edge_path = testing::TempDir() + "/edges.tsv";
  ASSERT_TRUE(WriteNodeTable(d.graph, node_path).ok());
  ASSERT_TRUE(WriteEdgeTable(d.graph, edge_path).ok());
  const Result<Graph> loaded = LoadGraphFromTables(node_path, edge_path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_nodes(), d.graph.num_nodes());
  EXPECT_EQ(loaded->num_edges(), d.graph.num_edges());
  EXPECT_EQ(loaded->labels(), d.graph.labels());
  EXPECT_TRUE(
      loaded->node_features().ApproxEquals(d.graph.node_features(), 1e-4f));
  // Degree sequences survive the round trip.
  for (NodeId v = 0; v < d.graph.num_nodes(); ++v) {
    ASSERT_EQ(loaded->OutDegree(v), d.graph.OutDegree(v));
    ASSERT_EQ(loaded->InDegree(v), d.graph.InDegree(v));
  }
  std::remove(node_path.c_str());
  std::remove(edge_path.c_str());
}

TEST(GraphIoTest, EdgeFeaturesRoundTripThroughTables) {
  PlantedGraphConfig config;
  config.num_nodes = 120;
  config.avg_degree = 5.0;
  config.num_classes = 3;
  config.feature_dim = 4;
  config.edge_feature_dim = 2;
  const Dataset d = MakePlantedDataset("io-edge-feats", config);
  const std::string node_path = testing::TempDir() + "/ef_nodes.tsv";
  const std::string edge_path = testing::TempDir() + "/ef_edges.tsv";
  ASSERT_TRUE(WriteNodeTable(d.graph, node_path).ok());
  ASSERT_TRUE(WriteEdgeTable(d.graph, edge_path).ok());
  const Result<Graph> loaded = LoadGraphFromTables(node_path, edge_path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(loaded->has_edge_features());
  EXPECT_EQ(loaded->edge_features().cols(), 2);
  // Feature rows follow their edges through the round trip: compare
  // via (src, dst, features) multisets using the planted indicator.
  for (EdgeId e = 0; e < loaded->num_edges(); ++e) {
    const float indicator = loaded->edge_features().At(e, 0);
    EXPECT_TRUE(indicator == 1.0f || indicator == -1.0f);
  }
  std::remove(node_path.c_str());
  std::remove(edge_path.c_str());
}

TEST(DatasetsTest, InSkewPlantsHeavyTailedInDegrees) {
  PlantedGraphConfig config;
  config.num_nodes = 3000;
  config.avg_degree = 10.0;
  config.num_classes = 4;
  config.feature_dim = 4;
  config.in_skew_alpha = 1.3;
  const Dataset skewed = MakePlantedDataset("skewed", config);
  config.in_skew_alpha = 0.0;
  const Dataset uniform = MakePlantedDataset("uniform", config);
  std::int64_t max_skewed = 0, max_uniform = 0;
  for (NodeId v = 0; v < 3000; ++v) {
    max_skewed = std::max(max_skewed, skewed.graph.InDegree(v));
    max_uniform = std::max(max_uniform, uniform.graph.InDegree(v));
  }
  EXPECT_GT(max_skewed, 10 * max_uniform);
}

TEST(GraphIoTest, LoadRejectsMissingFiles) {
  EXPECT_FALSE(LoadGraphFromTables("/no/such/nodes", "/no/such/edges").ok());
}

TEST(MetricsTest, AccuracyCountsMatches) {
  const Tensor logits = Tensor::FromRows({{1, 0}, {0, 1}, {2, 1}});
  const std::vector<std::int64_t> labels = {0, 1, 1};
  EXPECT_NEAR(Accuracy(logits, labels), 2.0 / 3.0, 1e-9);
  const std::vector<std::int64_t> subset = {0, 1};
  EXPECT_NEAR(AccuracyOn(logits, labels, subset), 1.0, 1e-9);
}

TEST(MetricsTest, MicroF1Extremes) {
  const Tensor targets = Tensor::FromRows({{1, 0}, {0, 1}});
  const Tensor perfect = Tensor::FromRows({{5, -5}, {-5, 5}});
  const Tensor inverted = Tensor::FromRows({{-5, 5}, {5, -5}});
  EXPECT_NEAR(MicroF1(perfect, targets), 1.0, 1e-9);
  EXPECT_NEAR(MicroF1(inverted, targets), 0.0, 1e-9);
}

TEST(LossTest, CrossEntropyMatchesAutogradValue) {
  Rng rng(5);
  const Tensor logits = Tensor::RandomNormal(6, 4, 1.0f, &rng);
  const std::vector<std::int64_t> labels = {0, 1, 2, 3, 0, 1};
  const ag::VarPtr ag_loss =
      ag::SoftmaxCrossEntropyLoss(ag::Param(logits), labels);
  EXPECT_NEAR(CrossEntropyValue(logits, labels), ag_loss->value.At(0, 0),
              1e-4);
}

TEST(LossTest, BceMatchesAutogradValue) {
  Rng rng(7);
  const Tensor logits = Tensor::RandomNormal(5, 3, 2.0f, &rng);
  Tensor targets(5, 3);
  for (std::int64_t i = 0; i < targets.size(); ++i) {
    targets.data()[i] = (i % 2 == 0) ? 1.0f : 0.0f;
  }
  const ag::VarPtr ag_loss = ag::SigmoidBceLoss(ag::Param(logits), targets);
  EXPECT_NEAR(BceValue(logits, targets), ag_loss->value.At(0, 0), 1e-4);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // min ||x - t||^2 via BCE-free path: use autograd Mul/Add to build the
  // loss sum((x - t)^2).
  ag::VarPtr x = ag::Param(Tensor::Full(1, 4, 5.0f));
  const Tensor target = Tensor::FromRows({{1, 2, 3, 4}});
  AdamOptimizer::Options options;
  options.learning_rate = 0.1f;
  AdamOptimizer optimizer({x}, options);
  for (int step = 0; step < 300; ++step) {
    ag::VarPtr diff = ag::Add(x, ag::Constant(Scale(target, -1.0f)));
    ag::VarPtr sq = ag::Mul(diff, diff);
    ag::VarPtr loss =
        ag::MatMul(sq, ag::Constant(Tensor::Full(4, 1, 1.0f)));
    ag::Backward(loss);
    optimizer.Step();
  }
  EXPECT_TRUE(x->value.ApproxEquals(target, 1e-2f));
  EXPECT_EQ(optimizer.step_count(), 300);
}

TEST(WorkerMetricsTest, SimulatedWallIsSumOfStepMaxima) {
  JobMetrics metrics;
  metrics.cost_model.network_bytes_per_second = 1e12;  // negligible
  metrics.workers.resize(2);
  // Step 0: worker0 busy 1s, worker1 busy 3s. Step 1: 2s vs 1s.
  metrics.workers[0].steps = {{1.0, 0, 0, 0, 0, 0}, {2.0, 0, 0, 0, 0, 0}};
  metrics.workers[1].steps = {{3.0, 0, 0, 0, 0, 0}, {1.0, 0, 0, 0, 0, 0}};
  EXPECT_NEAR(metrics.SimulatedWallSeconds(), 3.0 + 2.0, 1e-9);
  EXPECT_NEAR(metrics.TotalCpuSeconds(), 7.0, 1e-9);
  EXPECT_NEAR(metrics.TotalCpuMinutes(), 7.0 / 60.0, 1e-9);
}

TEST(WorkerMetricsTest, LatencyIncludesNetworkAndWait) {
  ClusterCostModel model;
  model.network_bytes_per_second = 100.0;
  WorkerStepMetrics m;
  m.busy_seconds = 1.0;
  m.wait_seconds = 0.5;
  m.bytes_in = 50;
  m.bytes_out = 50;
  EXPECT_NEAR(model.StepLatencySeconds(m), 1.0 + 0.5 + 1.0, 1e-9);
}

TEST(WorkerMetricsTest, LatencyVarianceZeroForIdenticalWorkers) {
  JobMetrics metrics;
  metrics.workers.resize(3);
  for (auto& w : metrics.workers) {
    w.steps = {{1.0, 0, 0, 0, 0, 0}};
  }
  EXPECT_NEAR(LatencyVariance(metrics), 0.0, 1e-12);
  metrics.workers[0].steps[0].busy_seconds = 4.0;
  EXPECT_GT(LatencyVariance(metrics), 0.0);
}

TEST(WorkerMetricsTest, AppendStagesChains) {
  JobMetrics a, b;
  a.workers.resize(2);
  b.workers.resize(2);
  a.workers[0].steps.resize(1);
  a.workers[1].steps.resize(1);
  b.workers[0].steps.resize(2);
  b.workers[1].steps.resize(2);
  a.AppendStages(b);
  EXPECT_EQ(a.num_steps(), 3);
}

TEST(WorkerMetricsTest, AppendStagesMergesStorage) {
  JobMetrics a, b;
  a.workers.resize(1);
  b.workers.resize(1);
  a.workers[0].steps.resize(1);
  b.workers[0].steps.resize(1);
  a.storage.bytes_mapped = 100;
  a.storage.peak_bytes_mapped = 400;
  a.storage.map_calls = 3;
  a.storage.prefetch_issued = 2;
  a.storage.prefetch_hits = 1;
  b.storage.bytes_mapped = 250;
  b.storage.peak_bytes_mapped = 300;
  b.storage.map_calls = 5;
  b.storage.evictions = 2;
  b.storage.checksum_failures = 1;
  a.AppendStages(b);
  // Counts sum across stages; mapped-bytes figures take the max (they
  // are levels, not flows).
  EXPECT_EQ(a.storage.bytes_mapped, 250u);
  EXPECT_EQ(a.storage.peak_bytes_mapped, 400u);
  EXPECT_EQ(a.storage.map_calls, 8);
  EXPECT_EQ(a.storage.prefetch_issued, 2);
  EXPECT_EQ(a.storage.prefetch_hits, 1);
  EXPECT_EQ(a.storage.evictions, 2);
  EXPECT_EQ(a.storage.checksum_failures, 1);
}

}  // namespace
}  // namespace inferturbo
