#include "src/serving/serving_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/graph/datasets.h"
#include "src/inference/inferturbo_mapreduce.h"
#include "src/inference/inferturbo_pregel.h"
#include "src/inference/reference_inference.h"
#include "src/nn/model.h"
#include "src/serving/workload.h"

namespace inferturbo {
namespace {

// The repo-wide bound for the partition-parallel backends vs the
// layer-wise reference (their partition-local folds reassociate the
// gather sums); serving vs reference is held to exactly 0.
constexpr float kBackendTolerance = 2e-3f;

Dataset BaseDataset() {
  PlantedGraphConfig config;
  config.num_nodes = 400;
  config.avg_degree = 5.0;
  config.num_classes = 3;
  config.feature_dim = 8;
  config.seed = 91;
  return MakePlantedDataset("serving-base", config);
}

std::unique_ptr<GnnModel> SmallModel(const Graph& g) {
  ModelConfig config;
  config.input_dim = g.feature_dim();
  config.hidden_dim = 8;
  config.num_classes = g.num_classes();
  config.num_layers = 2;
  return MakeModel("sage", config).ValueOrDie();
}

bool BitIdenticalRow(const Tensor& a, std::int64_t a_row, const Tensor& b,
                     std::int64_t b_row) {
  return a.cols() == b.cols() &&
         std::memcmp(a.RowPtr(a_row), b.RowPtr(b_row),
                     static_cast<std::size_t>(a.cols()) * sizeof(float)) == 0;
}

/// The deterministic mutation schedule both the oracle and the engine
/// under test replay.
std::vector<GraphMutation> MutationSchedule(const Graph& graph,
                                            std::int64_t count) {
  DeltaStream::Options options;
  options.feature_updates = 3;
  options.new_edges = 2;
  options.new_node_every = 3;
  options.seed = 123;
  DeltaStream stream(graph, options);
  std::vector<GraphMutation> mutations;
  mutations.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) mutations.push_back(stream.Next());
  return mutations;
}

/// Per-epoch from-scratch oracle: expected[e] is the reference batch
/// logits on the graph as of epoch e.
struct EpochOracle {
  std::vector<std::shared_ptr<const Graph>> graphs;
  std::vector<Tensor> logits;
};

EpochOracle BuildOracle(const GnnModel& model, const Graph& initial,
                        const std::vector<GraphMutation>& mutations) {
  EpochOracle oracle;
  ServingEngine evolver(&model, Graph(initial));
  oracle.graphs.push_back(evolver.graph_snapshot());
  oracle.logits.push_back(FullGraphReferenceLogits(model, initial));
  for (const GraphMutation& mutation : mutations) {
    EXPECT_TRUE(evolver.ApplyMutation(mutation).ok());
    std::shared_ptr<const Graph> graph = evolver.graph_snapshot();
    oracle.logits.push_back(FullGraphReferenceLogits(model, *graph));
    oracle.graphs.push_back(std::move(graph));
  }
  return oracle;
}

// Flagship: any interleaving of concurrent query batches and delta
// batches serves logits bit-identical to a from-scratch batch run on
// the graph of the epoch each response names — and the final graph's
// served logits match from-scratch runs of both distributed backends.
// Run under TSan in CI (the batcher and the epoch swap are the point).
TEST(ServingEngineTest, ConcurrentQueriesExactUnderDeltaStream) {
  const Dataset d = BaseDataset();
  const std::unique_ptr<GnnModel> model = SmallModel(d.graph);
  constexpr std::int64_t kDeltas = 9;
  const std::vector<GraphMutation> mutations =
      MutationSchedule(d.graph, kDeltas);
  const EpochOracle oracle = BuildOracle(*model, d.graph, mutations);

  ServingOptions options;
  options.batch_window_seconds = 0.0005;
  options.max_batch = 16;
  ServingEngine engine(model.get(), Graph(d.graph), options);

  constexpr int kThreads = 4;
  constexpr int kQueriesPerThread = 60;
  const std::int64_t query_domain = d.graph.num_nodes();
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + static_cast<std::uint64_t>(t));
      std::int64_t last_epoch = 0;
      for (int i = 0; i < kQueriesPerThread; ++i) {
        std::vector<NodeId> nodes;
        const std::int64_t count = 1 + static_cast<std::int64_t>(
            rng.NextBounded(5));
        for (std::int64_t k = 0; k < count; ++k) {
          nodes.push_back(static_cast<NodeId>(
              rng.NextBounded(static_cast<std::uint64_t>(query_domain))));
        }
        const Result<QueryResponse> response = engine.Query(nodes);
        if (!response.ok()) {
          failures.fetch_add(1);
          continue;
        }
        // Epochs are monotone per thread (generations only move
        // forward) and every served row must match the from-scratch
        // logits of exactly that epoch's graph, bit for bit.
        if (response->epoch < last_epoch ||
            response->epoch >= static_cast<std::int64_t>(
                                   oracle.logits.size())) {
          failures.fetch_add(1);
          continue;
        }
        last_epoch = response->epoch;
        const Tensor& expected =
            oracle.logits[static_cast<std::size_t>(response->epoch)];
        for (std::size_t k = 0; k < nodes.size(); ++k) {
          if (!BitIdenticalRow(response->logits,
                               static_cast<std::int64_t>(k), expected,
                               nodes[k])) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  // Deltas race the queries on the main thread.
  for (const GraphMutation& mutation : mutations) {
    const Result<DeltaApplied> applied = engine.ApplyMutation(mutation);
    ASSERT_TRUE(applied.ok()) << applied.status().ToString();
    std::this_thread::sleep_for(std::chrono::microseconds(300));
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(engine.epoch(), kDeltas);

  // Final graph: full query vs the reference (exact) and vs both
  // distributed backends' own from-scratch runs (repo tolerance).
  const std::shared_ptr<const Graph> final_graph = engine.graph_snapshot();
  std::vector<NodeId> all(static_cast<std::size_t>(final_graph->num_nodes()));
  std::iota(all.begin(), all.end(), 0);
  const Result<QueryResponse> served = engine.Query(all);
  ASSERT_TRUE(served.ok());
  EXPECT_EQ(served->epoch, kDeltas);
  EXPECT_TRUE(served->logits.ApproxEquals(oracle.logits.back(), 0.0f))
      << "served final logits diverge from the from-scratch reference";

  const Result<InferenceResult> pregel =
      RunInferTurboPregel(*final_graph, *model, InferTurboOptions{});
  const Result<InferenceResult> mapreduce =
      RunInferTurboMapReduce(*final_graph, *model, InferTurboOptions{});
  ASSERT_TRUE(pregel.ok() && mapreduce.ok());
  EXPECT_TRUE(served->logits.ApproxEquals(pregel->logits, kBackendTolerance));
  EXPECT_TRUE(
      served->logits.ApproxEquals(mapreduce->logits, kBackendTolerance));
}

TEST(ServingEngineTest, CacheInvalidatesOnlyTheDeltaCone) {
  const Dataset d = BaseDataset();
  const std::unique_ptr<GnnModel> model = SmallModel(d.graph);
  ServingOptions options;
  options.batch_window_seconds = 0.0;
  ServingEngine engine(model.get(), Graph(d.graph), options);

  // Warm every cache row.
  std::vector<NodeId> all(static_cast<std::size_t>(d.graph.num_nodes()));
  std::iota(all.begin(), all.end(), 0);
  ASSERT_TRUE(engine.Query(all).ok());
  const ServingStats warm = engine.stats();
  EXPECT_EQ(warm.cache_misses, d.graph.num_nodes());
  EXPECT_EQ(warm.cache_hits, 0);

  // A hot repeat is all hits.
  ASSERT_TRUE(engine.Query({1, 2, 3}).ok());
  EXPECT_EQ(engine.stats().cache_hits, 3);

  // One feature delta; the cache must survive except the final-layer
  // cone, and the next full scan misses exactly the invalidated rows.
  GraphMutation mutation;
  mutation.feature_updates.emplace_back(
      7, std::vector<float>(static_cast<std::size_t>(d.graph.feature_dim()),
                            0.25f));
  const Result<DeltaApplied> applied = engine.ApplyMutation(mutation);
  ASSERT_TRUE(applied.ok());
  EXPECT_GT(applied->invalidated_cache_rows, 0);
  EXPECT_LT(applied->invalidated_cache_rows, d.graph.num_nodes() / 4);
  EXPECT_EQ(applied->epoch, 1);

  const std::int64_t misses_before = engine.stats().cache_misses;
  const Result<QueryResponse> rescan = engine.Query(all);
  ASSERT_TRUE(rescan.ok());
  EXPECT_EQ(engine.stats().cache_misses - misses_before,
            applied->invalidated_cache_rows);

  // And the refilled rows are exact.
  const Tensor expected =
      FullGraphReferenceLogits(*model, *engine.graph_snapshot());
  EXPECT_TRUE(rescan->logits.ApproxEquals(expected, 0.0f));
}

TEST(ServingEngineTest, GrowsAndServesNewNodes) {
  const Dataset d = BaseDataset();
  const std::unique_ptr<GnnModel> model = SmallModel(d.graph);
  ServingOptions options;
  options.batch_window_seconds = 0.0;
  ServingEngine engine(model.get(), Graph(d.graph), options);
  const NodeId fresh = d.graph.num_nodes();

  // The new node does not exist yet: its query fails, others work.
  EXPECT_FALSE(engine.Query({fresh}).ok());
  EXPECT_TRUE(engine.Query({0}).ok());

  GraphMutation mutation;
  mutation.new_node_features.push_back(std::vector<float>(
      static_cast<std::size_t>(d.graph.feature_dim()), 0.5f));
  mutation.new_edges.emplace_back(3, fresh);
  mutation.new_edges.emplace_back(fresh, 5);
  const Result<DeltaApplied> applied = engine.ApplyMutation(mutation);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(engine.graph_snapshot()->num_nodes(), fresh + 1);

  const Result<QueryResponse> response = engine.Query({fresh, 3, 5});
  ASSERT_TRUE(response.ok());
  const Tensor expected =
      FullGraphReferenceLogits(*model, *engine.graph_snapshot());
  EXPECT_TRUE(BitIdenticalRow(response->logits, 0, expected, fresh));
  EXPECT_TRUE(BitIdenticalRow(response->logits, 1, expected, 3));
  EXPECT_TRUE(BitIdenticalRow(response->logits, 2, expected, 5));
}

TEST(ServingEngineTest, RejectsMalformedMutations) {
  const Dataset d = BaseDataset();
  const std::unique_ptr<GnnModel> model = SmallModel(d.graph);
  ServingEngine engine(model.get(), Graph(d.graph), ServingOptions{});

  GraphMutation bad_update;
  bad_update.feature_updates.emplace_back(d.graph.num_nodes() + 5,
                                          std::vector<float>(8, 0.0f));
  EXPECT_FALSE(engine.ApplyMutation(bad_update).ok());

  GraphMutation bad_width;
  bad_width.feature_updates.emplace_back(0, std::vector<float>(3, 0.0f));
  EXPECT_FALSE(engine.ApplyMutation(bad_width).ok());

  GraphMutation bad_edge;
  bad_edge.new_edges.emplace_back(0, d.graph.num_nodes());
  EXPECT_FALSE(engine.ApplyMutation(bad_edge).ok());

  // Failed mutations must not publish a generation.
  EXPECT_EQ(engine.epoch(), 0);
  EXPECT_TRUE(engine.Query({0}).ok());
}

TEST(ServingEngineTest, CacheOffStaysExact) {
  const Dataset d = BaseDataset();
  const std::unique_ptr<GnnModel> model = SmallModel(d.graph);
  ServingOptions options;
  options.batch_window_seconds = 0.0;
  options.cache_logits = false;
  ServingEngine engine(model.get(), Graph(d.graph), options);

  std::vector<NodeId> all(static_cast<std::size_t>(d.graph.num_nodes()));
  std::iota(all.begin(), all.end(), 0);
  const Result<QueryResponse> a = engine.Query(all);
  const Result<QueryResponse> b = engine.Query(all);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a->logits.ApproxEquals(b->logits, 0.0f));
  EXPECT_TRUE(a->logits.ApproxEquals(
      FullGraphReferenceLogits(*model, d.graph), 0.0f));
  EXPECT_EQ(engine.stats().cache_hits, 0);
}

TEST(ServingEngineTest, AdoptsPrecomputedLayerStates) {
  const Dataset d = BaseDataset();
  const std::unique_ptr<GnnModel> model = SmallModel(d.graph);
  LayerStates states = ComputeLayerStates(*model, d.graph);
  ServingOptions options;
  options.batch_window_seconds = 0.0;
  ServingEngine engine(model.get(), Graph(d.graph), std::move(states),
                       options);
  const Result<QueryResponse> response = engine.Query({0, 1, 2});
  ASSERT_TRUE(response.ok());
  const Tensor expected = FullGraphReferenceLogits(*model, d.graph);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(BitIdenticalRow(response->logits, i, expected, i));
  }
}

}  // namespace
}  // namespace inferturbo
