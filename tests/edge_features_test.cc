// Edge features end-to-end: the paper's message signature is
// m = M(h_v, h_u, e_vu) (§II-B) and apply_edge merges edge state
// (Fig. 3). EdgeSageConv exercises that path through the sampler, the
// trainer, the reference forward, and both distributed backends.
#include <gtest/gtest.h>

#include "src/graph/datasets.h"
#include "src/inference/inferturbo_mapreduce.h"
#include "src/inference/inferturbo_pregel.h"
#include "src/inference/reference_inference.h"
#include "src/nn/edge_sage_conv.h"
#include "src/nn/metrics.h"
#include "src/nn/trainer.h"
#include "src/sampling/khop_sampler.h"
#include "src/tensor/ops.h"

namespace inferturbo {
namespace {

Dataset EdgeFeaturedDataset() {
  PlantedGraphConfig config;
  config.num_nodes = 400;
  config.avg_degree = 8.0;
  config.num_classes = 4;
  config.feature_dim = 10;
  config.edge_feature_dim = 3;
  config.homophily = 0.75;
  config.seed = 33;
  return MakePlantedDataset("edge-featured", config);
}

std::unique_ptr<GnnModel> EdgeModel(const Graph& graph,
                                    std::uint64_t seed = 5) {
  ModelConfig config;
  config.input_dim = graph.feature_dim();
  config.hidden_dim = 12;
  config.num_classes = graph.num_classes();
  config.num_layers = 2;
  config.edge_feature_dim = graph.edge_features().cols();
  config.seed = seed;
  return MakeEdgeSageModel(config);
}

TEST(EdgeFeaturesTest, GeneratorAttachesAlignedFeatures) {
  const Dataset d = EdgeFeaturedDataset();
  ASSERT_TRUE(d.graph.has_edge_features());
  EXPECT_EQ(d.graph.edge_features().rows(), d.graph.num_edges());
  EXPECT_EQ(d.graph.edge_features().cols(), 3);
  // Column 0 is the planted intra-class indicator.
  for (EdgeId e = 0; e < d.graph.num_edges(); ++e) {
    const bool same =
        d.graph.labels()[static_cast<std::size_t>(d.graph.EdgeSrc(e))] ==
        d.graph.labels()[static_cast<std::size_t>(d.graph.EdgeDst(e))];
    ASSERT_EQ(d.graph.edge_features().At(e, 0), same ? 1.0f : -1.0f);
  }
}

TEST(EdgeFeaturesTest, SignatureDeclaresEdgeUse) {
  Rng rng(1);
  EdgeSageConv layer(10, 3, 8, true, &rng);
  EXPECT_TRUE(layer.signature().uses_edge_features);
  EXPECT_FALSE(layer.signature().broadcastable_messages);
  EXPECT_TRUE(layer.signature().partial_gather);
  EXPECT_EQ(layer.signature().message_dim, 13);
  // Round-trips through the signature file format.
  const Result<LayerSignature> parsed =
      LayerSignature::Parse(layer.signature().Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, layer.signature());
}

TEST(EdgeFeaturesTest, TrainingAndInferencePathsAgree) {
  const Dataset d = EdgeFeaturedDataset();
  const std::unique_ptr<GnnModel> model = EdgeModel(d.graph);
  const Tensor reference = FullGraphReferenceLogits(*model, d.graph);

  ag::VarPtr h = ag::Constant(d.graph.node_features());
  for (std::int64_t l = 0; l < model->num_layers(); ++l) {
    h = model->layer(l).ForwardAg(h, d.graph.edge_src(), d.graph.edge_dst(),
                                  d.graph.num_nodes(),
                                  &d.graph.edge_features());
  }
  const Tensor logits = model->PredictLogits(h->value);
  EXPECT_TRUE(logits.ApproxEquals(reference, 1e-3f));
}

TEST(EdgeFeaturesTest, BothBackendsMatchReference) {
  const Dataset d = EdgeFeaturedDataset();
  const std::unique_ptr<GnnModel> model = EdgeModel(d.graph);
  const Tensor reference = FullGraphReferenceLogits(*model, d.graph);

  for (const bool partial : {false, true}) {
    InferTurboOptions options;
    options.num_workers = 6;
    options.strategies.partial_gather = partial;
    const Result<InferenceResult> pregel =
        RunInferTurboPregel(d.graph, *model, options);
    ASSERT_TRUE(pregel.ok()) << pregel.status().ToString();
    EXPECT_TRUE(pregel->logits.ApproxEquals(reference, 2e-3f))
        << "pregel, partial=" << partial;
    const Result<InferenceResult> mr =
        RunInferTurboMapReduce(d.graph, *model, options);
    ASSERT_TRUE(mr.ok()) << mr.status().ToString();
    EXPECT_TRUE(mr->logits.ApproxEquals(reference, 2e-3f))
        << "mapreduce, partial=" << partial;
  }
}

TEST(EdgeFeaturesTest, ShadowNodesPreserveEdgeFeaturedResults) {
  // Shadow-nodes re-homes out-edges; the edge features must follow
  // their edges onto the mirrors for results to stay exact.
  const Dataset d = EdgeFeaturedDataset();
  const std::unique_ptr<GnnModel> model = EdgeModel(d.graph);
  const Tensor reference = FullGraphReferenceLogits(*model, d.graph);
  InferTurboOptions options;
  options.num_workers = 6;
  options.strategies.shadow_nodes = true;
  options.strategies.threshold_override = 8;
  const Result<InferenceResult> r =
      RunInferTurboPregel(d.graph, *model, options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->logits.ApproxEquals(reference, 2e-3f));
}

TEST(EdgeFeaturesTest, KHopSamplerCarriesEdgeFeatures) {
  const Dataset d = EdgeFeaturedDataset();
  KHopSampler sampler(&d.graph);
  KHopOptions options;
  options.hops = 2;
  const std::vector<NodeId> targets = {1, 7};
  const Subgraph sub = sampler.Sample(targets, options, nullptr);
  ASSERT_EQ(sub.edge_features.rows(), sub.num_edges());
  ASSERT_EQ(sub.edge_features.cols(), 3);
  // Every local edge's feature row matches the global edge it came
  // from (check via the planted indicator in column 0).
  for (std::int64_t e = 0; e < sub.num_edges(); ++e) {
    const NodeId src =
        sub.nodes[static_cast<std::size_t>(
            sub.src_local[static_cast<std::size_t>(e)])];
    const NodeId dst =
        sub.nodes[static_cast<std::size_t>(
            sub.dst_local[static_cast<std::size_t>(e)])];
    const bool same = d.graph.labels()[static_cast<std::size_t>(src)] ==
                      d.graph.labels()[static_cast<std::size_t>(dst)];
    ASSERT_EQ(sub.edge_features.At(e, 0), same ? 1.0f : -1.0f);
  }
}

TEST(EdgeFeaturesTest, TrainingUsesEdgeSignal) {
  const Dataset d = EdgeFeaturedDataset();
  std::unique_ptr<GnnModel> model = EdgeModel(d.graph, /*seed=*/9);
  TrainerOptions options;
  options.epochs = 10;
  options.batch_size = 32;
  options.fanout = 8;
  MiniBatchTrainer trainer(&d.graph, model.get(), options);
  const Result<TrainReport> report = trainer.Train();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const Tensor logits = FullGraphReferenceLogits(*model, d.graph);
  const double acc =
      AccuracyOn(logits, d.graph.labels(), d.graph.test_nodes());
  EXPECT_GT(acc, 0.5) << "chance would be 0.25";
}

}  // namespace
}  // namespace inferturbo
