// Telemetry-layer acceptance: histogram bucket/percentile math, the
// lock-light registry under ThreadPool hammering, trace JSON
// well-formedness (parsed back with the in-tree parser), the pluggable
// log sink, and the contract that matters most — enabling tracing and
// metrics changes ZERO bits of inference output.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/common/thread_pool.h"
#include "src/graph/datasets.h"
#include "src/inference/inferturbo_mapreduce.h"
#include "src/inference/inferturbo_pregel.h"
#include "src/nn/model.h"
#include "src/telemetry/json.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/run_report.h"
#include "src/telemetry/trace.h"

namespace inferturbo {
namespace {

/// Every test leaves the global switches the way it found them (off),
/// so suites sharing the binary never observe each other's telemetry.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GlobalMetrics().ResetValues();
    ClearTrace();
  }
  void TearDown() override {
    SetMetricsEnabled(false);
    SetTracingEnabled(false);
    GlobalMetrics().ResetValues();
    ClearTrace();
  }
};

// --- metrics registry ------------------------------------------------

TEST_F(TelemetryTest, CounterDisabledIsNoOp) {
  Counter* c = GlobalMetrics().GetCounter("test.disabled");
  c->Increment();
  c->Add(41);
  EXPECT_EQ(c->value(), 0);
  SetMetricsEnabled(true);
  c->Increment();
  c->Add(41);
  EXPECT_EQ(c->value(), 42);
}

TEST_F(TelemetryTest, RegistryReturnsStablePointers) {
  Counter* a = GlobalMetrics().GetCounter("test.stable");
  Counter* b = GlobalMetrics().GetCounter("test.stable");
  EXPECT_EQ(a, b);
  Gauge* g1 = GlobalMetrics().GetGauge("test.stable_gauge");
  Gauge* g2 = GlobalMetrics().GetGauge("test.stable_gauge");
  EXPECT_EQ(g1, g2);
}

TEST_F(TelemetryTest, GaugeTracksValueAndPeak) {
  SetMetricsEnabled(true);
  Gauge* g = GlobalMetrics().GetGauge("test.gauge");
  g->Set(10);
  g->Set(25);
  g->Set(7);
  EXPECT_EQ(g->value(), 7);
  EXPECT_EQ(g->peak(), 25);
}

TEST_F(TelemetryTest, HistogramBucketMath) {
  SetMetricsEnabled(true);
  HistogramOptions options;
  options.first_bucket = 1.0;
  options.growth = 2.0;
  options.num_buckets = 4;  // bounds: 1, 2, 4, +inf
  Histogram* h = GlobalMetrics().GetHistogram("test.buckets", options);
  EXPECT_DOUBLE_EQ(h->BucketUpperBound(0), 1.0);
  EXPECT_DOUBLE_EQ(h->BucketUpperBound(1), 2.0);
  EXPECT_DOUBLE_EQ(h->BucketUpperBound(2), 4.0);
  EXPECT_TRUE(std::isinf(h->BucketUpperBound(3)));

  h->Observe(0.5);   // bucket 0
  h->Observe(1.0);   // bucket 0 (inclusive upper bound)
  h->Observe(1.5);   // bucket 1
  h->Observe(3.0);   // bucket 2
  h->Observe(100.0); // overflow bucket
  EXPECT_EQ(h->bucket_count(0), 2);
  EXPECT_EQ(h->bucket_count(1), 1);
  EXPECT_EQ(h->bucket_count(2), 1);
  EXPECT_EQ(h->bucket_count(3), 1);
  EXPECT_EQ(h->count(), 5);
  EXPECT_DOUBLE_EQ(h->sum(), 106.0);
  EXPECT_DOUBLE_EQ(h->max(), 100.0);
}

TEST_F(TelemetryTest, HistogramPercentileInterpolation) {
  SetMetricsEnabled(true);
  HistogramOptions options;
  options.first_bucket = 1.0;
  options.growth = 2.0;
  options.num_buckets = 8;
  Histogram* h = GlobalMetrics().GetHistogram("test.pct", options);
  // 100 observations uniformly inside bucket 0 (0, 1].
  for (int i = 0; i < 100; ++i) h->Observe(0.5);
  // p50 interpolates to the middle of bucket 0's (0, 1] range.
  EXPECT_DOUBLE_EQ(h->Percentile(0.50), 0.5);
  EXPECT_DOUBLE_EQ(h->Percentile(1.00), 1.0);
  EXPECT_DOUBLE_EQ(h->Percentile(0.0), 0.0);

  // Push 100 more into bucket 2 (2, 4]: now p75 lands inside bucket 2.
  for (int i = 0; i < 100; ++i) h->Observe(3.0);
  // rank(0.75) = 150; bucket 0 holds 100, bucket 2 holds the next 100,
  // so p75 = 2 + (4 - 2) * 50/100 = 3.
  EXPECT_DOUBLE_EQ(h->Percentile(0.75), 3.0);
  EXPECT_EQ(h->count(), 200);
}

TEST_F(TelemetryTest, HistogramOverflowPercentileUsesObservedMax) {
  SetMetricsEnabled(true);
  HistogramOptions options;
  options.first_bucket = 1.0;
  options.growth = 2.0;
  options.num_buckets = 3;  // bounds: 1, 2, +inf
  Histogram* h = GlobalMetrics().GetHistogram("test.overflow", options);
  for (int i = 0; i < 10; ++i) h->Observe(50.0);
  const double p99 = h->Percentile(0.99);
  EXPECT_TRUE(std::isfinite(p99));
  EXPECT_LE(p99, 50.0);
  EXPECT_GE(p99, 2.0);
}

TEST_F(TelemetryTest, ConcurrentCountersUnderThreadPoolHammering) {
  SetMetricsEnabled(true);
  ThreadPool pool(8);
  Counter* c = GlobalMetrics().GetCounter("test.hammer");
  Histogram* h = GlobalMetrics().GetHistogram("test.hammer_hist");
  constexpr std::size_t kOps = 20000;
  pool.ParallelFor(kOps, [&](std::size_t i) {
    c->Increment();
    h->Observe(static_cast<double>(i % 7) * 1e-5);
    // Concurrent registration of the same name must also be safe.
    GlobalMetrics().GetCounter("test.hammer_shared")->Add(2);
  });
  EXPECT_EQ(c->value(), static_cast<std::int64_t>(kOps));
  EXPECT_EQ(h->count(), static_cast<std::int64_t>(kOps));
  EXPECT_EQ(GlobalMetrics().GetCounter("test.hammer_shared")->value(),
            static_cast<std::int64_t>(2 * kOps));
}

TEST_F(TelemetryTest, HistogramPercentilesCorrectUnderConcurrentRecording) {
  // Serving quotes p50/p99 tail latencies straight from these
  // histograms while many query threads record concurrently — the
  // percentiles must land in the right buckets, not merely not crash.
  SetMetricsEnabled(true);
  HistogramOptions options;
  options.first_bucket = 1.0;
  options.growth = 2.0;
  options.num_buckets = 12;
  Histogram* h = GlobalMetrics().GetHistogram("test.concurrent_pct", options);

  constexpr int kThreads = 8;
  constexpr int kBody = 1000;  // per thread, value 1.0 -> bucket (0, 1]
  constexpr int kTail = 50;    // per thread, value 100.0 -> bucket (64, 128]
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      // Interleave body and tail so bucket updates from different
      // threads genuinely race on both buckets.
      for (int i = 0; i < kBody; ++i) {
        h->Observe(1.0);
        if (i < kTail) h->Observe(100.0);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Totals are exact: no observation may be lost or double-counted.
  constexpr std::int64_t kN = kThreads * (kBody + kTail);
  EXPECT_EQ(h->count(), kN);
  EXPECT_DOUBLE_EQ(h->sum(), kThreads * (kBody * 1.0 + kTail * 100.0));
  EXPECT_DOUBLE_EQ(h->max(), 100.0);

  // p50 rank 4200 of 8400 falls well inside the body bucket (0, 1];
  // p99 rank 8316 > 8000 body observations falls in the tail bucket
  // (64, 128].
  const double p50 = h->Percentile(0.50);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, 1.0);
  const double p99 = h->Percentile(0.99);
  EXPECT_GT(p99, 64.0);
  EXPECT_LE(p99, 128.0);
}

TEST_F(TelemetryTest, ResetValuesKeepsInstruments) {
  SetMetricsEnabled(true);
  Counter* c = GlobalMetrics().GetCounter("test.reset");
  c->Add(5);
  GlobalMetrics().ResetValues();
  EXPECT_EQ(c->value(), 0);
  EXPECT_EQ(GlobalMetrics().GetCounter("test.reset"), c);
  c->Add(3);
  EXPECT_EQ(c->value(), 3);
}

TEST_F(TelemetryTest, SnapshotIsParseableJsonWithPercentiles) {
  SetMetricsEnabled(true);
  GlobalMetrics().GetCounter("snap.counter")->Add(7);
  GlobalMetrics().GetGauge("snap.gauge")->Set(11);
  Histogram* h = GlobalMetrics().GetHistogram("snap.hist");
  h->Observe(0.5);
  const Result<JsonValue> parsed =
      ParseJson(GlobalMetrics().SnapshotJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* counter = parsed->Find("counters");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->Find("snap.counter")->as_int(), 7);
  const JsonValue* hist = parsed->Find("histograms")->Find("snap.hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->Find("count")->as_int(), 1);
  EXPECT_NE(hist->Find("p50"), nullptr);
  EXPECT_NE(hist->Find("p95"), nullptr);
  EXPECT_NE(hist->Find("p99"), nullptr);
}

// --- JSON round trip -------------------------------------------------

TEST_F(TelemetryTest, JsonRoundTrip) {
  JsonValue::Object object{
      {"int", JsonValue(std::int64_t{-42})},
      {"big", JsonValue(std::int64_t{1} << 60)},
      {"float", JsonValue(2.5)},
      {"bool", JsonValue(true)},
      {"null", JsonValue(nullptr)},
      {"str", JsonValue("quote\" slash\\ ctrl\n")},
      {"arr", JsonValue(JsonValue::Array{JsonValue(1), JsonValue("two")})},
  };
  const std::string dumped = JsonValue(object).Dump(2);
  const Result<JsonValue> parsed = ParseJson(dumped);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("int")->as_int(), -42);
  EXPECT_EQ(parsed->Find("big")->as_int(), std::int64_t{1} << 60);
  EXPECT_DOUBLE_EQ(parsed->Find("float")->as_double(), 2.5);
  EXPECT_TRUE(parsed->Find("bool")->as_bool());
  EXPECT_TRUE(parsed->Find("null")->is_null());
  EXPECT_EQ(parsed->Find("str")->as_string(), "quote\" slash\\ ctrl\n");
  EXPECT_EQ(parsed->Find("arr")->as_array()[1].as_string(), "two");
}

TEST_F(TelemetryTest, JsonParserRejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("{\"a\": }").ok());
  EXPECT_FALSE(ParseJson("[1, 2").ok());
  EXPECT_FALSE(ParseJson("{} trailing").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("nulL").ok());
}

// --- trace recorder --------------------------------------------------

TEST_F(TelemetryTest, DisabledTracingRecordsNothing) {
  { TraceSpan span("test/never", 0); }
  EXPECT_TRUE(DrainTrace().empty());
}

TEST_F(TelemetryTest, SpansRecordNamesTracksAndNesting) {
  SetTracingEnabled(true);
  {
    TraceSpan outer("test/outer", 3);
    TraceSpan inner("test/inner", 3);
  }
  { TraceSpan other("test/other", 1); }
  const std::vector<TraceEvent> events = DrainTrace();
  ASSERT_EQ(events.size(), 3u);
  // Sorted by track first; within track 3 the outer (longer) span
  // precedes the inner one.
  EXPECT_STREQ(events[0].name, "test/other");
  EXPECT_EQ(events[0].track, 1);
  EXPECT_STREQ(events[1].name, "test/outer");
  EXPECT_STREQ(events[2].name, "test/inner");
  EXPECT_GE(events[1].dur_ns, events[2].dur_ns);
  EXPECT_LE(events[1].start_ns, events[2].start_ns);
}

TEST_F(TelemetryTest, TraceJsonIsWellFormedChromeFormat) {
  SetTracingEnabled(true);
  ThreadPool pool(4);
  pool.ParallelFor(64, [&](std::size_t i) {
    TraceSpan span("test/task", static_cast<std::int64_t>(i % 8));
  });
  { TraceSpan coordinator("test/coordinator"); }
  const Result<JsonValue> parsed = ParseJson(DrainTraceJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  std::int64_t complete = 0;
  std::int64_t last_track = -1;
  double last_ts = 0.0;
  for (const JsonValue& e : events->as_array()) {
    const std::string& ph = e.Find("ph")->as_string();
    ASSERT_TRUE(ph == "X" || ph == "M");
    if (ph == "M") continue;  // thread_name metadata
    ++complete;
    EXPECT_FALSE(e.Find("name")->as_string().empty());
    const std::int64_t track = e.Find("tid")->as_int();
    const double ts = e.Find("ts")->as_double();
    EXPECT_GE(e.Find("dur")->as_double(), 0.0);
    // The drain contract: (track, ts) sorted.
    if (track == last_track) EXPECT_GE(ts, last_ts);
    last_track = track;
    last_ts = ts;
  }
  EXPECT_EQ(complete, 65);
  // Coordinator spans land on the default per-thread tracks.
  bool saw_default_track = false;
  for (const JsonValue& e : events->as_array()) {
    if (e.Find("ph")->as_string() == "X" &&
        e.Find("tid")->as_int() >= TraceSpan::kDefaultTrackBase) {
      saw_default_track = true;
    }
  }
  EXPECT_TRUE(saw_default_track);
}

// --- run report ------------------------------------------------------

TEST_F(TelemetryTest, RunReportUnifiesJobStorageMetricsAndConfig) {
  SetMetricsEnabled(true);
  GlobalMetrics().GetCounter("report.counter")->Add(9);
  JobMetrics metrics;
  metrics.workers.resize(2);
  WorkerStepMetrics step;
  step.busy_seconds = 0.25;
  step.bytes_in = 100;
  metrics.workers[0].steps.push_back(step);
  metrics.workers[1].steps.push_back(step);
  metrics.storage.prefetch_issued = 4;
  metrics.storage.prefetch_hits = 3;
  metrics.storage.peak_bytes_mapped = 4096;
  RunReportOptions options;
  options.backend = "pregel";
  options.config["workers"] = "2";
  const Result<JsonValue> parsed =
      ParseJson(BuildRunReportJson(metrics, options));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("schema")->as_string(), "inferturbo.run_report.v1");
  EXPECT_EQ(parsed->Find("backend")->as_string(), "pregel");
  EXPECT_EQ(parsed->Find("config")->Find("workers")->as_string(), "2");
  const JsonValue* job = parsed->Find("job");
  ASSERT_NE(job, nullptr);
  EXPECT_EQ(job->Find("num_workers")->as_int(), 2);
  EXPECT_EQ(job->Find("total_bytes_in")->as_int(), 200);
  EXPECT_DOUBLE_EQ(job->Find("total_cpu_seconds")->as_double(), 0.5);
  EXPECT_EQ(job->Find("per_worker")->as_array().size(), 2u);
  const JsonValue* storage = parsed->Find("storage");
  ASSERT_NE(storage, nullptr);
  EXPECT_EQ(storage->Find("peak_bytes_mapped")->as_int(), 4096);
  EXPECT_DOUBLE_EQ(storage->Find("prefetch_hit_rate")->as_double(), 0.75);
  EXPECT_EQ(parsed->Find("metrics")
                ->Find("counters")
                ->Find("report.counter")
                ->as_int(),
            9);
}

// --- logging sink ----------------------------------------------------

TEST_F(TelemetryTest, LogSinkCapturesFormattedLines) {
  std::vector<std::string> lines;
  std::vector<LogLevel> levels;
  SetLogSink([&](LogLevel level, const std::string& line) {
    levels.push_back(level);
    lines.push_back(line);
  });
  INFERTURBO_LOG(Warning) << "captured " << 42;
  SetLogSink(nullptr);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(levels[0], LogLevel::kWarning);
  // Prefix: "[W HH:MM:SS.mmm tNN telemetry_test.cc:LINE] captured 42".
  EXPECT_EQ(lines[0].rfind("captured 42"), lines[0].size() - 11);
  EXPECT_EQ(lines[0][0], '[');
  EXPECT_EQ(lines[0][1], 'W');
  EXPECT_NE(lines[0].find("telemetry_test.cc:"), std::string::npos);
  // Timestamp "HH:MM:SS.mmm" and thread id "tN" are present.
  EXPECT_NE(lines[0].find(':'), std::string::npos);
  EXPECT_NE(lines[0].find(" t"), std::string::npos);
}

TEST_F(TelemetryTest, LogSinkRespectsMinLevel) {
  std::vector<std::string> lines;
  SetLogSink([&](LogLevel, const std::string& line) {
    lines.push_back(line);
  });
  SetLogLevel(LogLevel::kError);
  INFERTURBO_LOG(Info) << "dropped";
  INFERTURBO_LOG(Error) << "kept";
  SetLogLevel(LogLevel::kInfo);
  SetLogSink(nullptr);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("kept"), std::string::npos);
}

TEST_F(TelemetryTest, ParseLogLevelNames) {
  LogLevel level = LogLevel::kInfo;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("warning", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("warn", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_FALSE(ParseLogLevel("chatty", &level));
  EXPECT_EQ(level, LogLevel::kError);  // untouched on failure
}

// --- the overhead contract's other half: zero output perturbation ----

Dataset TelemetryDataset() {
  PlantedGraphConfig config;
  config.num_nodes = 300;
  config.avg_degree = 8.0;
  config.num_classes = 5;
  config.feature_dim = 12;
  config.seed = 17;
  return MakePlantedDataset("telemetry", config);
}

std::unique_ptr<GnnModel> TelemetryModel(const Graph& graph) {
  ModelConfig config;
  config.input_dim = graph.feature_dim();
  config.hidden_dim = 16;
  config.num_classes = graph.num_classes();
  config.num_layers = 2;
  config.seed = 7;
  Result<std::unique_ptr<GnnModel>> model = MakeModel("sage", config);
  EXPECT_TRUE(model.ok());
  return std::move(model).ValueOrDie();
}

void ExpectBitIdentical(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::int64_t i = 0; i < a.size(); ++i) {
    // Tolerance 0.0f: telemetry must not move a single bit.
    ASSERT_EQ(a.data()[i], b.data()[i]) << "logit " << i << " diverged";
  }
}

TEST_F(TelemetryTest, TracingDoesNotChangePregelLogits) {
  const Dataset dataset = TelemetryDataset();
  const std::unique_ptr<GnnModel> model = TelemetryModel(dataset.graph);
  InferTurboOptions options;
  options.num_workers = 4;
  const Result<InferenceResult> base =
      RunInferTurboPregel(dataset.graph, *model, options);
  ASSERT_TRUE(base.ok()) << base.status().ToString();

  SetTracingEnabled(true);
  SetMetricsEnabled(true);
  const Result<InferenceResult> traced =
      RunInferTurboPregel(dataset.graph, *model, options);
  ASSERT_TRUE(traced.ok()) << traced.status().ToString();
  ExpectBitIdentical(base->logits, traced->logits);
  // And the run actually recorded something.
  const std::vector<TraceEvent> events = DrainTrace();
  EXPECT_FALSE(events.empty());
  bool saw_compute = false;
  for (const TraceEvent& e : events) {
    if (std::string_view(e.name) == "pregel/compute") saw_compute = true;
  }
  EXPECT_TRUE(saw_compute);
}

TEST_F(TelemetryTest, TracingDoesNotChangeMapReduceLogits) {
  const Dataset dataset = TelemetryDataset();
  const std::unique_ptr<GnnModel> model = TelemetryModel(dataset.graph);
  InferTurboOptions options;
  options.num_workers = 4;
  const Result<InferenceResult> base =
      RunInferTurboMapReduce(dataset.graph, *model, options);
  ASSERT_TRUE(base.ok()) << base.status().ToString();

  SetTracingEnabled(true);
  SetMetricsEnabled(true);
  const Result<InferenceResult> traced =
      RunInferTurboMapReduce(dataset.graph, *model, options);
  ASSERT_TRUE(traced.ok()) << traced.status().ToString();
  ExpectBitIdentical(base->logits, traced->logits);
  bool saw_reduce = false;
  for (const TraceEvent& e : DrainTrace()) {
    if (std::string_view(e.name) == "mr/reduce") saw_reduce = true;
  }
  EXPECT_TRUE(saw_reduce);
}

}  // namespace
}  // namespace inferturbo
