#include "src/tensor/tensor.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/tensor/ops.h"

namespace inferturbo {
namespace {

TEST(TensorTest, DefaultIsEmpty) {
  Tensor t;
  EXPECT_EQ(t.rows(), 0);
  EXPECT_EQ(t.cols(), 0);
  EXPECT_TRUE(t.empty());
}

TEST(TensorTest, ConstructorZeroFills) {
  Tensor t(3, 4);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 4);
  for (std::int64_t r = 0; r < 3; ++r) {
    for (std::int64_t c = 0; c < 4; ++c) EXPECT_EQ(t.At(r, c), 0.0f);
  }
}

TEST(TensorTest, FullFillsValue) {
  Tensor t = Tensor::Full(2, 2, 7.5f);
  EXPECT_EQ(t.At(0, 0), 7.5f);
  EXPECT_EQ(t.At(1, 1), 7.5f);
}

TEST(TensorTest, FromRowsRoundTrips) {
  Tensor t = Tensor::FromRows({{1.0f, 2.0f}, {3.0f, 4.0f}});
  EXPECT_EQ(t.At(0, 1), 2.0f);
  EXPECT_EQ(t.At(1, 0), 3.0f);
  EXPECT_EQ(t.RowVector(1), (std::vector<float>{3.0f, 4.0f}));
}

TEST(TensorTest, SetRowOverwrites) {
  Tensor t(2, 3);
  t.SetRow(1, std::vector<float>{1.0f, 2.0f, 3.0f});
  EXPECT_EQ(t.At(1, 2), 3.0f);
  EXPECT_EQ(t.At(0, 2), 0.0f);
}

TEST(TensorTest, GlorotUniformIsDeterministicUnderSeed) {
  Rng rng1(42);
  Rng rng2(42);
  Tensor a = Tensor::GlorotUniform(4, 5, &rng1);
  Tensor b = Tensor::GlorotUniform(4, 5, &rng2);
  EXPECT_TRUE(a.ApproxEquals(b, 0.0f));
}

TEST(TensorTest, GlorotUniformRespectsLimit) {
  Rng rng(7);
  Tensor t = Tensor::GlorotUniform(10, 10, &rng);
  const float limit = std::sqrt(6.0f / 20.0f);
  for (std::int64_t i = 0; i < t.size(); ++i) {
    EXPECT_LE(std::fabs(t.data()[i]), limit);
  }
}

TEST(TensorTest, ApproxEqualsDetectsShapeMismatch) {
  EXPECT_FALSE(Tensor(2, 2).ApproxEquals(Tensor(2, 3)));
}

TEST(TensorTest, ApproxEqualsUsesTolerance) {
  Tensor a = Tensor::Full(1, 1, 1.0f);
  Tensor b = Tensor::Full(1, 1, 1.0f + 5e-6f);
  EXPECT_TRUE(a.ApproxEquals(b, 1e-5f));
  EXPECT_FALSE(a.ApproxEquals(b, 1e-7f));
}

TEST(OpsTest, MatMulMatchesHand) {
  Tensor a = Tensor::FromRows({{1, 2}, {3, 4}});
  Tensor b = Tensor::FromRows({{5, 6}, {7, 8}});
  Tensor c = MatMul(a, b);
  EXPECT_TRUE(c.ApproxEquals(Tensor::FromRows({{19, 22}, {43, 50}})));
}

TEST(OpsTest, MatMulTransposedVariantsAgree) {
  Rng rng(3);
  Tensor a = Tensor::RandomNormal(4, 6, 1.0f, &rng);
  Tensor b = Tensor::RandomNormal(6, 5, 1.0f, &rng);
  Tensor expected = MatMul(a, b);
  EXPECT_TRUE(MatMulTransposedB(a, Transpose(b)).ApproxEquals(expected,
                                                              1e-4f));
  EXPECT_TRUE(MatMulTransposedA(Transpose(a), b).ApproxEquals(expected,
                                                              1e-4f));
}

TEST(OpsTest, AddAndSubInverse) {
  Rng rng(5);
  Tensor a = Tensor::RandomNormal(3, 3, 1.0f, &rng);
  Tensor b = Tensor::RandomNormal(3, 3, 1.0f, &rng);
  EXPECT_TRUE(Sub(Add(a, b), b).ApproxEquals(a, 1e-5f));
}

TEST(OpsTest, AddRowBroadcastAddsBiasToEveryRow) {
  Tensor a = Tensor::FromRows({{1, 1}, {2, 2}});
  Tensor bias = Tensor::FromRows({{10, 20}});
  Tensor c = AddRowBroadcast(a, bias);
  EXPECT_TRUE(c.ApproxEquals(Tensor::FromRows({{11, 21}, {12, 22}})));
}

TEST(OpsTest, MulColBroadcastScalesRows) {
  Tensor a = Tensor::FromRows({{1, 2}, {3, 4}});
  Tensor s = Tensor::FromRows({{2}, {0.5f}});
  Tensor c = MulColBroadcast(a, s);
  EXPECT_TRUE(c.ApproxEquals(Tensor::FromRows({{2, 4}, {1.5f, 2}})));
}

TEST(OpsTest, ReluClampsNegatives) {
  Tensor a = Tensor::FromRows({{-1, 2}, {0, -3}});
  EXPECT_TRUE(Relu(a).ApproxEquals(Tensor::FromRows({{0, 2}, {0, 0}})));
}

TEST(OpsTest, LeakyReluKeepsSlope) {
  Tensor a = Tensor::FromRows({{-10, 10}});
  EXPECT_TRUE(
      LeakyRelu(a, 0.2f).ApproxEquals(Tensor::FromRows({{-2, 10}})));
}

TEST(OpsTest, SigmoidIsBounded) {
  Tensor a = Tensor::FromRows({{-100, 0, 100}});
  Tensor s = Sigmoid(a);
  EXPECT_NEAR(s.At(0, 0), 0.0f, 1e-6f);
  EXPECT_NEAR(s.At(0, 1), 0.5f, 1e-6f);
  EXPECT_NEAR(s.At(0, 2), 1.0f, 1e-6f);
}

TEST(OpsTest, SoftmaxRowsSumToOne) {
  Rng rng(11);
  Tensor a = Tensor::RandomNormal(5, 7, 3.0f, &rng);
  Tensor s = SoftmaxRows(a);
  for (std::int64_t r = 0; r < 5; ++r) {
    float sum = 0.0f;
    for (std::int64_t c = 0; c < 7; ++c) sum += s.At(r, c);
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(OpsTest, LogSoftmaxMatchesLogOfSoftmax) {
  Rng rng(13);
  Tensor a = Tensor::RandomNormal(4, 5, 2.0f, &rng);
  Tensor ls = LogSoftmaxRows(a);
  Tensor s = SoftmaxRows(a);
  for (std::int64_t r = 0; r < 4; ++r) {
    for (std::int64_t c = 0; c < 5; ++c) {
      EXPECT_NEAR(ls.At(r, c), std::log(s.At(r, c)), 1e-4f);
    }
  }
}

TEST(OpsTest, LogSoftmaxIsStableForLargeLogits) {
  Tensor a = Tensor::FromRows({{1000.0f, 999.0f}});
  Tensor ls = LogSoftmaxRows(a);
  EXPECT_TRUE(std::isfinite(ls.At(0, 0)));
  EXPECT_TRUE(std::isfinite(ls.At(0, 1)));
}

TEST(OpsTest, ConcatAndSliceColsRoundTrip) {
  Tensor a = Tensor::FromRows({{1, 2}, {3, 4}});
  Tensor b = Tensor::FromRows({{5}, {6}});
  Tensor c = ConcatCols(a, b);
  EXPECT_EQ(c.cols(), 3);
  EXPECT_TRUE(SliceCols(c, 0, 2).ApproxEquals(a));
  EXPECT_TRUE(SliceCols(c, 2, 3).ApproxEquals(b));
}

TEST(OpsTest, ConcatRowsStacksAndHandlesEmpty) {
  Tensor a = Tensor::FromRows({{1, 2}});
  Tensor b = Tensor::FromRows({{3, 4}});
  Tensor c = ConcatRows(a, b);
  EXPECT_EQ(c.rows(), 2);
  EXPECT_EQ(c.At(1, 0), 3.0f);
  EXPECT_TRUE(ConcatRows(Tensor(), a).ApproxEquals(a));
}

TEST(OpsTest, GatherRowsWithRepetition) {
  Tensor a = Tensor::FromRows({{1, 1}, {2, 2}, {3, 3}});
  const std::vector<std::int64_t> idx = {2, 0, 2};
  Tensor g = GatherRows(a, idx);
  EXPECT_TRUE(g.ApproxEquals(Tensor::FromRows({{3, 3}, {1, 1}, {3, 3}})));
}

TEST(OpsTest, ScatterAddRowsAccumulates) {
  Tensor acc(2, 2);
  Tensor rows = Tensor::FromRows({{1, 1}, {2, 2}, {4, 4}});
  const std::vector<std::int64_t> idx = {0, 1, 0};
  ScatterAddRows(&acc, idx, rows);
  EXPECT_TRUE(acc.ApproxEquals(Tensor::FromRows({{5, 5}, {2, 2}})));
}

TEST(OpsTest, ArgmaxRowsBreaksTiesLow) {
  Tensor a = Tensor::FromRows({{1, 3, 3}, {5, 2, 5}});
  const std::vector<std::int64_t> am = ArgmaxRows(a);
  EXPECT_EQ(am[0], 1);
  EXPECT_EQ(am[1], 0);
}

TEST(OpsTest, SumAllAndL2Norm) {
  Tensor a = Tensor::FromRows({{3, 4}});
  EXPECT_DOUBLE_EQ(SumAll(a), 7.0);
  EXPECT_NEAR(L2Norm(a), 5.0, 1e-6);
}

TEST(OpsTest, TransposeIsInvolution) {
  Rng rng(17);
  Tensor a = Tensor::RandomNormal(3, 6, 1.0f, &rng);
  EXPECT_TRUE(Transpose(Transpose(a)).ApproxEquals(a, 0.0f));
}

}  // namespace
}  // namespace inferturbo
