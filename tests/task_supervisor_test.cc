// TaskSupervisor unit tests: the first-commit-wins attempt protocol,
// bounded retry with status-code-aware accounting, per-attempt
// deadlines, speculative backups, and executor quarantine — exercised
// directly against small synthetic task bodies so every assertion pins
// one supervisor behavior the engines rely on.
#include "src/runtime/task_supervisor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/runtime/fault_plan.h"

namespace inferturbo {
namespace {

using std::chrono::steady_clock;

// Cooperative wait: parks until the supervisor abandons the attempt,
// bounded so a supervisor bug cannot hang the test binary.
void WaitForAbandon(TaskAttempt* attempt, double max_seconds = 10.0) {
  const auto give_up =
      steady_clock::now() +
      std::chrono::duration_cast<steady_clock::duration>(
          std::chrono::duration<double>(max_seconds));
  while (!attempt->ShouldAbandon() && steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(TaskSupervisorTest, HappyPathCommitsEveryTaskOnAttemptZero) {
  TaskSupervisor supervisor({});
  constexpr std::size_t kTasks = 5;
  std::vector<int> out(kTasks, -1);
  const Result<StageResult> stage = supervisor.RunStage(
      {TaskStageKind::kPregelCompute, 0}, kTasks,
      [&](TaskAttempt* attempt) -> Status {
        const int value = static_cast<int>(attempt->task()) * 10;
        if (attempt->TryCommit()) out[attempt->task()] = value;
        return Status::OK();
      });
  ASSERT_TRUE(stage.ok()) << stage.status().ToString();
  EXPECT_FALSE(stage->had_failures);
  for (std::size_t t = 0; t < kTasks; ++t) {
    EXPECT_EQ(stage->committed_attempt[t], 0) << t;
    EXPECT_EQ(stage->committed_executor[t], static_cast<int>(t)) << t;
    EXPECT_EQ(out[t], static_cast<int>(t) * 10) << t;
  }
  const SupervisionMetrics m = supervisor.metrics();
  EXPECT_EQ(m.tasks, 5);
  EXPECT_EQ(m.attempts, 5);
  EXPECT_EQ(m.retries, 0);
  EXPECT_EQ(m.deadline_exceeded, 0);
  EXPECT_EQ(supervisor.num_quarantined(), 0);
}

TEST(TaskSupervisorTest, BodyReturningOkWithoutTryCommitIsAutoCommitted) {
  TaskSupervisor supervisor({});
  const Result<StageResult> stage =
      supervisor.RunStage({TaskStageKind::kMrMap, 0}, 3,
                          [](TaskAttempt*) { return Status::OK(); });
  ASSERT_TRUE(stage.ok()) << stage.status().ToString();
  EXPECT_EQ(supervisor.metrics().tasks, 3);
  EXPECT_EQ(supervisor.metrics().attempts, 3);
}

TEST(TaskSupervisorTest, InjectedCrashRetriesAndRecovers) {
  FaultPlan plan;
  // Executor 1's first attempt in stage 0 crashes, once.
  plan.ArmCrash(TaskStageKind::kAny, /*stage_index=*/0, /*executor=*/1,
                /*times=*/1);
  TaskSupervisionOptions options;
  options.fault_plan = &plan;
  TaskSupervisor supervisor(options);

  std::atomic<int> commits{0};
  const Result<StageResult> stage = supervisor.RunStage(
      {TaskStageKind::kPregelCompute, 0}, 3,
      [&](TaskAttempt* attempt) -> Status {
        if (attempt->TryCommit()) commits.fetch_add(1);
        return Status::OK();
      });
  ASSERT_TRUE(stage.ok()) << stage.status().ToString();
  EXPECT_TRUE(stage->had_failures);
  EXPECT_EQ(commits.load(), 3);
  // The crashed task committed on its retry, same executor (one crash
  // is under the default quarantine threshold).
  EXPECT_EQ(stage->committed_attempt[1], 1);
  EXPECT_EQ(stage->committed_executor[1], 1);
  const SupervisionMetrics m = supervisor.metrics();
  EXPECT_EQ(m.injected_crashes, 1);
  EXPECT_EQ(m.retries, 1);
  EXPECT_EQ(m.attempts, 4);
  EXPECT_EQ(supervisor.num_quarantined(), 0);
  EXPECT_EQ(plan.crashes_fired(), 1);
}

TEST(TaskSupervisorTest, TransientFailuresRetryWithoutQuarantine) {
  FaultPlan plan;
  plan.ArmTransient(TaskStageKind::kAny, -1, /*executor=*/0, /*times=*/2);
  TaskSupervisionOptions options;
  options.fault_plan = &plan;
  options.quarantine_threshold = 1;  // a single crash would quarantine
  TaskSupervisor supervisor(options);

  const Result<StageResult> stage =
      supervisor.RunStage({TaskStageKind::kMrReduce, 2}, 2,
                          [](TaskAttempt*) { return Status::OK(); });
  ASSERT_TRUE(stage.ok()) << stage.status().ToString();
  // Two kUnavailable failures burned two retries but zero quarantine
  // budget: transient codes are not permanent-style.
  EXPECT_EQ(stage->committed_attempt[0], 2);
  EXPECT_EQ(stage->committed_executor[0], 0);
  const SupervisionMetrics m = supervisor.metrics();
  EXPECT_EQ(m.injected_transients, 2);
  EXPECT_EQ(m.retries, 2);
  EXPECT_EQ(supervisor.num_quarantined(), 0);
  EXPECT_FALSE(supervisor.IsQuarantined(0));
}

TEST(TaskSupervisorTest, RetryExhaustionFailsStageWithPreservedCode) {
  FaultPlan plan;
  plan.ArmCrash(TaskStageKind::kAny, -1, -1, /*times=*/-1);  // every attempt
  TaskSupervisionOptions options;
  options.fault_plan = &plan;
  options.max_task_retries = 1;
  options.quarantine_threshold = 0;  // keep crashes landing on one executor
  TaskSupervisor supervisor(options);

  std::atomic<int> bodies_run{0};
  const Result<StageResult> stage = supervisor.RunStage(
      {TaskStageKind::kPregelCompute, 1}, 2, [&](TaskAttempt*) -> Status {
        bodies_run.fetch_add(1);
        return Status::OK();
      });
  ASSERT_FALSE(stage.ok());
  // Crashes report kInternal; the stage error preserves the code and
  // names the exhausted retry budget.
  EXPECT_EQ(stage.status().code(), StatusCode::kInternal);
  EXPECT_NE(stage.status().message().find("exhausted"), std::string::npos)
      << stage.status().ToString();
  // A crash kills the attempt before its body runs.
  EXPECT_EQ(bodies_run.load(), 0);
}

TEST(TaskSupervisorTest, ExhaustionWithTransientCodeSurfacesUnavailable) {
  FaultPlan plan;
  plan.ArmTransient(TaskStageKind::kAny, -1, -1, /*times=*/-1);
  TaskSupervisionOptions options;
  options.fault_plan = &plan;
  options.max_task_retries = 1;
  TaskSupervisor supervisor(options);

  const Result<StageResult> stage =
      supervisor.RunStage({TaskStageKind::kMrMap, 0}, 1,
                          [](TaskAttempt*) { return Status::OK(); });
  ASSERT_FALSE(stage.ok());
  EXPECT_TRUE(stage.status().IsUnavailable()) << stage.status().ToString();
}

TEST(TaskSupervisorTest, DeadlineAbandonsStragglerAndRetryCommits) {
  TaskSupervisionOptions options;
  options.task_deadline_seconds = 0.05;
  TaskSupervisor supervisor(options);

  const Result<StageResult> stage = supervisor.RunStage(
      {TaskStageKind::kPregelCompute, 0}, 2,
      [&](TaskAttempt* attempt) -> Status {
        if (attempt->task() == 0 && attempt->attempt() == 0) {
          // Overruns the 50 ms budget; parks until the deadline
          // scanner abandons it.
          WaitForAbandon(attempt);
          EXPECT_TRUE(attempt->ShouldAbandon());
          // An abandoned attempt must not win even if it claims OK.
          EXPECT_FALSE(attempt->TryCommit());
          return Status::OK();
        }
        return Status::OK();
      });
  ASSERT_TRUE(stage.ok()) << stage.status().ToString();
  EXPECT_TRUE(stage->had_failures);
  EXPECT_GE(stage->committed_attempt[0], 1);
  const SupervisionMetrics m = supervisor.metrics();
  EXPECT_GE(m.deadline_exceeded, 1);
  EXPECT_GE(m.retries, 1);
  // Deadline overruns are transient-style: no quarantine.
  EXPECT_EQ(supervisor.num_quarantined(), 0);
}

TEST(TaskSupervisorTest, SpeculativeBackupCommitsWhileStragglerSleeps) {
  TaskSupervisionOptions options;
  options.speculative_execution = true;
  options.speculation_delay_seconds = 0.01;
  TaskSupervisor supervisor(options);

  std::atomic<int> wins{0};
  const Result<StageResult> stage = supervisor.RunStage(
      {TaskStageKind::kMrReduce, 1}, 3,
      [&](TaskAttempt* attempt) -> Status {
        if (attempt->task() == 0 && attempt->attempt() == 0) {
          WaitForAbandon(attempt);  // straggle until the backup wins
          if (attempt->TryCommit()) wins.fetch_add(1);
          return Status::OK();
        }
        if (attempt->TryCommit()) wins.fetch_add(1);
        return Status::OK();
      });
  ASSERT_TRUE(stage.ok()) << stage.status().ToString();
  // Exactly one attempt per task won, and task 0's winner was the
  // speculative backup (attempt 1).
  EXPECT_EQ(wins.load(), 3);
  EXPECT_EQ(stage->committed_attempt[0], 1);
  const SupervisionMetrics m = supervisor.metrics();
  EXPECT_GE(m.speculative_launched, 1);
  EXPECT_GE(m.speculative_commits, 1);
  EXPECT_EQ(m.tasks, 3);
}

TEST(TaskSupervisorTest, CommitIsExclusiveAcrossEagerBackups) {
  // Zero speculation delay => backups race first attempts aggressively;
  // first-commit-wins must still hand out exactly one win per task.
  TaskSupervisionOptions options;
  options.speculative_execution = true;
  options.speculation_delay_seconds = 0.0;
  TaskSupervisor supervisor(options);

  constexpr std::size_t kTasks = 8;
  std::atomic<int> wins{0};
  const Result<StageResult> stage = supervisor.RunStage(
      {TaskStageKind::kPregelCompute, 2}, kTasks,
      [&](TaskAttempt* attempt) -> Status {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        if (attempt->TryCommit()) wins.fetch_add(1);
        return Status::OK();
      });
  ASSERT_TRUE(stage.ok()) << stage.status().ToString();
  EXPECT_EQ(wins.load(), static_cast<int>(kTasks));
  EXPECT_EQ(supervisor.metrics().tasks, static_cast<std::int64_t>(kTasks));
}

TEST(TaskSupervisorTest, QuarantineReassignsTaskToNextHealthyExecutor) {
  FaultPlan plan;
  plan.ArmCrash(TaskStageKind::kAny, -1, /*executor=*/1, /*times=*/-1);
  TaskSupervisionOptions options;
  options.fault_plan = &plan;
  options.quarantine_threshold = 2;
  TaskSupervisor supervisor(options);

  const Result<StageResult> stage =
      supervisor.RunStage({TaskStageKind::kPregelCompute, 0}, 3,
                          [](TaskAttempt*) { return Status::OK(); });
  ASSERT_TRUE(stage.ok()) << stage.status().ToString();
  // Task 1's home executor crashed twice, got quarantined, and the
  // third attempt deterministically moved to executor 2 — where the
  // (executor-1-scoped) fault rule no longer matches.
  EXPECT_EQ(stage->committed_attempt[1], 2);
  EXPECT_EQ(stage->committed_executor[1], 2);
  EXPECT_TRUE(supervisor.IsQuarantined(1));
  EXPECT_FALSE(supervisor.IsQuarantined(0));
  EXPECT_EQ(supervisor.num_quarantined(), 1);
  const SupervisionMetrics m = supervisor.metrics();
  EXPECT_EQ(m.injected_crashes, 2);
  EXPECT_EQ(m.quarantined_workers, 1);
  EXPECT_GE(m.reassigned_tasks, 1);
}

TEST(TaskSupervisorTest, QuarantinePersistsAcrossStages) {
  FaultPlan plan;
  plan.ArmCrash(TaskStageKind::kAny, /*stage_index=*/0, /*executor=*/0,
                /*times=*/-1);
  TaskSupervisionOptions options;
  options.fault_plan = &plan;
  options.quarantine_threshold = 1;
  TaskSupervisor supervisor(options);

  ASSERT_TRUE(supervisor
                  .RunStage({TaskStageKind::kPregelCompute, 0}, 2,
                            [](TaskAttempt*) { return Status::OK(); })
                  .ok());
  ASSERT_TRUE(supervisor.IsQuarantined(0));

  // The next stage never routes task 0 to the quarantined executor:
  // one supervisor per job means health outlives any single stage.
  const Result<StageResult> next =
      supervisor.RunStage({TaskStageKind::kPregelCompute, 1}, 2,
                          [](TaskAttempt*) { return Status::OK(); });
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  EXPECT_EQ(next->committed_executor[0], 1);
  EXPECT_GE(supervisor.metrics().reassigned_tasks, 1);
}

TEST(TaskSupervisorTest, StraggleInjectionDelaysButStillCommits) {
  FaultPlan plan;
  plan.ArmDelay(TaskStageKind::kAny, -1, /*executor=*/0,
                /*delay_seconds=*/0.02, /*times=*/1);
  TaskSupervisionOptions options;
  options.fault_plan = &plan;
  TaskSupervisor supervisor(options);

  const Result<StageResult> stage =
      supervisor.RunStage({TaskStageKind::kMrShuffle, 1}, 2,
                          [](TaskAttempt*) { return Status::OK(); });
  ASSERT_TRUE(stage.ok()) << stage.status().ToString();
  // A straggle is not a failure: attempt 0 still commits.
  EXPECT_EQ(stage->committed_attempt[0], 0);
  EXPECT_FALSE(stage->had_failures);
  const SupervisionMetrics m = supervisor.metrics();
  EXPECT_EQ(m.injected_delays, 1);
  EXPECT_EQ(m.retries, 0);
  EXPECT_EQ(plan.delays_fired(), 1);
}

TEST(TaskSupervisorTest, MetricsAccumulateAcrossStages) {
  FaultPlan plan;
  plan.ArmTransient(TaskStageKind::kAny, -1, -1, /*times=*/1);
  TaskSupervisionOptions options;
  options.fault_plan = &plan;
  TaskSupervisor supervisor(options);

  for (int s = 0; s < 3; ++s) {
    ASSERT_TRUE(supervisor
                    .RunStage({TaskStageKind::kPregelCompute, s}, 2,
                              [](TaskAttempt*) { return Status::OK(); })
                    .ok());
  }
  const SupervisionMetrics m = supervisor.metrics();
  EXPECT_EQ(m.tasks, 6);
  EXPECT_EQ(m.attempts, 7);  // 6 firsts + 1 retry for the transient
  EXPECT_EQ(m.retries, 1);
  EXPECT_EQ(m.injected_transients, 1);
}

}  // namespace
}  // namespace inferturbo
