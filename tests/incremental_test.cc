#include "src/inference/incremental.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "src/graph/datasets.h"
#include "src/graph/graph_builder.h"
#include "src/inference/reference_inference.h"
#include "src/nn/model.h"

namespace inferturbo {
namespace {

Dataset BaseDataset() {
  PlantedGraphConfig config;
  config.num_nodes = 500;
  config.avg_degree = 6.0;
  config.num_classes = 3;
  config.feature_dim = 8;
  config.seed = 77;
  return MakePlantedDataset("incremental-base", config);
}

std::unique_ptr<GnnModel> SmallModel(const Graph& g,
                                     const std::string& kind = "sage") {
  ModelConfig config;
  config.input_dim = g.feature_dim();
  config.hidden_dim = 8;
  config.num_classes = g.num_classes();
  config.num_layers = 2;
  config.heads = 2;
  return MakeModel(kind, config).ValueOrDie();
}

/// Rebuilds `graph` with `feature_patch` rows replaced and
/// `extra_edges` appended.
Graph MutateGraph(const Graph& graph,
                  const std::vector<std::pair<NodeId, float>>& feature_patch,
                  const std::vector<std::pair<NodeId, NodeId>>& extra_edges) {
  GraphBuilder builder(graph.num_nodes());
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    builder.AddEdge(graph.EdgeSrc(e), graph.EdgeDst(e));
  }
  for (const auto& [src, dst] : extra_edges) builder.AddEdge(src, dst);
  Tensor features = graph.node_features();
  for (const auto& [v, value] : feature_patch) {
    for (std::int64_t j = 0; j < features.cols(); ++j) {
      features.At(v, j) = value + static_cast<float>(j);
    }
  }
  builder.SetNodeFeatures(std::move(features));
  builder.SetLabels(graph.labels(), graph.num_classes());
  return std::move(builder).Finish().ValueOrDie();
}

TEST(IncrementalTest, LayerStatesMatchReferenceForward) {
  const Dataset d = BaseDataset();
  const std::unique_ptr<GnnModel> model = SmallModel(d.graph);
  const LayerStates states = ComputeLayerStates(*model, d.graph);
  ASSERT_EQ(states.num_layers(), 2);
  const Tensor reference = LayerStackForward(
      *model, d.graph.node_features(), d.graph.edge_src(),
      d.graph.edge_dst());
  EXPECT_TRUE(states.states.back().ApproxEquals(reference, 0.0f));
}

TEST(IncrementalTest, FeatureChangeMatchesFullRecompute) {
  const Dataset d = BaseDataset();
  for (const std::string kind : {"sage", "gcn", "gat", "gin"}) {
    const std::unique_ptr<GnnModel> model = SmallModel(d.graph, kind);
    const LayerStates old_states = ComputeLayerStates(*model, d.graph);

    const Graph mutated = MutateGraph(d.graph, {{17, 0.5f}, {230, -1.25f}},
                                      {});
    GraphDelta delta;
    delta.changed_nodes = {17, 230};
    const Result<IncrementalResult> incremental =
        IncrementalInference(*model, mutated, old_states, delta);
    ASSERT_TRUE(incremental.ok()) << incremental.status().ToString();

    const LayerStates fresh = ComputeLayerStates(*model, mutated);
    for (std::size_t l = 0; l < fresh.states.size(); ++l) {
      EXPECT_TRUE(incremental->states.states[l].ApproxEquals(
          fresh.states[l], 0.0f))
          << kind << " layer " << l << " diverged (must be bit-identical)";
    }
    EXPECT_TRUE(incremental->logits.ApproxEquals(
        model->PredictLogits(fresh.states.back()), 0.0f));
  }
}

TEST(IncrementalTest, EdgeAdditionMatchesFullRecompute) {
  const Dataset d = BaseDataset();
  const std::unique_ptr<GnnModel> model = SmallModel(d.graph);
  const LayerStates old_states = ComputeLayerStates(*model, d.graph);

  const std::vector<std::pair<NodeId, NodeId>> extra = {{3, 99}, {400, 99},
                                                        {99, 7}};
  const Graph mutated = MutateGraph(d.graph, {}, extra);
  GraphDelta delta;
  delta.changed_in_edges = {99, 7};  // destinations of the new edges
  const Result<IncrementalResult> incremental =
      IncrementalInference(*model, mutated, old_states, delta);
  ASSERT_TRUE(incremental.ok());

  const LayerStates fresh = ComputeLayerStates(*model, mutated);
  for (std::size_t l = 0; l < fresh.states.size(); ++l) {
    EXPECT_TRUE(incremental->states.states[l].ApproxEquals(fresh.states[l],
                                                           0.0f))
        << "layer " << l;
  }
}

TEST(IncrementalTest, SmallDeltaRecomputesSmallCone) {
  const Dataset d = BaseDataset();
  const std::unique_ptr<GnnModel> model = SmallModel(d.graph);
  const LayerStates old_states = ComputeLayerStates(*model, d.graph);
  const Graph mutated = MutateGraph(d.graph, {{42, 2.0f}}, {});
  GraphDelta delta;
  delta.changed_nodes = {42};
  const Result<IncrementalResult> incremental =
      IncrementalInference(*model, mutated, old_states, delta);
  ASSERT_TRUE(incremental.ok());
  const std::int64_t total = std::accumulate(
      incremental->recomputed_per_layer.begin(),
      incremental->recomputed_per_layer.end(), std::int64_t{0});
  // Full recompute would be layers * N = 1000; one changed node's
  // 2-hop out-cone on an avg-degree-6 graph is tiny.
  EXPECT_LT(total, d.graph.num_nodes() / 4);
  EXPECT_GE(incremental->recomputed_per_layer[0], 1);
  EXPECT_GE(incremental->recomputed_per_layer[1],
            incremental->recomputed_per_layer[0]);
}

TEST(IncrementalTest, NoDeltaRecomputesNothing) {
  const Dataset d = BaseDataset();
  const std::unique_ptr<GnnModel> model = SmallModel(d.graph);
  const LayerStates old_states = ComputeLayerStates(*model, d.graph);
  const Result<IncrementalResult> incremental =
      IncrementalInference(*model, d.graph, old_states, GraphDelta{});
  ASSERT_TRUE(incremental.ok());
  for (const std::int64_t count : incremental->recomputed_per_layer) {
    EXPECT_EQ(count, 0);
  }
  EXPECT_TRUE(incremental->states.states.back().ApproxEquals(
      old_states.states.back(), 0.0f));
}

TEST(IncrementalTest, DeltaIdsAreOrderAndDuplicateInsensitive) {
  const Dataset d = BaseDataset();
  const std::unique_ptr<GnnModel> model = SmallModel(d.graph);
  const LayerStates old_states = ComputeLayerStates(*model, d.graph);
  const std::vector<std::pair<NodeId, NodeId>> extra = {{8, 123}, {123, 44}};
  const Graph mutated =
      MutateGraph(d.graph, {{17, 0.5f}, {230, -1.25f}, {301, 3.0f}}, extra);

  GraphDelta clean;
  clean.changed_nodes = {17, 230, 301};
  clean.changed_in_edges = {123, 44};
  // Shuffled and heavily duplicated: what a live delta stream that
  // touches hot nodes repeatedly actually delivers.
  GraphDelta messy;
  messy.changed_nodes = {301, 17, 230, 17, 17, 301, 230, 230, 301, 17};
  messy.changed_in_edges = {44, 123, 44, 44, 123, 123};

  const Result<IncrementalResult> a =
      IncrementalInference(*model, mutated, old_states, clean);
  const Result<IncrementalResult> b =
      IncrementalInference(*model, mutated, old_states, messy);
  ASSERT_TRUE(a.ok() && b.ok());

  // Same cone (no redundant recomputation from the duplicates), same
  // bits, same invalidation set.
  EXPECT_EQ(a->recomputed_per_layer, b->recomputed_per_layer);
  EXPECT_EQ(a->final_changed_nodes, b->final_changed_nodes);
  for (std::size_t l = 0; l < a->states.states.size(); ++l) {
    EXPECT_TRUE(a->states.states[l].ApproxEquals(b->states.states[l], 0.0f))
        << "layer " << l;
  }
  EXPECT_TRUE(a->logits.ApproxEquals(b->logits, 0.0f));

  // And both match a from-scratch pass on the mutated graph.
  const LayerStates fresh = ComputeLayerStates(*model, mutated);
  EXPECT_TRUE(b->states.states.back().ApproxEquals(fresh.states.back(),
                                                   0.0f));
}

TEST(IncrementalTest, FinalChangedNodesBoundsTheLogitsDiff) {
  const Dataset d = BaseDataset();
  const std::unique_ptr<GnnModel> model = SmallModel(d.graph);
  const LayerStates old_states = ComputeLayerStates(*model, d.graph);
  const Graph mutated = MutateGraph(d.graph, {{42, 2.0f}}, {});
  GraphDelta delta;
  delta.changed_nodes = {42};
  const Result<IncrementalResult> incremental =
      IncrementalInference(*model, mutated, old_states, delta);
  ASSERT_TRUE(incremental.ok());

  // final_changed_nodes is sorted, unique, and covers every row whose
  // final state differs from the historical one — the exact contract
  // the serving layer's cache invalidation relies on.
  const std::vector<NodeId>& changed = incremental->final_changed_nodes;
  EXPECT_TRUE(std::is_sorted(changed.begin(), changed.end()));
  EXPECT_EQ(static_cast<std::int64_t>(changed.size()),
            incremental->recomputed_per_layer.back());
  const Tensor& old_final = old_states.states.back();
  const Tensor& new_final = incremental->states.states.back();
  for (NodeId v = 0; v < d.graph.num_nodes(); ++v) {
    if (std::binary_search(changed.begin(), changed.end(), v)) continue;
    for (std::int64_t j = 0; j < new_final.cols(); ++j) {
      ASSERT_EQ(old_final.At(v, j), new_final.At(v, j))
          << "node " << v << " outside final_changed_nodes moved";
    }
  }
}

TEST(IncrementalTest, OptionsCanSkipLogits) {
  const Dataset d = BaseDataset();
  const std::unique_ptr<GnnModel> model = SmallModel(d.graph);
  const LayerStates old_states = ComputeLayerStates(*model, d.graph);
  IncrementalOptions options;
  options.compute_logits = false;
  const Result<IncrementalResult> r = IncrementalInference(
      *model, d.graph, old_states, GraphDelta{}, options);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->logits.empty());
}

TEST(IncrementalTest, RejectsMismatchedHistory) {
  const Dataset d = BaseDataset();
  const std::unique_ptr<GnnModel> two_layers = SmallModel(d.graph);
  ModelConfig config;
  config.input_dim = d.graph.feature_dim();
  config.hidden_dim = 8;
  config.num_classes = d.graph.num_classes();
  config.num_layers = 3;
  const std::unique_ptr<GnnModel> three_layers = MakeSageModel(config);
  const LayerStates states = ComputeLayerStates(*two_layers, d.graph);
  const Result<IncrementalResult> r =
      IncrementalInference(*three_layers, d.graph, states, GraphDelta{});
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

}  // namespace
}  // namespace inferturbo
