// The opt-in fast-math tier's two contracts. (1) Opt-in means OFF is
// free: with fast_math unset the kernels are bit-identical to the
// scalar oracle — the deterministic tier must not change by a single
// bit whether or not the fast TU is compiled in. (2) ON is bounded:
// FMA (and optionally bf16-storage) results stay inside the documented
// envelope |fast - oracle| <= tol * (|A|·|B|)[i,j] + tiny at every
// shape and thread setting, on both scheduler paths.
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/graph/datasets.h"
#include "src/inference/inferturbo_mapreduce.h"
#include "src/inference/inferturbo_pregel.h"
#include "src/nn/model.h"
#include "src/tensor/kernels/kernel_config.h"
#include "src/tensor/kernels/kernels.h"
#include "src/tensor/kernels/reference.h"

namespace inferturbo {
namespace {

// Size the Default() executor to 4 before anything instantiates it, so
// the multi-thread settings below genuinely fan out on any host.
const bool g_exec_env = [] {
  ::setenv("INFERTURBO_EXEC_THREADS", "4", /*overwrite=*/1);
  return true;
}();

Tensor AbsTensor(const Tensor& t) {
  Tensor out(t.rows(), t.cols());
  for (std::int64_t i = 0; i < t.size(); ++i) {
    out.data()[i] = std::fabs(t.data()[i]);
  }
  return out;
}

// Largest |fast - oracle| / envelope ratio over the matrix (elements
// with a zero envelope must match to kTiny absolutely).
void ExpectWithinEnvelope(const Tensor& fast, const Tensor& oracle,
                          const Tensor& envelope, float tol,
                          const std::string& label) {
  constexpr float kTiny = 1e-6f;
  ASSERT_EQ(fast.rows(), oracle.rows()) << label;
  ASSERT_EQ(fast.cols(), oracle.cols()) << label;
  for (std::int64_t i = 0; i < fast.rows(); ++i) {
    for (std::int64_t j = 0; j < fast.cols(); ++j) {
      const float bound = tol * envelope.At(i, j) + kTiny;
      const float err = std::fabs(fast.At(i, j) - oracle.At(i, j));
      ASSERT_LE(err, bound)
          << label << " at (" << i << "," << j << "): fast=" << fast.At(i, j)
          << " oracle=" << oracle.At(i, j);
    }
  }
}

struct Setting {
  int max_threads;
  bool use_static;
};

const Setting kSettings[] = {
    {1, true}, {2, true}, {4, true}, {2, false}, {4, false}};

class FastMathTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = kernels::GetKernelConfig(); }
  void TearDown() override { kernels::SetKernelConfig(saved_); }

  void Use(const Setting& setting, bool fast, bool bf16) {
    kernels::KernelConfig config;
    config.max_threads = setting.max_threads;
    config.min_parallel_work = 1;
    config.use_static_executor = setting.use_static;
    config.fast_math = fast;
    config.fast_math_bf16 = bf16;
    kernels::SetKernelConfig(config);
  }

  bool FastMathAvailable() {
    Use({1, true}, /*fast=*/true, /*bf16=*/false);
    const bool available = kernels::UsingFastMath();
    Use({1, true}, /*fast=*/false, /*bf16=*/false);
    return available;
  }

 private:
  kernels::KernelConfig saved_;
};

struct Shape {
  std::int64_t m, k, n;
};

// Full panels, column tails, row tails, skinny and tiny shapes.
const Shape kShapes[] = {{1, 1, 1},    {2, 3, 4},    {5, 17, 23},
                         {7, 64, 16},  {16, 8, 33},  {33, 29, 47},
                         {64, 64, 64}, {6, 40, 128}, {65, 31, 130}};

TEST_F(FastMathTest, Fp32TierWithinDocumentedTolerance) {
  if (!FastMathAvailable()) {
    GTEST_SKIP() << "no AVX2+FMA on this CPU/build";
  }
  Rng rng(211);
  for (const Shape& shape : kShapes) {
    const Tensor a = Tensor::RandomNormal(shape.m, shape.k, 1.0f, &rng);
    const Tensor b = Tensor::RandomNormal(shape.k, shape.n, 1.0f, &rng);
    const Tensor oracle = kernels::reference::MatMul(a, b);
    const Tensor envelope =
        kernels::reference::MatMul(AbsTensor(a), AbsTensor(b));
    for (const Setting& setting : kSettings) {
      Use(setting, /*fast=*/true, /*bf16=*/false);
      std::ostringstream label;
      label << "fp32 " << shape.m << "x" << shape.k << "x" << shape.n
            << " threads=" << setting.max_threads
            << " static=" << setting.use_static;
      ExpectWithinEnvelope(kernels::MatMul(a, b), oracle, envelope,
                           kernels::kFastMathRelTol, label.str());
    }
  }
}

TEST_F(FastMathTest, Bf16TierWithinDocumentedTolerance) {
  if (!FastMathAvailable()) {
    GTEST_SKIP() << "no AVX2+FMA on this CPU/build";
  }
  Rng rng(212);
  for (const Shape& shape : kShapes) {
    const Tensor a = Tensor::RandomNormal(shape.m, shape.k, 1.0f, &rng);
    const Tensor b = Tensor::RandomNormal(shape.k, shape.n, 1.0f, &rng);
    const Tensor oracle = kernels::reference::MatMul(a, b);
    const Tensor envelope =
        kernels::reference::MatMul(AbsTensor(a), AbsTensor(b));
    for (const Setting& setting : kSettings) {
      Use(setting, /*fast=*/true, /*bf16=*/true);
      std::ostringstream label;
      label << "bf16 " << shape.m << "x" << shape.k << "x" << shape.n
            << " threads=" << setting.max_threads
            << " static=" << setting.use_static;
      ExpectWithinEnvelope(kernels::MatMul(a, b), oracle, envelope,
                           kernels::kFastMathBf16RelTol, label.str());
    }
  }
}

TEST_F(FastMathTest, TransposedAUsesTheTierToo) {
  if (!FastMathAvailable()) {
    GTEST_SKIP() << "no AVX2+FMA on this CPU/build";
  }
  Rng rng(213);
  const Tensor a = Tensor::RandomNormal(47, 33, 1.0f, &rng);  // k×m
  const Tensor b = Tensor::RandomNormal(47, 29, 1.0f, &rng);  // k×n
  const Tensor oracle = kernels::reference::MatMulTransposedA(a, b);
  // Envelope via the explicit transpose of |A|.
  Tensor at(a.cols(), a.rows());
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    for (std::int64_t c = 0; c < a.cols(); ++c) {
      at.At(c, r) = std::fabs(a.At(r, c));
    }
  }
  const Tensor envelope = kernels::reference::MatMul(at, AbsTensor(b));
  for (const Setting& setting : kSettings) {
    Use(setting, /*fast=*/true, /*bf16=*/false);
    ExpectWithinEnvelope(kernels::MatMulTransposedA(a, b), oracle, envelope,
                         kernels::kFastMathRelTol, "matmul_ta fp32");
  }
}

TEST_F(FastMathTest, OffMeansBitIdenticalToTheOracle) {
  // The flag off must reproduce the deterministic tier exactly — the
  // fast TU being linked in cannot perturb a single bit.
  Rng rng(214);
  for (const Shape& shape : kShapes) {
    const Tensor a = Tensor::RandomNormal(shape.m, shape.k, 1.0f, &rng);
    const Tensor b = Tensor::RandomNormal(shape.k, shape.n, 1.0f, &rng);
    const Tensor want = kernels::reference::MatMul(a, b);
    for (const Setting& setting : kSettings) {
      Use(setting, /*fast=*/false, /*bf16=*/false);
      const Tensor got = kernels::MatMul(a, b);
      ASSERT_EQ(0, std::memcmp(want.data(), got.data(), want.ByteSize()))
          << shape.m << "x" << shape.k << "x" << shape.n << " threads="
          << setting.max_threads << " static=" << setting.use_static;
    }
  }
}

// End-to-end: with fast_math off, both backends' logits are bitwise
// unchanged at every thread setting — the whole-pipeline restatement of
// the kernel contract, and the guarantee that the flag's default
// changes nothing for existing users.
TEST_F(FastMathTest, OffKeepsBothBackendsLogitsBitIdentical) {
  PlantedGraphConfig graph_config;
  graph_config.num_nodes = 220;
  graph_config.avg_degree = 6.0;
  graph_config.num_classes = 4;
  graph_config.feature_dim = 12;
  graph_config.seed = 5;
  const Dataset dataset = MakePlantedDataset("fastmath", graph_config);

  ModelConfig model_config;
  model_config.input_dim = dataset.graph.feature_dim();
  model_config.hidden_dim = 16;
  model_config.num_classes = dataset.graph.num_classes();
  model_config.num_layers = 2;
  model_config.seed = 9;
  Result<std::unique_ptr<GnnModel>> model = MakeModel("sage", model_config);
  ASSERT_TRUE(model.ok());

  InferTurboOptions options;
  options.num_workers = 4;

  Use({1, true}, /*fast=*/false, /*bf16=*/false);
  const Result<InferenceResult> base_pregel =
      RunInferTurboPregel(dataset.graph, **model, options);
  const Result<InferenceResult> base_mr =
      RunInferTurboMapReduce(dataset.graph, **model, options);
  ASSERT_TRUE(base_pregel.ok());
  ASSERT_TRUE(base_mr.ok());

  for (const Setting& setting : kSettings) {
    Use(setting, /*fast=*/false, /*bf16=*/false);
    const Result<InferenceResult> pregel =
        RunInferTurboPregel(dataset.graph, **model, options);
    const Result<InferenceResult> mr =
        RunInferTurboMapReduce(dataset.graph, **model, options);
    ASSERT_TRUE(pregel.ok());
    ASSERT_TRUE(mr.ok());
    EXPECT_EQ(0, std::memcmp(base_pregel->logits.data(),
                             pregel->logits.data(),
                             base_pregel->logits.ByteSize()))
        << "pregel threads=" << setting.max_threads
        << " static=" << setting.use_static;
    EXPECT_EQ(0, std::memcmp(base_mr->logits.data(), mr->logits.data(),
                             base_mr->logits.ByteSize()))
        << "mapreduce threads=" << setting.max_threads
        << " static=" << setting.use_static;
  }
}

}  // namespace
}  // namespace inferturbo
