#include "src/graph/graph.h"

#include <gtest/gtest.h>

#include "src/graph/graph_builder.h"

namespace inferturbo {
namespace {

Graph MakeTriangle() {
  // 0 -> 1, 1 -> 2, 2 -> 0, 0 -> 2.
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 0);
  builder.AddEdge(0, 2);
  builder.SetNodeFeatures(Tensor::FromRows({{1, 0}, {0, 1}, {1, 1}}));
  Result<Graph> g = std::move(builder).Finish();
  EXPECT_TRUE(g.ok()) << g.status().ToString();
  return std::move(g).ValueOrDie();
}

TEST(GraphBuilderTest, BuildsDegreesAndAdjacency) {
  Graph g = MakeTriangle();
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_EQ(g.OutDegree(0), 2);
  EXPECT_EQ(g.OutDegree(1), 1);
  EXPECT_EQ(g.InDegree(2), 2);
  EXPECT_EQ(g.InDegree(0), 1);
}

TEST(GraphBuilderTest, OutEdgesPointToRightDestinations) {
  Graph g = MakeTriangle();
  std::vector<NodeId> dsts;
  for (EdgeId e : g.OutEdges(0)) dsts.push_back(g.EdgeDst(e));
  std::sort(dsts.begin(), dsts.end());
  EXPECT_EQ(dsts, (std::vector<NodeId>{1, 2}));
}

TEST(GraphBuilderTest, InEdgesPointFromRightSources) {
  Graph g = MakeTriangle();
  std::vector<NodeId> srcs;
  for (EdgeId e : g.InEdges(2)) srcs.push_back(g.EdgeSrc(e));
  std::sort(srcs.begin(), srcs.end());
  EXPECT_EQ(srcs, (std::vector<NodeId>{0, 1}));
}

TEST(GraphBuilderTest, CsrAndCscAgreeOnEveryEdge) {
  Graph g = MakeTriangle();
  // Every edge id reachable through OutEdges must round-trip through
  // InEdges of its destination.
  std::int64_t seen = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (EdgeId e : g.OutEdges(v)) {
      EXPECT_EQ(g.EdgeSrc(e), v);
      bool found = false;
      for (EdgeId e2 : g.InEdges(g.EdgeDst(e))) found = found || e2 == e;
      EXPECT_TRUE(found);
      ++seen;
    }
  }
  EXPECT_EQ(seen, g.num_edges());
}

TEST(GraphBuilderTest, RejectsOutOfRangeEdge) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 5);
  builder.SetNodeFeatures(Tensor(2, 1));
  Result<Graph> g = std::move(builder).Finish();
  EXPECT_FALSE(g.ok());
  EXPECT_TRUE(g.status().IsInvalidArgument());
}

TEST(GraphBuilderTest, RejectsFeatureRowMismatch) {
  GraphBuilder builder(3);
  builder.SetNodeFeatures(Tensor(2, 4));
  Result<Graph> g = std::move(builder).Finish();
  EXPECT_FALSE(g.ok());
}

TEST(GraphBuilderTest, RejectsBadLabelRange) {
  GraphBuilder builder(2);
  builder.SetNodeFeatures(Tensor(2, 1));
  builder.SetLabels({0, 7}, 3);
  Result<Graph> g = std::move(builder).Finish();
  EXPECT_FALSE(g.ok());
}

TEST(GraphBuilderTest, RejectsSplitOutOfRange) {
  GraphBuilder builder(2);
  builder.SetNodeFeatures(Tensor(2, 1));
  builder.SetSplits({0, 9}, {}, {});
  Result<Graph> g = std::move(builder).Finish();
  EXPECT_FALSE(g.ok());
}

TEST(GraphBuilderTest, EdgeFeaturesFollowEdgePermutation) {
  GraphBuilder builder(3);
  builder.AddEdge(2, 0);  // inserted first, but sorts after src-0 edges
  builder.AddEdge(0, 1);
  builder.SetNodeFeatures(Tensor(3, 1));
  builder.SetEdgeFeatures(Tensor::FromRows({{20.0f}, {1.0f}}));
  Result<Graph> g = std::move(builder).Finish();
  ASSERT_TRUE(g.ok());
  // Edge from node 0 must carry feature 1.0, edge from 2 carries 20.0.
  for (EdgeId e = 0; e < g->num_edges(); ++e) {
    const float expected = g->EdgeSrc(e) == 0 ? 1.0f : 20.0f;
    EXPECT_EQ(g->edge_features().At(e, 0), expected);
  }
}

TEST(GraphBuilderTest, MultiEdgesArePreserved) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 1);
  builder.SetNodeFeatures(Tensor(2, 1));
  Result<Graph> g = std::move(builder).Finish();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->OutDegree(0), 2);
  EXPECT_EQ(g->InDegree(1), 2);
}

TEST(GraphTest, ApproxByteSizeCountsFeatureBytes) {
  Graph g = MakeTriangle();
  EXPECT_GE(g.ApproxByteSize(), g.node_features().ByteSize());
}

}  // namespace
}  // namespace inferturbo
