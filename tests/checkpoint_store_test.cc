// Durable checkpoint store: versioned CRC-framed files written
// atomically under a manifest, keep-last-K retention, and corruption
// falling back to the previous valid checkpoint — exercised against
// the scripted I/O fault injector.
#include "src/checkpoint/checkpoint_store.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "src/common/atomic_file.h"

namespace inferturbo {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

CheckpointData MakeData(std::int64_t step) {
  CheckpointData data;
  data.step = step;
  data.engine_state = "engine-" + std::to_string(step);
  data.driver_state = "driver-" + std::to_string(step);
  return data;
}

TEST(CheckpointStoreTest, SaveLoadRoundTrip) {
  CheckpointStoreOptions options;
  options.directory = FreshDir("ckpt_roundtrip");
  Result<CheckpointStore> store = CheckpointStore::Open(options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  ASSERT_TRUE(store->Save(MakeData(0)).ok());
  ASSERT_TRUE(store->Save(MakeData(3)).ok());
  const Result<CheckpointData> latest = store->LoadLatest();
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_EQ(latest->step, 3);
  EXPECT_EQ(latest->engine_state, "engine-3");
  EXPECT_EQ(latest->driver_state, "driver-3");
}

TEST(CheckpointStoreTest, LoadLatestOnEmptyStoreIsNotFound) {
  CheckpointStoreOptions options;
  options.directory = FreshDir("ckpt_empty");
  Result<CheckpointStore> store = CheckpointStore::Open(options);
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE(store->LoadLatest().status().IsNotFound());
}

TEST(CheckpointStoreTest, OpenRejectsMissingDirectory) {
  CheckpointStoreOptions options;
  options.directory = testing::TempDir() + "/ckpt_no_such_dir";
  std::filesystem::remove_all(options.directory);
  EXPECT_TRUE(CheckpointStore::Open(options).status().IsInvalidArgument());
}

TEST(CheckpointStoreTest, RetentionKeepsOnlyNewestK) {
  CheckpointStoreOptions options;
  options.directory = FreshDir("ckpt_retention");
  options.keep_last = 2;
  Result<CheckpointStore> store = CheckpointStore::Open(options);
  ASSERT_TRUE(store.ok());
  for (std::int64_t step = 0; step < 5; ++step) {
    ASSERT_TRUE(store->Save(MakeData(step)).ok());
  }
  EXPECT_EQ(store->versions().size(), 2u);
  std::int64_t files = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(options.directory)) {
    if (entry.path().filename().string().rfind("ckpt_", 0) == 0) ++files;
  }
  EXPECT_EQ(files, 2);
  const Result<CheckpointData> latest = store->LoadLatest();
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->step, 4);
}

TEST(CheckpointStoreTest, CorruptedLatestFallsBackToPreviousValid) {
  CheckpointStoreOptions options;
  options.directory = FreshDir("ckpt_fallback");
  options.keep_last = 3;
  Result<CheckpointStore> store = CheckpointStore::Open(options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Save(MakeData(1)).ok());
  ASSERT_TRUE(store->Save(MakeData(2)).ok());

  // Scribble over the newest file on disk (a torn write a checksum
  // must catch).
  const std::vector<std::int64_t> versions = store->versions();
  ASSERT_EQ(versions.size(), 2u);
  char name[64];
  std::snprintf(name, sizeof(name), "ckpt_%08lld.bin",
                static_cast<long long>(versions.back()));
  {
    std::ofstream out(options.directory + "/" + name,
                      std::ios::binary | std::ios::trunc);
    out << "garbage that is definitely not a checkpoint";
  }

  const Result<CheckpointData> latest = store->LoadLatest();
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_EQ(latest->step, 1);
  EXPECT_GE(store->corrupted_skipped(), 1);
}

TEST(CheckpointStoreTest, TransientWriteFaultIsRetried) {
  ScriptedIoFaultInjector injector;
  injector.Arm(IoOp::kWrite, "ckpt_0", IoFaultKind::kWriteFail, /*times=*/2);
  CheckpointStoreOptions options;
  options.directory = FreshDir("ckpt_transient");
  options.fault_injector = &injector;
  Result<CheckpointStore> store = CheckpointStore::Open(options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Save(MakeData(7)).ok());
  EXPECT_EQ(injector.faults_fired(), 2);
  const Result<CheckpointData> latest = store->LoadLatest();
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->step, 7);
}

TEST(CheckpointStoreTest, PersistentWriteFaultSurfacesAsIoError) {
  ScriptedIoFaultInjector injector;
  injector.Arm(IoOp::kWrite, "ckpt_0", IoFaultKind::kNoSpace, /*times=*/-1);
  CheckpointStoreOptions options;
  options.directory = FreshDir("ckpt_enospc");
  options.fault_injector = &injector;
  Result<CheckpointStore> store = CheckpointStore::Open(options);
  ASSERT_TRUE(store.ok());
  const Status status = store->Save(MakeData(1));
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  // Nothing half-written became visible.
  EXPECT_TRUE(store->versions().empty());
  EXPECT_TRUE(store->LoadLatest().status().IsNotFound());
}

TEST(CheckpointStoreTest, BitFlippedWriteIsDetectedAtLoad) {
  ScriptedIoFaultInjector injector;
  CheckpointStoreOptions options;
  options.directory = FreshDir("ckpt_bitflip");
  options.fault_injector = &injector;
  Result<CheckpointStore> store = CheckpointStore::Open(options);
  ASSERT_TRUE(store.ok());
  // The flip "succeeds" silently at write time; only the CRC check on
  // the read side can catch it.
  injector.Arm(IoOp::kWrite, "ckpt_0", IoFaultKind::kBitFlip, /*times=*/1);
  ASSERT_TRUE(store->Save(MakeData(1)).ok());
  EXPECT_TRUE(store->LoadLatest().status().IsNotFound());
  EXPECT_GE(store->corrupted_skipped(), 1);
}

TEST(CheckpointStoreTest, TransientShortReadIsRetried) {
  ScriptedIoFaultInjector injector;
  CheckpointStoreOptions options;
  options.directory = FreshDir("ckpt_shortread");
  options.fault_injector = &injector;
  Result<CheckpointStore> store = CheckpointStore::Open(options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Save(MakeData(5)).ok());
  injector.Arm(IoOp::kRead, "ckpt_0", IoFaultKind::kShortRead, /*times=*/1);
  injector.Arm(IoOp::kRead, "ckpt_0", IoFaultKind::kBitFlip, /*times=*/1);
  const Result<CheckpointData> latest = store->LoadLatest();
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_EQ(latest->step, 5);
  EXPECT_EQ(injector.faults_fired(), 2);
}

TEST(CheckpointStoreTest, TornManifestFallsBackToDirectoryScan) {
  const std::string dir = FreshDir("ckpt_torn_manifest");
  {
    CheckpointStoreOptions options;
    options.directory = dir;
    Result<CheckpointStore> store = CheckpointStore::Open(options);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store->Save(MakeData(1)).ok());
    ASSERT_TRUE(store->Save(MakeData(2)).ok());
  }
  {
    std::ofstream out(dir + "/MANIFEST", std::ios::binary | std::ios::trunc);
    out << "torn";
  }
  CheckpointStoreOptions options;
  options.directory = dir;
  Result<CheckpointStore> reopened = CheckpointStore::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->versions().size(), 2u);
  const Result<CheckpointData> latest = reopened->LoadLatest();
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->step, 2);
}

TEST(CheckpointStoreTest, ReopenedStoreResumesVersionNumbering) {
  const std::string dir = FreshDir("ckpt_reopen");
  {
    CheckpointStoreOptions options;
    options.directory = dir;
    Result<CheckpointStore> store = CheckpointStore::Open(options);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store->Save(MakeData(1)).ok());
  }
  CheckpointStoreOptions options;
  options.directory = dir;
  Result<CheckpointStore> reopened = CheckpointStore::Open(options);
  ASSERT_TRUE(reopened.ok());
  ASSERT_TRUE(reopened->Save(MakeData(9)).ok());
  EXPECT_EQ(reopened->versions().size(), 2u);
  EXPECT_LT(reopened->versions()[0], reopened->versions()[1]);
  const Result<CheckpointData> latest = reopened->LoadLatest();
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->step, 9);
}

}  // namespace
}  // namespace inferturbo
