#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "src/common/byte_size.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/common/timer.h"

namespace inferturbo {
namespace {

TEST(RngTest, DeterministicUnderSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.NextUint64() == b.NextUint64();
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextBoundedHitsAllValues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.NextBounded(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextDoubleIsUnitInterval) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 2000.0, 0.5, 0.05);
}

TEST(RngTest, GaussianHasRoughlyUnitVariance) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.08);
  EXPECT_NEAR(sq / n, 1.0, 0.12);
}

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversIndexSpaceExactlyOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(257, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForHandlesSmallN) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
  pool.ParallelFor(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(TimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  // A spin long enough to register at microsecond resolution.
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x += i;
  EXPECT_GT(timer.ElapsedSeconds(), 0.0);
  EXPECT_GE(timer.ElapsedMicros(), 0);
}

TEST(ByteSizeTest, MessageByteArithmetic) {
  EXPECT_EQ(EmbeddingBytes(64), 256u);
  EXPECT_EQ(MessageBytes(64), kMessageHeaderBytes + 256);
  EXPECT_EQ(IdOnlyMessageBytes(), kMessageHeaderBytes + 8);
}

TEST(ByteSizeTest, FormatBytesPicksUnits) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2048), "2.0 KiB");
  EXPECT_EQ(FormatBytes(std::uint64_t{3} * 1024 * 1024 * 1024), "3.0 GiB");
}

}  // namespace
}  // namespace inferturbo
