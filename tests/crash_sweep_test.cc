// Crash sweep — exhaustively kills each (superstep, worker) pair once
// via the in-process failure injector, and each checkpoint boundary
// once via simulated whole-process death + resume_from, on both
// backends. Every recovered or resumed run must produce logits
// bit-identical to an undisturbed one.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "src/graph/datasets.h"
#include "src/inference/inferturbo_mapreduce.h"
#include "src/inference/inferturbo_pregel.h"
#include "src/nn/model.h"

namespace inferturbo {
namespace {

Dataset SmallGraph() {
  PowerLawConfig config;
  config.num_nodes = 400;
  config.avg_degree = 6.0;
  config.seed = 3;
  return MakePowerLawDataset(config, /*feature_dim=*/12);
}

// Out-skewed so the broadcast strategy actually publishes hub payloads
// — the kill/resume sweeps must round-trip the broadcast board/table
// through the durable checkpoint.
Dataset SkewedGraph() {
  PowerLawConfig config;
  config.num_nodes = 400;
  config.avg_degree = 8.0;
  config.alpha = 1.5;
  config.skew = PowerLawSkew::kOut;
  config.seed = 23;
  return MakePowerLawDataset(config, /*feature_dim=*/10);
}

std::unique_ptr<GnnModel> SmallModel(const Graph& g) {
  ModelConfig config;
  config.input_dim = g.feature_dim();
  config.hidden_dim = 8;
  config.num_classes = g.num_classes();
  config.num_layers = 3;  // 4 Pregel supersteps / 1 map + 3 reduce rounds
  return MakeSageModel(config);
}

std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

constexpr std::int64_t kWorkers = 3;
constexpr std::int64_t kPregelSupersteps = 4;  // 3 layers + init
constexpr std::int64_t kMrStages = 4;          // map + 3 reduce rounds

TEST(PregelCrashSweepTest, EveryStepWorkerPairRecoversBitIdentical) {
  const Dataset d = SmallGraph();
  const std::unique_ptr<GnnModel> model = SmallModel(d.graph);

  InferTurboOptions clean;
  clean.num_workers = kWorkers;
  clean.strategies.partial_gather = true;
  const Result<InferenceResult> reference =
      RunInferTurboPregel(d.graph, *model, clean);
  ASSERT_TRUE(reference.ok());

  for (std::int64_t step = 0; step < kPregelSupersteps; ++step) {
    for (std::int64_t worker = 0; worker < kWorkers; ++worker) {
      InferTurboOptions faulty = clean;
      faulty.checkpoint_interval = 1;
      auto fired = std::make_shared<bool>(false);
      faulty.failure_injector = [fired, step, worker](std::int64_t s,
                                                      std::int64_t w) {
        if (s == step && w == worker && !*fired) {
          *fired = true;
          return true;
        }
        return false;
      };
      const Result<InferenceResult> recovered =
          RunInferTurboPregel(d.graph, *model, faulty);
      ASSERT_TRUE(recovered.ok())
          << "step " << step << " worker " << worker << ": "
          << recovered.status().ToString();
      EXPECT_EQ(faulty.failures_recovered, 1)
          << "step " << step << " worker " << worker;
      EXPECT_TRUE(recovered->logits.ApproxEquals(reference->logits, 0.0f))
          << "step " << step << " worker " << worker
          << ": recovered run must be bit-identical";
    }
  }
}

TEST(MapReduceCrashSweepTest, EveryStageInstancePairRecoversBitIdentical) {
  const Dataset d = SmallGraph();
  const std::unique_ptr<GnnModel> model = SmallModel(d.graph);

  InferTurboOptions clean;
  clean.num_workers = kWorkers;
  clean.strategies.partial_gather = true;
  const Result<InferenceResult> reference =
      RunInferTurboMapReduce(d.graph, *model, clean);
  ASSERT_TRUE(reference.ok());

  // Only reduce stages re-execute (the map's inputs are the immutable
  // graph), so the sweep covers stages 1..k.
  for (std::int64_t stage = 1; stage < kMrStages; ++stage) {
    for (std::int64_t instance = 0; instance < kWorkers; ++instance) {
      InferTurboOptions faulty = clean;
      auto fired = std::make_shared<bool>(false);
      faulty.failure_injector = [fired, stage, instance](std::int64_t s,
                                                         std::int64_t i) {
        if (s == stage && i == instance && !*fired) {
          *fired = true;
          return true;
        }
        return false;
      };
      const Result<InferenceResult> recovered =
          RunInferTurboMapReduce(d.graph, *model, faulty);
      ASSERT_TRUE(recovered.ok())
          << "stage " << stage << " instance " << instance << ": "
          << recovered.status().ToString();
      EXPECT_EQ(faulty.failures_recovered, 1)
          << "stage " << stage << " instance " << instance;
      EXPECT_TRUE(recovered->logits.ApproxEquals(reference->logits, 0.0f))
          << "stage " << stage << " instance " << instance;
    }
  }
}

TEST(PregelCrashSweepTest, ProcessDeathAtEverySuperstepResumesBitIdentical) {
  const Dataset d = SkewedGraph();
  const std::unique_ptr<GnnModel> model = SmallModel(d.graph);

  InferTurboOptions clean;
  clean.num_workers = kWorkers;
  clean.strategies.broadcast = true;
  clean.strategies.threshold_override = 10;
  const Result<InferenceResult> reference =
      RunInferTurboPregel(d.graph, *model, clean);
  ASSERT_TRUE(reference.ok());

  for (std::int64_t kill_step = 0; kill_step < kPregelSupersteps;
       ++kill_step) {
    const std::string dir =
        FreshDir("pregel_death_" + std::to_string(kill_step));

    InferTurboOptions doomed = clean;
    doomed.checkpoint_directory = dir;
    doomed.checkpoint_interval = 1;
    doomed.kill_switch = [kill_step](std::int64_t step) {
      return step == kill_step;
    };
    const Result<InferenceResult> aborted =
        RunInferTurboPregel(d.graph, *model, doomed);
    ASSERT_FALSE(aborted.ok()) << "kill at superstep " << kill_step;
    EXPECT_EQ(aborted.status().code(), StatusCode::kAborted);

    // A "new process": fresh options, no kill switch, resume_from.
    InferTurboOptions revived = clean;
    revived.checkpoint_directory = dir;
    revived.checkpoint_interval = 1;
    revived.resume_from = true;
    const Result<InferenceResult> resumed =
        RunInferTurboPregel(d.graph, *model, revived);
    ASSERT_TRUE(resumed.ok()) << "resume after kill at superstep "
                              << kill_step << ": "
                              << resumed.status().ToString();
    EXPECT_TRUE(resumed->logits.ApproxEquals(reference->logits, 0.0f))
        << "resume after kill at superstep " << kill_step
        << ": resumed run must be bit-identical";
  }
}

TEST(MapReduceCrashSweepTest, ProcessDeathAtEveryStageResumesBitIdentical) {
  const Dataset d = SkewedGraph();
  const std::unique_ptr<GnnModel> model = SmallModel(d.graph);

  InferTurboOptions clean;
  clean.num_workers = kWorkers;
  clean.strategies.broadcast = true;
  clean.strategies.threshold_override = 10;
  const Result<InferenceResult> reference =
      RunInferTurboMapReduce(d.graph, *model, clean);
  ASSERT_TRUE(reference.ok());

  for (std::int64_t kill_stage = 0; kill_stage < kMrStages; ++kill_stage) {
    const std::string dir =
        FreshDir("mr_death_" + std::to_string(kill_stage));

    InferTurboOptions doomed = clean;
    doomed.checkpoint_directory = dir;
    doomed.kill_switch = [kill_stage](std::int64_t stage) {
      return stage == kill_stage;
    };
    const Result<InferenceResult> aborted =
        RunInferTurboMapReduce(d.graph, *model, doomed);
    ASSERT_FALSE(aborted.ok()) << "kill before stage " << kill_stage;
    EXPECT_EQ(aborted.status().code(), StatusCode::kAborted);

    // Killing before stage 0 leaves an empty store; resume degrades to
    // a fresh run. Every later stage resumes mid-job off the newest
    // checkpoint — including the broadcast table the reduce rounds
    // resolve references against.
    InferTurboOptions revived = clean;
    revived.checkpoint_directory = dir;
    revived.resume_from = true;
    const Result<InferenceResult> resumed =
        RunInferTurboMapReduce(d.graph, *model, revived);
    ASSERT_TRUE(resumed.ok()) << "resume after kill before stage "
                              << kill_stage << ": "
                              << resumed.status().ToString();
    EXPECT_TRUE(resumed->logits.ApproxEquals(reference->logits, 0.0f))
        << "resume after kill before stage " << kill_stage
        << ": resumed run must be bit-identical";
  }
}

}  // namespace
}  // namespace inferturbo
