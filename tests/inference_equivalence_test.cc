// The paper's central correctness claims, as executable properties:
//
//  1. Both distributed backends (Pregel, MapReduce) reproduce the
//     single-machine full-graph reference forward.
//  2. Every optimization strategy (partial-gather, broadcast,
//     shadow-nodes) and every combination of them is *exact*: logits
//     stay within float-reassociation tolerance and hard predictions
//     are identical.
//  3. Inference is deterministic: repeated runs are bit-identical.
//  4. Mini-batch training-mode forward over a full-fan-out k-hop
//     neighborhood equals full-graph inference on the target nodes —
//     the property that lets one model serve both phases.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "src/graph/datasets.h"
#include "src/inference/inferturbo_mapreduce.h"
#include "src/inference/inferturbo_pregel.h"
#include "src/inference/reference_inference.h"
#include "src/inference/traditional_pipeline.h"
#include "src/nn/model.h"
#include "src/sampling/khop_sampler.h"
#include "src/tensor/kernels/kernel_config.h"
#include "src/tensor/ops.h"

namespace inferturbo {
namespace {

constexpr float kLogitTolerance = 2e-3f;

Dataset SkewedDataset() {
  PowerLawConfig config;
  config.num_nodes = 400;
  config.avg_degree = 6.0;
  config.skew = PowerLawSkew::kBoth;
  config.alpha = 1.6;
  config.seed = 99;
  return MakePowerLawDataset(config, /*feature_dim=*/12);
}

std::unique_ptr<GnnModel> MakeModelFor(const std::string& kind,
                                       const Graph& graph) {
  ModelConfig config;
  config.input_dim = graph.feature_dim();
  config.hidden_dim = 16;
  config.num_classes = graph.num_classes();
  config.num_layers = 2;
  config.heads = 4;
  config.seed = 5;
  Result<std::unique_ptr<GnnModel>> model = MakeModel(kind, config);
  EXPECT_TRUE(model.ok());
  return std::move(model).ValueOrDie();
}

struct Case {
  std::string model_kind;
  bool partial_gather;
  bool broadcast;
  bool shadow_nodes;
};

std::string CaseName(const testing::TestParamInfo<Case>& info) {
  const Case& c = info.param;
  std::string name = c.model_kind;
  name += c.partial_gather ? "_pg1" : "_pg0";
  name += c.broadcast ? "_bc1" : "_bc0";
  name += c.shadow_nodes ? "_sn1" : "_sn0";
  return name;
}

class BackendEquivalenceTest : public testing::TestWithParam<Case> {};

TEST_P(BackendEquivalenceTest, BothBackendsMatchReference) {
  const Case& c = GetParam();
  const Dataset dataset = SkewedDataset();
  const std::unique_ptr<GnnModel> model =
      MakeModelFor(c.model_kind, dataset.graph);

  const Tensor reference = FullGraphReferenceLogits(*model, dataset.graph);

  InferTurboOptions options;
  options.num_workers = 7;
  options.strategies.partial_gather = c.partial_gather;
  options.strategies.broadcast = c.broadcast;
  options.strategies.shadow_nodes = c.shadow_nodes;
  // Force a low hub threshold so broadcast/shadow paths actually fire
  // on this small graph.
  options.strategies.threshold_override =
      (c.broadcast || c.shadow_nodes) ? 8 : -1;

  Result<InferenceResult> pregel =
      RunInferTurboPregel(dataset.graph, *model, options);
  ASSERT_TRUE(pregel.ok()) << pregel.status().ToString();
  EXPECT_TRUE(pregel->logits.ApproxEquals(reference, kLogitTolerance))
      << "pregel logits diverged from reference";

  Result<InferenceResult> mapreduce =
      RunInferTurboMapReduce(dataset.graph, *model, options);
  ASSERT_TRUE(mapreduce.ok()) << mapreduce.status().ToString();
  EXPECT_TRUE(mapreduce->logits.ApproxEquals(reference, kLogitTolerance))
      << "mapreduce logits diverged from reference";

  EXPECT_EQ(pregel->predictions, ArgmaxRows(reference));
  EXPECT_EQ(mapreduce->predictions, ArgmaxRows(reference));
}

TEST_P(BackendEquivalenceTest, RepeatedRunsAreBitIdentical) {
  const Case& c = GetParam();
  const Dataset dataset = SkewedDataset();
  const std::unique_ptr<GnnModel> model =
      MakeModelFor(c.model_kind, dataset.graph);

  InferTurboOptions options;
  options.num_workers = 5;
  options.strategies.partial_gather = c.partial_gather;
  options.strategies.broadcast = c.broadcast;
  options.strategies.shadow_nodes = c.shadow_nodes;
  options.strategies.threshold_override =
      (c.broadcast || c.shadow_nodes) ? 8 : -1;

  Result<InferenceResult> a =
      RunInferTurboPregel(dataset.graph, *model, options);
  Result<InferenceResult> b =
      RunInferTurboPregel(dataset.graph, *model, options);
  ASSERT_TRUE(a.ok() && b.ok());
  // Bit-identical, not approximately equal: the consistency guarantee.
  EXPECT_TRUE(a->logits.ApproxEquals(b->logits, 0.0f));

  Result<InferenceResult> c1 =
      RunInferTurboMapReduce(dataset.graph, *model, options);
  Result<InferenceResult> c2 =
      RunInferTurboMapReduce(dataset.graph, *model, options);
  ASSERT_TRUE(c1.ok() && c2.ok());
  EXPECT_TRUE(c1->logits.ApproxEquals(c2->logits, 0.0f));
}

TEST_P(BackendEquivalenceTest, LogitsAreBitIdenticalAcrossThreadCounts) {
  // The kernel-backed data plane must not let parallelism into the
  // numbers: for every strategy combination, both backends produce the
  // SAME BYTES at 1 thread and at N threads.
  const Case& c = GetParam();
  const Dataset dataset = SkewedDataset();
  const std::unique_ptr<GnnModel> model =
      MakeModelFor(c.model_kind, dataset.graph);

  InferTurboOptions options;
  options.num_workers = 5;
  options.strategies.partial_gather = c.partial_gather;
  options.strategies.broadcast = c.broadcast;
  options.strategies.shadow_nodes = c.shadow_nodes;
  options.strategies.threshold_override =
      (c.broadcast || c.shadow_nodes) ? 8 : -1;

  const kernels::KernelConfig saved = kernels::GetKernelConfig();
  auto run_at = [&](int threads) {
    kernels::KernelConfig config = saved;
    config.max_threads = threads;
    // Force the parallel split even on this small graph's tiny shapes.
    config.min_parallel_work = threads > 1 ? 1 : (std::int64_t{1} << 62);
    kernels::SetKernelConfig(config);
    Result<InferenceResult> pregel =
        RunInferTurboPregel(dataset.graph, *model, options);
    Result<InferenceResult> mapreduce =
        RunInferTurboMapReduce(dataset.graph, *model, options);
    EXPECT_TRUE(pregel.ok() && mapreduce.ok());
    return std::make_pair(std::move(pregel->logits),
                          std::move(mapreduce->logits));
  };
  const auto serial = run_at(1);
  const auto parallel = run_at(4);
  kernels::SetKernelConfig(saved);

  EXPECT_TRUE(serial.first.ApproxEquals(parallel.first, 0.0f))
      << "pregel logits changed with thread count";
  EXPECT_TRUE(serial.second.ApproxEquals(parallel.second, 0.0f))
      << "mapreduce logits changed with thread count";
}

INSTANTIATE_TEST_SUITE_P(
    AllModelsAndStrategies, BackendEquivalenceTest,
    testing::Values(
        Case{"sage", false, false, false}, Case{"sage", true, false, false},
        Case{"sage", false, true, false}, Case{"sage", false, false, true},
        Case{"sage", true, true, false}, Case{"sage", true, false, true},
        Case{"sage", true, true, true}, Case{"gcn", false, false, false},
        Case{"gcn", true, false, false}, Case{"gcn", true, true, true},
        Case{"gat", false, false, false}, Case{"gat", false, true, false},
        Case{"gat", false, false, true}, Case{"gat", false, true, true},
        Case{"gin", false, false, false}, Case{"gin", true, false, false},
        Case{"gin", true, true, true},
        Case{"pool_sage", false, false, false},
        Case{"pool_sage", true, false, false},
        Case{"pool_sage", true, true, true}),
    CaseName);

TEST(TrainingInferenceUnificationTest,
     KHopTrainingForwardMatchesFullGraphInference) {
  const Dataset dataset = SkewedDataset();
  for (const std::string kind :
       {"sage", "gcn", "gat", "gin", "pool_sage"}) {
    const std::unique_ptr<GnnModel> model =
        MakeModelFor(kind, dataset.graph);
    const Tensor reference = FullGraphReferenceLogits(*model, dataset.graph);

    // A handful of targets, full-fan-out 2-hop neighborhoods.
    const std::vector<NodeId> targets = {0, 17, 101, 399};
    KHopSampler sampler(&dataset.graph);
    KHopOptions khop;
    khop.hops = 2;
    const Subgraph sub = sampler.Sample(targets, khop, nullptr);

    // Training-side computation flow on the subgraph block.
    ag::VarPtr h = ag::Constant(sub.features);
    for (std::int64_t l = 0; l < model->num_layers(); ++l) {
      h = model->layer(l).ForwardAg(h, sub.src_local, sub.dst_local,
                                    sub.num_nodes(), nullptr);
    }
    const Tensor logits = model->PredictLogits(
        GatherRows(h->value, std::vector<std::int64_t>{0, 1, 2, 3}));

    for (std::size_t i = 0; i < targets.size(); ++i) {
      for (std::int64_t j = 0; j < logits.cols(); ++j) {
        EXPECT_NEAR(logits.At(static_cast<std::int64_t>(i), j),
                    reference.At(targets[i], j), kLogitTolerance)
            << kind << " target " << targets[i] << " class " << j;
      }
    }
  }
}

TEST(TraditionalPipelineEquivalenceTest, FullFanoutMatchesReference) {
  const Dataset dataset = SkewedDataset();
  const std::unique_ptr<GnnModel> model =
      MakeModelFor("sage", dataset.graph);
  const Tensor reference = FullGraphReferenceLogits(*model, dataset.graph);

  TraditionalPipelineOptions options;
  options.num_workers = 4;
  options.batch_size = 16;
  Result<InferenceResult> result =
      RunTraditionalPipeline(dataset.graph, *model, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->logits.ApproxEquals(reference, kLogitTolerance));
}

}  // namespace
}  // namespace inferturbo
