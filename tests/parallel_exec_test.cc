// The static-ownership scheduler's contracts: fixed task→thread
// mapping, the RangeBegin/RangeOwner partition algebra, serial nested
// launches, exact task counts in ParallelForChunksFixed (even beyond
// the thread count), and barrier correctness under back-to-back
// launches (the tsan job runs this binary to vet the spin-then-park
// epoch protocol). An explicit StaticExecutor(4) makes the multi-thread
// paths real even on single-core hosts; the env override below sizes
// the Default() executor to 4 for the same reason, so the config-driven
// kernels exercise genuine cross-thread launches here regardless of the
// machine.
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/parallel_exec.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/tensor/kernels/kernel_config.h"
#include "src/tensor/kernels/kernels.h"
#include "src/tensor/kernels/reference.h"

namespace inferturbo {
namespace {

// Must run before the first StaticExecutor::Default() call in this
// process: a static initializer beats main(), and nothing touches the
// executor before then in a test binary.
const bool g_exec_env = [] {
  ::setenv("INFERTURBO_EXEC_THREADS", "4", /*overwrite=*/1);
  return true;
}();

TEST(RangePartition, BoundariesCoverEverythingExactlyOnce) {
  for (const std::int64_t n : {0, 1, 2, 7, 10, 16, 1000, 4097}) {
    for (const std::int64_t tasks : {1, 2, 3, 4, 7, 8, 16}) {
      if (tasks > n && n > 0) continue;
      std::int64_t covered = 0;
      for (std::int64_t t = 0; t < tasks; ++t) {
        const std::int64_t begin = kernels::RangeBegin(n, t, tasks);
        const std::int64_t end = kernels::RangeBegin(n, t + 1, tasks);
        ASSERT_LE(begin, end);
        covered += end - begin;
      }
      EXPECT_EQ(covered, n) << "n=" << n << " tasks=" << tasks;
      EXPECT_EQ(kernels::RangeBegin(n, 0, tasks), 0);
      EXPECT_EQ(kernels::RangeBegin(n, tasks, tasks), n);
    }
  }
}

TEST(RangePartition, OwnerIsTheClosedFormInverse) {
  for (const std::int64_t n : {1, 2, 7, 10, 16, 1000, 4097}) {
    for (const std::int64_t tasks : {1, 2, 3, 4, 7, 8}) {
      if (tasks > n) continue;
      for (std::int64_t t = 0; t < tasks; ++t) {
        const std::int64_t begin = kernels::RangeBegin(n, t, tasks);
        const std::int64_t end = kernels::RangeBegin(n, t + 1, tasks);
        for (std::int64_t i = begin; i < end; ++i) {
          ASSERT_EQ(kernels::RangeOwner(i, n, tasks), t)
              << "i=" << i << " n=" << n << " tasks=" << tasks;
        }
      }
    }
  }
}

TEST(StaticExecutorTest, RunsEveryTaskExactlyOnce) {
  StaticExecutor exec(4);
  EXPECT_EQ(exec.num_threads(), 4);
  for (const int tasks : {1, 2, 3, 4, 5, 9, 64}) {
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(tasks));
    for (auto& h : hits) h.store(0);
    exec.RunTasks(tasks, [&](WorkerSlot&, int t) {
      hits[static_cast<std::size_t>(t)].fetch_add(1);
    });
    for (int t = 0; t < tasks; ++t) {
      EXPECT_EQ(hits[static_cast<std::size_t>(t)].load(), 1)
          << "task " << t << " of " << tasks;
    }
  }
}

TEST(StaticExecutorTest, TaskToThreadMapIsStatic) {
  StaticExecutor exec(4);
  constexpr int kTasks = 16;
  // Record the slot thread_id each task saw: task t must always land on
  // thread t mod 4, launch after launch.
  for (int round = 0; round < 8; ++round) {
    std::vector<int> thread_of_task(kTasks, -1);
    exec.RunTasks(kTasks, [&](WorkerSlot& slot, int t) {
      thread_of_task[static_cast<std::size_t>(t)] = slot.thread_id;
    });
    for (int t = 0; t < kTasks; ++t) {
      EXPECT_EQ(thread_of_task[static_cast<std::size_t>(t)], t % 4)
          << "task " << t << " round " << round;
    }
  }
}

TEST(StaticExecutorTest, BackToBackLaunchesKeepTheBarrierHonest) {
  // Rapid-fire launches with work of wildly different sizes: a worker
  // still in the previous epoch, or one double-running a task, breaks
  // the sum. (This is the stress body the tsan CI job leans on.)
  StaticExecutor exec(4);
  Rng rng(7);
  for (int round = 0; round < 500; ++round) {
    const int tasks =
        1 + static_cast<int>(rng.NextBounded(9));  // 1..9, above and below T
    std::atomic<std::int64_t> sum{0};
    exec.RunTasks(tasks, [&](WorkerSlot&, int t) {
      std::int64_t local = 0;
      for (int i = 0; i <= t; ++i) local += i + 1;
      sum.fetch_add(local);
    });
    std::int64_t want = 0;
    for (int t = 0; t < tasks; ++t) {
      for (int i = 0; i <= t; ++i) want += i + 1;
    }
    ASSERT_EQ(sum.load(), want) << "round " << round;
  }
}

TEST(StaticExecutorTest, NestedLaunchesRunInlineSerially) {
  StaticExecutor exec(4);
  std::atomic<int> inner_runs{0};
  std::atomic<bool> saw_worker_flag{false};
  exec.RunTasks(4, [&](WorkerSlot&, int) {
    EXPECT_TRUE(StaticExecutor::InWorker() || !saw_worker_flag.load());
    // A nested launch from inside a task must not deadlock and must run
    // all its tasks (inline, on this thread).
    StaticExecutor::Default().RunTasks(
        3, [&](WorkerSlot&, int) { inner_runs.fetch_add(1); });
    saw_worker_flag.store(true);
  });
  EXPECT_EQ(inner_runs.load(), 4 * 3);
}

TEST(StaticExecutorTest, WorkerSlotsAreDistinctAndPersistent) {
  StaticExecutor exec(4);
  // Each task writes a marker into its slot scratch; distinct threads
  // must see distinct slots, and scratch persists across launches.
  exec.RunTasks(4, [&](WorkerSlot& slot, int t) {
    slot.scratch.assign(1, static_cast<float>(t));
  });
  std::vector<float> seen(4, -1.0f);
  exec.RunTasks(4, [&](WorkerSlot& slot, int t) {
    ASSERT_EQ(slot.thread_id, t % 4);
    seen[static_cast<std::size_t>(t)] = slot.scratch.at(0);
  });
  for (int t = 0; t < 4; ++t) {
    EXPECT_EQ(seen[static_cast<std::size_t>(t)], static_cast<float>(t));
  }
}

TEST(StaticExecutorTest, DefaultHonorsEnvOverride) {
  // The static initializer above set INFERTURBO_EXEC_THREADS=4 before
  // anything could instantiate the default executor.
  EXPECT_EQ(StaticExecutor::Default().num_threads(), 4);
}

class ChunkApiTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = kernels::GetKernelConfig(); }
  void TearDown() override { kernels::SetKernelConfig(saved_); }

  void UseThreads(int max_threads, bool use_static) {
    kernels::KernelConfig config;
    config.max_threads = max_threads;
    config.min_parallel_work = 1;
    config.use_static_executor = use_static;
    kernels::SetKernelConfig(config);
  }

 private:
  kernels::KernelConfig saved_;
};

TEST_F(ChunkApiTest, FixedTaskCountIsHonoredBeyondThreads) {
  for (const bool use_static : {true, false}) {
    UseThreads(4, use_static);
    // 11 tasks on a 4-thread scheduler: every task index must still be
    // delivered exactly once with the exact partition boundaries —
    // owner-bucketed data built for 11 tasks depends on it.
    constexpr int kTasks = 11;
    constexpr std::int64_t kN = 103;
    std::vector<std::atomic<int>> hits(kTasks);
    for (auto& h : hits) h.store(0);
    std::vector<std::int64_t> begins(kTasks, -1), ends(kTasks, -1);
    kernels::ParallelForChunksFixed(
        kN, kTasks, [&](const kernels::RangeChunk& chunk) {
          hits[static_cast<std::size_t>(chunk.task)].fetch_add(1);
          begins[static_cast<std::size_t>(chunk.task)] = chunk.begin;
          ends[static_cast<std::size_t>(chunk.task)] = chunk.end;
          ASSERT_EQ(chunk.num_tasks, kTasks);
          ASSERT_NE(chunk.slot, nullptr);
        });
    for (int t = 0; t < kTasks; ++t) {
      EXPECT_EQ(hits[static_cast<std::size_t>(t)].load(), 1);
      EXPECT_EQ(begins[static_cast<std::size_t>(t)],
                kernels::RangeBegin(kN, t, kTasks));
      EXPECT_EQ(ends[static_cast<std::size_t>(t)],
                kernels::RangeBegin(kN, t + 1, kTasks));
    }
  }
}

TEST_F(ChunkApiTest, PlanNeverExceedsSchedulerThreads) {
  UseThreads(64, /*use_static=*/true);
  // Asking for 64 threads cannot plan more concurrency than the
  // executor has (4 here): excess tasks would serialize with pure
  // partitioning overhead.
  EXPECT_LE(kernels::PlanParallelTasks(1 << 20, 1 << 10),
            StaticExecutor::Default().num_threads());
  UseThreads(2, /*use_static=*/true);
  EXPECT_LE(kernels::PlanParallelTasks(1 << 20, 1 << 10), 2);
}

TEST_F(ChunkApiTest, ThreadPoolRangeOverloadCoversEverythingOnce) {
  ThreadPool pool(3);
  for (const std::size_t n : {0u, 1u, 5u, 64u, 1000u}) {
    for (const std::size_t max_tasks : {1u, 2u, 3u, 8u}) {
      std::vector<std::atomic<int>> hits(n);
      for (auto& h : hits) h.store(0);
      pool.ParallelForRanges(n, max_tasks,
                             [&](std::size_t begin, std::size_t end) {
                               for (std::size_t i = begin; i < end; ++i) {
                                 hits[i].fetch_add(1);
                               }
                             });
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "n=" << n << " tasks=" << max_tasks;
      }
    }
  }
}

// With the Default() executor sized to 4 by the env override, the
// config-driven kernels genuinely fan out here even on a 1-core host.
// Bit-identity across schedulers and thread counts is the contract that
// makes the scheduling knobs safe to flip in production.
TEST_F(ChunkApiTest, KernelsBitIdenticalAcrossSchedulersAndThreadCounts) {
  Rng rng(11);
  const Tensor a = Tensor::RandomNormal(37, 29, 1.0f, &rng);
  const Tensor b = Tensor::RandomNormal(29, 41, 1.0f, &rng);
  const Tensor want_mm = kernels::reference::MatMul(a, b);

  const Tensor values = Tensor::RandomNormal(257, 9, 1.0f, &rng);
  std::vector<std::int64_t> ids(257);
  for (auto& id : ids) {
    id = static_cast<std::int64_t>(rng.NextBounded(31));
  }
  const Tensor want_seg = kernels::reference::SegmentSum(values, ids, 31);

  Tensor want_scatter(31, 9);
  std::span<const std::int64_t> ids_span(ids);
  {
    std::vector<std::int64_t> clipped(ids);
    kernels::reference::ScatterAddRows(&want_scatter, clipped, values);
  }

  for (const bool use_static : {true, false}) {
    for (const int threads : {1, 2, 3, 4}) {
      UseThreads(threads, use_static);
      const Tensor got_mm = kernels::MatMul(a, b);
      ASSERT_EQ(0, std::memcmp(want_mm.data(), got_mm.data(),
                               want_mm.ByteSize()))
          << "matmul threads=" << threads << " static=" << use_static;
      const Tensor got_seg = kernels::SegmentSum(values, ids, 31);
      ASSERT_EQ(0, std::memcmp(want_seg.data(), got_seg.data(),
                               want_seg.ByteSize()))
          << "segment_sum threads=" << threads << " static=" << use_static;
      Tensor got_scatter(31, 9);
      kernels::ScatterAddRows(&got_scatter, ids_span, values);
      ASSERT_EQ(0, std::memcmp(want_scatter.data(), got_scatter.data(),
                               want_scatter.ByteSize()))
          << "scatter_add threads=" << threads << " static=" << use_static;
    }
  }
}

}  // namespace
}  // namespace inferturbo
