#include "src/inference/strategies.h"

#include <gtest/gtest.h>

#include <map>

#include "src/graph/datasets.h"
#include "src/graph/graph_builder.h"

namespace inferturbo {
namespace {

TEST(StrategyConfigTest, ThresholdUsesHeuristicOrOverride) {
  StrategyConfig config;
  EXPECT_EQ(config.HubThreshold(1'000'000, 100), 1000);
  config.lambda = 0.2;
  EXPECT_EQ(config.HubThreshold(1'000'000, 100), 2000);
  config.threshold_override = 37;
  EXPECT_EQ(config.HubThreshold(1'000'000, 100), 37);
}

Graph MakeStarGraph(std::int64_t spokes) {
  // Node 0 has an out-edge to every spoke; spokes point back at node 1.
  GraphBuilder builder(spokes + 2);
  for (std::int64_t i = 0; i < spokes; ++i) {
    builder.AddEdge(0, i + 2);
    builder.AddEdge(i + 2, 1);
  }
  builder.SetNodeFeatures(Tensor::Full(spokes + 2, 3, 1.0f));
  std::vector<std::int64_t> labels(static_cast<std::size_t>(spokes + 2), 0);
  labels[0] = 1;
  builder.SetLabels(std::move(labels), 2);
  return std::move(builder).Finish().ValueOrDie();
}

TEST(ShadowNodesTest, SplitsHubIntoMirrors) {
  const Graph g = MakeStarGraph(10);
  const Result<ShadowGraph> shadow = ApplyShadowNodes(g, 4);
  ASSERT_TRUE(shadow.ok());
  // Out-degree 10 with threshold 4 -> ceil(10/4) = 3 groups -> 2 new
  // mirrors.
  EXPECT_EQ(shadow->num_mirrors, 2);
  EXPECT_EQ(shadow->graph.num_nodes(), g.num_nodes() + 2);
  // Original keeps id 0 and its origin maps to itself; mirrors map
  // back.
  EXPECT_EQ(shadow->origin[0], 0);
  EXPECT_EQ(shadow->origin[static_cast<std::size_t>(g.num_nodes())], 0);
  EXPECT_EQ(shadow->origin[static_cast<std::size_t>(g.num_nodes()) + 1], 0);
}

TEST(ShadowNodesTest, OutEdgesAreEvenlySplitAndPreserved) {
  const Graph g = MakeStarGraph(10);
  const ShadowGraph shadow = ApplyShadowNodes(g, 4).ValueOrDie();
  // Union of the hub mirrors' out-destinations == original's.
  std::map<NodeId, int> dst_count;
  std::int64_t max_group = 0;
  for (NodeId v = 0; v < shadow.graph.num_nodes(); ++v) {
    if (shadow.origin[static_cast<std::size_t>(v)] != 0) continue;
    max_group = std::max(max_group, shadow.graph.OutDegree(v));
    for (EdgeId e : shadow.graph.OutEdges(v)) {
      ++dst_count[shadow.origin[static_cast<std::size_t>(
          shadow.graph.EdgeDst(e))]];
    }
  }
  EXPECT_EQ(dst_count.size(), 10u);
  for (const auto& [dst, count] : dst_count) EXPECT_EQ(count, 1);
  EXPECT_LE(max_group, 4);
}

TEST(ShadowNodesTest, MirrorsReceiveAllInEdges) {
  // Make node 1 a hub *receiver*: node 1 also has high out-degree so it
  // gets mirrored, and every mirror must keep the full in-edge set.
  GraphBuilder builder(12);
  for (std::int64_t i = 2; i < 12; ++i) {
    builder.AddEdge(1, i);  // node 1 out-hub
    builder.AddEdge(i, 1);  // node 1 also receives from everyone
  }
  builder.SetNodeFeatures(Tensor::Full(12, 2, 1.0f));
  const Graph g = std::move(builder).Finish().ValueOrDie();
  const ShadowGraph shadow = ApplyShadowNodes(g, 3).ValueOrDie();
  ASSERT_GT(shadow.num_mirrors, 0);
  for (NodeId v = 0; v < shadow.graph.num_nodes(); ++v) {
    if (shadow.origin[static_cast<std::size_t>(v)] != 1) continue;
    EXPECT_EQ(shadow.graph.InDegree(v), g.InDegree(1))
        << "mirror " << v << " lost in-edges";
  }
}

TEST(ShadowNodesTest, NoHubsMeansNoMirrors) {
  const Dataset d = MakeProductsLike(0.02);
  const std::int64_t huge_threshold = d.graph.num_edges();
  const ShadowGraph shadow =
      ApplyShadowNodes(d.graph, huge_threshold).ValueOrDie();
  EXPECT_EQ(shadow.num_mirrors, 0);
  EXPECT_EQ(shadow.graph.num_nodes(), d.graph.num_nodes());
  EXPECT_EQ(shadow.graph.num_edges(), d.graph.num_edges());
}

TEST(ShadowNodesTest, MirrorsCopyFeaturesAndLabels) {
  const Graph g = MakeStarGraph(10);
  const ShadowGraph shadow = ApplyShadowNodes(g, 4).ValueOrDie();
  for (NodeId v = g.num_nodes(); v < shadow.graph.num_nodes(); ++v) {
    const NodeId o = shadow.origin[static_cast<std::size_t>(v)];
    for (std::int64_t j = 0; j < g.feature_dim(); ++j) {
      EXPECT_EQ(shadow.graph.node_features().At(v, j),
                g.node_features().At(o, j));
    }
    EXPECT_EQ(shadow.graph.labels()[static_cast<std::size_t>(v)],
              g.labels()[static_cast<std::size_t>(o)]);
  }
}

TEST(ShadowNodesTest, RejectsNonPositiveThreshold) {
  const Graph g = MakeStarGraph(4);
  EXPECT_FALSE(ApplyShadowNodes(g, 0).ok());
}

}  // namespace
}  // namespace inferturbo
