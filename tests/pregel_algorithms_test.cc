#include "src/pregel/algorithms.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <queue>

#include "src/graph/datasets.h"
#include "src/graph/graph_builder.h"

namespace inferturbo {
namespace {

PregelAlgorithmOptions FastOptions() {
  PregelAlgorithmOptions options;
  options.num_workers = 4;
  options.max_iterations = 50;
  return options;
}

TEST(PageRankTest, UniformOnRegularRing) {
  // A directed ring is 1-regular: PageRank must be uniform.
  const std::int64_t n = 20;
  GraphBuilder builder(n);
  for (NodeId v = 0; v < n; ++v) builder.AddEdge(v, (v + 1) % n);
  builder.SetNodeFeatures(Tensor(n, 1));
  const Graph g = std::move(builder).Finish().ValueOrDie();
  const std::vector<double> rank = PageRank(g, FastOptions());
  for (double r : rank) EXPECT_NEAR(r, 1.0 / static_cast<double>(n), 1e-4);
}

TEST(PageRankTest, SinkAttractsMass) {
  // Star into node 0: node 0 must outrank the spokes.
  const std::int64_t n = 11;
  GraphBuilder builder(n);
  for (NodeId v = 1; v < n; ++v) {
    builder.AddEdge(v, 0);
    builder.AddEdge(0, v);  // keep 0 non-dangling
  }
  builder.SetNodeFeatures(Tensor(n, 1));
  const Graph g = std::move(builder).Finish().ValueOrDie();
  const std::vector<double> rank = PageRank(g, FastOptions());
  for (NodeId v = 1; v < n; ++v) EXPECT_GT(rank[0], rank[static_cast<
                                               std::size_t>(v)]);
}

TEST(PageRankTest, MatchesSingleMachineIteration) {
  const Dataset d = MakeProductsLike(0.02, /*seed=*/8);
  const Graph& g = d.graph;
  PregelAlgorithmOptions options = FastOptions();
  options.max_iterations = 20;
  const std::vector<double> distributed = PageRank(g, options);

  // Reference: same damped iteration, single machine. Note: nodes with
  // zero out-degree leak mass in both implementations identically.
  std::vector<double> rank(static_cast<std::size_t>(g.num_nodes()),
                           1.0 / static_cast<double>(g.num_nodes()));
  for (int iter = 0; iter < 19; ++iter) {
    std::vector<double> next(static_cast<std::size_t>(g.num_nodes()),
                             (1.0 - 0.85) /
                                 static_cast<double>(g.num_nodes()));
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const std::int64_t degree = g.OutDegree(v);
      if (degree == 0) continue;
      const double share =
          rank[static_cast<std::size_t>(v)] / static_cast<double>(degree);
      for (EdgeId e : g.OutEdges(v)) {
        next[static_cast<std::size_t>(g.EdgeDst(e))] += 0.85 * share;
      }
    }
    rank = std::move(next);
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(distributed[static_cast<std::size_t>(v)],
                rank[static_cast<std::size_t>(v)], 1e-3);
  }
}

TEST(ShortestPathsTest, MatchesBfs) {
  const Dataset d = MakeProductsLike(0.02, /*seed=*/9);
  const Graph& g = d.graph;
  const NodeId source = 3;
  const std::vector<std::int64_t> distributed =
      ShortestPaths(g, source, FastOptions());

  std::vector<std::int64_t> expected(
      static_cast<std::size_t>(g.num_nodes()), -1);
  std::queue<NodeId> queue;
  expected[static_cast<std::size_t>(source)] = 0;
  queue.push(source);
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop();
    for (EdgeId e : g.OutEdges(v)) {
      const NodeId u = g.EdgeDst(e);
      if (expected[static_cast<std::size_t>(u)] == -1) {
        expected[static_cast<std::size_t>(u)] =
            expected[static_cast<std::size_t>(v)] + 1;
        queue.push(u);
      }
    }
  }
  EXPECT_EQ(distributed, expected);
}

TEST(ShortestPathsTest, UnreachableNodesAreMinusOne) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);  // 2, 3 unreachable from 0
  builder.AddEdge(3, 2);
  builder.SetNodeFeatures(Tensor(4, 1));
  const Graph g = std::move(builder).Finish().ValueOrDie();
  const std::vector<std::int64_t> distance =
      ShortestPaths(g, 0, FastOptions());
  EXPECT_EQ(distance, (std::vector<std::int64_t>{0, 1, -1, -1}));
}

TEST(ConnectedComponentsTest, TwoIslands) {
  GraphBuilder builder(6);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(4, 3);  // second island {3, 4, 5}, only via in-edges
  builder.AddEdge(5, 4);
  builder.SetNodeFeatures(Tensor(6, 1));
  const Graph g = std::move(builder).Finish().ValueOrDie();
  const std::vector<NodeId> label = ConnectedComponents(g, FastOptions());
  EXPECT_EQ(label[0], 0);
  EXPECT_EQ(label[1], 0);
  EXPECT_EQ(label[2], 0);
  EXPECT_EQ(label[3], 3);
  EXPECT_EQ(label[4], 3);
  EXPECT_EQ(label[5], 3);
}

TEST(ConnectedComponentsTest, SinglePassOnDenseGraph) {
  const Dataset d = MakeProductsLike(0.02, /*seed=*/10);
  const std::vector<NodeId> label =
      ConnectedComponents(d.graph, FastOptions());
  // A planted homophilous graph at this density is (almost surely)
  // one giant component: every node should share label with node 0's
  // component except possibly a handful of isolated stragglers.
  std::int64_t majority = 0;
  for (NodeId v : label) majority += v == label[0];
  EXPECT_GT(majority, d.graph.num_nodes() * 9 / 10);
}

TEST(AlgorithmsTest, MetricsAreReported) {
  const Dataset d = MakeProductsLike(0.02, /*seed=*/11);
  JobMetrics metrics;
  (void)PageRank(d.graph, FastOptions(), 0.85, &metrics);
  EXPECT_EQ(metrics.workers.size(), 4u);
  EXPECT_GT(metrics.num_steps(), 1);
  EXPECT_GT(metrics.TotalBytesOut(), 0u);
  // The PageRank combiner pre-sums contributions: each destination
  // receives at most one record per source worker per step.
  const std::vector<WorkerStepMetrics> totals = metrics.PerWorkerTotals();
  std::int64_t records_in = 0;
  for (const auto& t : totals) records_in += t.records_in;
  EXPECT_LT(records_in, metrics.num_steps() * d.graph.num_edges());
}

}  // namespace
}  // namespace inferturbo
