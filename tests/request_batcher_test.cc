#include "src/serving/request_batcher.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

namespace inferturbo {
namespace {

/// Execute callback that answers every query with a 1x1 tensor holding
/// the sum of its node ids, and records per-batch sizes.
class EchoExecutor {
 public:
  RequestBatcher::ExecuteFn fn() {
    return [this](const std::vector<BatchedQuery*>& batch) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        batch_sizes_.push_back(static_cast<std::int64_t>(batch.size()));
      }
      for (BatchedQuery* query : batch) {
        QueryResponse response;
        response.logits = Tensor(1, 1);
        float sum = 0.0f;
        for (NodeId v : query->nodes) sum += static_cast<float>(v);
        response.logits.At(0, 0) = sum;
        query->response = std::move(response);
      }
    };
  }

  std::vector<std::int64_t> batch_sizes() {
    std::lock_guard<std::mutex> lock(mu_);
    return batch_sizes_;
  }

 private:
  std::mutex mu_;
  std::vector<std::int64_t> batch_sizes_;
};

TEST(RequestBatcherTest, SingleQueryExecutesImmediatelyWithZeroWindow) {
  EchoExecutor executor;
  RequestBatcher::Options options;
  options.window_seconds = 0.0;
  RequestBatcher batcher(executor.fn(), options);
  const Result<QueryResponse> response = batcher.Submit({3, 4});
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->logits.At(0, 0), 7.0f);
  EXPECT_EQ(batcher.batches_executed(), 1);
  EXPECT_EQ(batcher.queries_submitted(), 1);
}

TEST(RequestBatcherTest, EveryConcurrentQueryGetsItsOwnAnswer) {
  EchoExecutor executor;
  RequestBatcher::Options options;
  options.window_seconds = 0.002;
  options.max_batch = 8;
  RequestBatcher batcher(executor.fn(), options);

  constexpr int kThreads = 16;
  constexpr int kPerThread = 25;
  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const NodeId v = static_cast<NodeId>(t * 1000 + i);
        const Result<QueryResponse> response = batcher.Submit({v});
        if (!response.ok() ||
            response->logits.At(0, 0) != static_cast<float>(v)) {
          wrong.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(batcher.queries_submitted(), kThreads * kPerThread);
  // Coalescing must actually happen: strictly fewer batches than
  // queries (with 16 threads racing a 2ms window this is overwhelmingly
  // slack), and no batch may exceed the cap.
  const std::vector<std::int64_t> sizes = executor.batch_sizes();
  std::int64_t total = 0;
  for (std::int64_t size : sizes) {
    EXPECT_GE(size, 1);
    EXPECT_LE(size, options.max_batch);
    total += size;
  }
  EXPECT_EQ(total, kThreads * kPerThread);
  EXPECT_LT(static_cast<std::int64_t>(sizes.size()),
            static_cast<std::int64_t>(kThreads) * kPerThread);
  EXPECT_EQ(batcher.batches_executed(),
            static_cast<std::int64_t>(sizes.size()));
}

TEST(RequestBatcherTest, BacklogBeyondMaxBatchDrainsAcrossBatches) {
  // Stall the first batch inside execute so a backlog larger than
  // max_batch piles up, then check everyone still gets served.
  std::atomic<bool> release{false};
  std::atomic<int> executed{0};
  RequestBatcher::Options options;
  options.window_seconds = 0.0;
  options.max_batch = 4;
  RequestBatcher batcher(
      [&](const std::vector<BatchedQuery*>& batch) {
        while (!release.load()) std::this_thread::yield();
        for (BatchedQuery* query : batch) {
          QueryResponse response;
          response.logits = Tensor(1, 1);
          response.logits.At(0, 0) = static_cast<float>(query->nodes[0]);
          query->response = std::move(response);
          executed.fetch_add(1);
        }
      },
      options);

  constexpr int kQueries = 19;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  threads.reserve(kQueries);
  for (int i = 0; i < kQueries; ++i) {
    threads.emplace_back([&, i] {
      const Result<QueryResponse> response =
          batcher.Submit({static_cast<NodeId>(i)});
      if (response.ok() &&
          response->logits.At(0, 0) == static_cast<float>(i)) {
        ok.fetch_add(1);
      }
    });
  }
  // Let the backlog build, then open the gate.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release.store(true);
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(ok.load(), kQueries);
  EXPECT_EQ(executed.load(), kQueries);
}

TEST(RequestBatcherTest, ExecutorErrorsPropagateToTheRightQuery) {
  // The executor fails odd node ids only; even ids must stay fine.
  RequestBatcher::Options options;
  options.window_seconds = 0.001;
  options.max_batch = 16;
  RequestBatcher batcher(
      [](const std::vector<BatchedQuery*>& batch) {
        for (BatchedQuery* query : batch) {
          if (query->nodes[0] % 2 == 1) {
            query->response = Status::InvalidArgument("odd id");
          } else {
            QueryResponse response;
            response.logits = Tensor(1, 1);
            query->response = std::move(response);
          }
        }
      },
      options);

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 10; ++i) {
    threads.emplace_back([&, i] {
      const Result<QueryResponse> response =
          batcher.Submit({static_cast<NodeId>(i)});
      const bool want_ok = i % 2 == 0;
      if (response.ok() != want_ok) mismatches.fetch_add(1);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace inferturbo
