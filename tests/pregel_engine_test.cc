// The Pregel engine is model-agnostic; these tests drive it with
// classic graph-processing programs (PageRank) and probe the
// mechanisms InferTurbo builds on: combiners, the broadcast board,
// halting, and byte accounting.
#include "src/pregel/pregel_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <mutex>

#include "src/graph/datasets.h"
#include "src/graph/graph_builder.h"

namespace inferturbo {
namespace {

Graph MakeChain(std::int64_t n) {
  GraphBuilder builder(n);
  for (std::int64_t i = 0; i + 1 < n; ++i) builder.AddEdge(i, i + 1);
  builder.SetNodeFeatures(Tensor(n, 1));
  return std::move(builder).Finish().ValueOrDie();
}

TEST(PregelEngineTest, MessagesFlowAlongChain) {
  // Forward a token along 0 -> 1 -> 2 -> 3; after 4 supersteps node 3
  // holds the value.
  const Graph g = MakeChain(4);
  HashPartitioner partitioner(3);
  const PartitionAssignment assignment = AssignPartitions(4, partitioner);
  PregelEngine::Options options;
  options.num_workers = 3;
  options.max_supersteps = 4;
  PregelEngine engine(options, partitioner);

  std::vector<float> value(4, 0.0f);
  value[0] = 42.0f;
  std::mutex mu;

  engine.Run([&](PregelContext* ctx) {
    const auto& mine =
        assignment.members[static_cast<std::size_t>(ctx->worker_id())];
    // Deliver incoming tokens.
    for (const MessageBatch& b : ctx->inbox()) {
      for (std::int64_t i = 0; i < b.size(); ++i) {
        std::lock_guard<std::mutex> lock(mu);
        value[static_cast<std::size_t>(b.dst[static_cast<std::size_t>(i)])] =
            b.payload.At(i, 0);
      }
    }
    // Pass tokens on.
    MessageBatch out;
    for (NodeId v : mine) {
      float current;
      {
        std::lock_guard<std::mutex> lock(mu);
        current = value[static_cast<std::size_t>(v)];
      }
      if (current == 0.0f) continue;
      for (EdgeId e : g.OutEdges(v)) {
        out.Push(g.EdgeDst(e), v, &current, 1);
      }
    }
    ctx->SendBatch(std::move(out));
  });
  EXPECT_EQ(value[3], 42.0f);
}

TEST(PregelEngineTest, PageRankConverges) {
  const Dataset d = MakeProductsLike(0.02, /*seed=*/3);
  const Graph& g = d.graph;
  const std::int64_t n = g.num_nodes();
  const std::int64_t workers = 4;
  HashPartitioner partitioner(workers);
  const PartitionAssignment assignment = AssignPartitions(n, partitioner);

  std::vector<double> rank(static_cast<std::size_t>(n), 1.0 /
                                                            static_cast<double>(n));
  std::vector<double> incoming(static_cast<std::size_t>(n), 0.0);
  std::mutex mu;

  PregelEngine::Options options;
  options.num_workers = workers;
  options.max_supersteps = 25;
  PregelEngine engine(options, partitioner);

  const double damping = 0.85;
  engine.Run([&](PregelContext* ctx) {
    const auto& mine =
        assignment.members[static_cast<std::size_t>(ctx->worker_id())];
    // Fold incoming contributions, update ranks.
    if (ctx->superstep() > 0) {
      std::lock_guard<std::mutex> lock(mu);
      for (const MessageBatch& b : ctx->inbox()) {
        for (std::int64_t i = 0; i < b.size(); ++i) {
          incoming[static_cast<std::size_t>(
              b.dst[static_cast<std::size_t>(i)])] += b.payload.At(i, 0);
        }
      }
      for (NodeId v : mine) {
        rank[static_cast<std::size_t>(v)] =
            (1.0 - damping) / static_cast<double>(n) +
            damping * incoming[static_cast<std::size_t>(v)];
        incoming[static_cast<std::size_t>(v)] = 0.0;
      }
    }
    MessageBatch out;
    for (NodeId v : mine) {
      const std::int64_t degree = g.OutDegree(v);
      if (degree == 0) continue;
      const float share = static_cast<float>(
          rank[static_cast<std::size_t>(v)] / static_cast<double>(degree));
      for (EdgeId e : g.OutEdges(v)) out.Push(g.EdgeDst(e), v, &share, 1);
    }
    ctx->SendBatch(std::move(out));
  });

  // Ranks form (roughly) a probability distribution and correlate with
  // in-degree.
  double total = 0.0;
  for (double r : rank) total += r;
  EXPECT_NEAR(total, 1.0, 0.1);
  NodeId max_in = 0, max_rank = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (g.InDegree(v) > g.InDegree(max_in)) max_in = v;
    if (rank[static_cast<std::size_t>(v)] >
        rank[static_cast<std::size_t>(max_rank)]) {
      max_rank = v;
    }
  }
  EXPECT_GT(g.InDegree(max_rank), g.InDegree(max_in) / 4);
}

TEST(PregelEngineTest, MessagesReactivateHaltedWorkers) {
  // Classic Pregel semantics: a vote to halt does not end the job while
  // messages are in flight; the job ends once no messages were sent.
  HashPartitioner partitioner(2);
  PregelEngine::Options options;
  options.num_workers = 2;
  options.max_supersteps = 100;
  PregelEngine engine(options, partitioner);
  std::atomic<int> steps{0};
  const JobMetrics metrics = engine.Run([&](PregelContext* ctx) {
    if (ctx->worker_id() == 0) steps.fetch_add(1);
    // Everyone votes every step, but messages keep flowing until
    // superstep 2 — the job must run through superstep 3 (which
    // receives the last batch and sends nothing).
    ctx->VoteToHalt();
    if (ctx->superstep() <= 2 && ctx->worker_id() == 0) {
      const float zero = 0.0f;
      MessageBatch b;
      b.Push(0, 0, &zero, 1);
      ctx->SendBatch(std::move(b));
    }
  }).ValueOrDie();
  EXPECT_EQ(steps.load(), 4);  // supersteps 0, 1, 2, 3
  EXPECT_EQ(metrics.num_steps(), 4);
}

TEST(PregelEngineTest, StopsWhenNoMessages) {
  HashPartitioner partitioner(2);
  PregelEngine::Options options;
  options.num_workers = 2;
  options.max_supersteps = 100;
  PregelEngine engine(options, partitioner);
  const JobMetrics metrics =
      engine.Run([](PregelContext*) {}).ValueOrDie();
  EXPECT_EQ(metrics.num_steps(), 1);
}

TEST(PregelEngineTest, CrossWorkerBytesAreCharged) {
  // Two workers; node ids chosen so worker 0 sends to worker 1.
  HashPartitioner partitioner(2);
  NodeId on_zero = -1, on_one = -1;
  for (NodeId v = 0; v < 100 && (on_zero < 0 || on_one < 0); ++v) {
    (partitioner.PartitionOf(v) == 0 ? on_zero : on_one) = v;
  }
  PregelEngine::Options options;
  options.num_workers = 2;
  options.max_supersteps = 1;
  PregelEngine engine(options, partitioner);
  const float payload[4] = {1, 2, 3, 4};
  const JobMetrics metrics = engine.Run([&](PregelContext* ctx) {
    if (ctx->worker_id() == 0) {
      MessageBatch remote;
      remote.Push(on_one, on_zero, payload, 4);  // cross-worker
      ctx->SendBatch(std::move(remote));
      MessageBatch local;
      local.Push(on_zero, on_zero, payload, 4);  // local: free
      ctx->SendBatch(std::move(local));
    }
  }).ValueOrDie();
  const WorkerStepMetrics w0 = metrics.workers[0].Total();
  const WorkerStepMetrics w1 = metrics.workers[1].Total();
  EXPECT_EQ(w0.bytes_out, MessageBytes(4));
  EXPECT_EQ(w1.bytes_in, MessageBytes(4));
  EXPECT_EQ(w0.records_out, 2);  // both messages count as records
}

TEST(PregelEngineTest, BroadcastBoardIsReadableNextStep) {
  HashPartitioner partitioner(3);
  PregelEngine::Options options;
  options.num_workers = 3;
  options.max_supersteps = 2;
  PregelEngine engine(options, partitioner);
  std::atomic<int> found{0};
  const JobMetrics metrics = engine.Run([&](PregelContext* ctx) {
    if (ctx->superstep() == 0) {
      if (ctx->worker_id() == 0) {
        const float row[2] = {3.5f, 4.5f};
        ctx->PublishBroadcast(123, row, 2);
      }
      return;
    }
    const std::vector<float>* row = ctx->LookupBroadcast(123);
    if (row != nullptr && (*row)[1] == 4.5f) found.fetch_add(1);
    ctx->VoteToHalt();
  }).ValueOrDie();
  EXPECT_EQ(found.load(), 3);  // visible on every worker
  // Publisher paid num_workers-1 copies.
  EXPECT_EQ(metrics.workers[0].Total().bytes_out, 2 * MessageBytes(2));
}

TEST(PregelEngineTest, CombinerShrinksTrafficWithoutChangingDelivery) {
  HashPartitioner partitioner(2);
  PregelEngine::Options options;
  options.num_workers = 2;
  options.max_supersteps = 2;
  // Sum-combine everything addressed to the same destination node.
  options.combiner = [](std::int64_t, MessageBatch batch) {
    PooledAccumulator acc(AggKind::kSum, batch.payload.cols());
    for (std::int64_t i = 0; i < batch.size(); ++i) {
      acc.Add(batch.dst[static_cast<std::size_t>(i)], batch.payload.RowPtr(i));
    }
    return std::make_pair(acc.ToPartialBatch(-1), true);
  };
  PregelEngine engine(options, partitioner);

  NodeId on_one = -1;
  for (NodeId v = 0; v < 100 && on_one < 0; ++v) {
    if (partitioner.PartitionOf(v) == 1) on_one = v;
  }
  std::atomic<float> delivered{0.0f};
  std::atomic<std::int64_t> delivered_count{0};
  const JobMetrics metrics = engine.Run([&](PregelContext* ctx) {
    if (ctx->superstep() == 0 && ctx->worker_id() == 0) {
      MessageBatch out;
      for (int i = 0; i < 10; ++i) {
        const float one = 1.0f;
        out.Push(on_one, 0, &one, 1);
      }
      ctx->SendBatch(std::move(out));
      return;
    }
    for (std::size_t bi = 0; bi < ctx->inbox().size(); ++bi) {
      const MessageBatch& b = ctx->inbox()[bi];
      EXPECT_TRUE(ctx->IsPartialBatch(bi));
      for (std::int64_t i = 0; i < b.size(); ++i) {
        delivered = delivered + b.payload.At(i, 0);
        delivered_count += static_cast<std::int64_t>(
            b.payload.At(i, b.payload.cols() - 1));
      }
    }
    ctx->VoteToHalt();
  }).ValueOrDie();
  EXPECT_EQ(delivered.load(), 10.0f);       // sum preserved
  EXPECT_EQ(delivered_count.load(), 10);    // count column preserved
  // One combined record crossed instead of ten.
  EXPECT_EQ(metrics.workers[0].Total().records_out, 1);
}

TEST(PregelEngineTest, DeterministicAcrossRuns) {
  const Dataset d = MakeProductsLike(0.02, /*seed=*/5);
  const Graph& g = d.graph;
  HashPartitioner partitioner(4);
  const PartitionAssignment assignment =
      AssignPartitions(g.num_nodes(), partitioner);
  const auto run_once = [&] {
    PregelEngine::Options options;
    options.num_workers = 4;
    options.max_supersteps = 3;
    PregelEngine engine(options, partitioner);
    std::vector<float> sums(static_cast<std::size_t>(g.num_nodes()), 0.0f);
    std::mutex mu;
    engine.Run([&](PregelContext* ctx) {
      {
        std::lock_guard<std::mutex> lock(mu);
        for (const MessageBatch& b : ctx->inbox()) {
          for (std::int64_t i = 0; i < b.size(); ++i) {
            sums[static_cast<std::size_t>(
                b.dst[static_cast<std::size_t>(i)])] += b.payload.At(i, 0);
          }
        }
      }
      MessageBatch out;
      for (NodeId v :
           assignment.members[static_cast<std::size_t>(ctx->worker_id())]) {
        const float x = g.node_features().At(v, 0);
        for (EdgeId e : g.OutEdges(v)) out.Push(g.EdgeDst(e), v, &x, 1);
      }
      ctx->SendBatch(std::move(out));
    });
    return sums;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace inferturbo
