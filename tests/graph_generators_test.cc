#include <gtest/gtest.h>

#include <algorithm>

#include "src/graph/datasets.h"
#include "src/graph/degree_stats.h"
#include "src/graph/partition.h"
#include "src/graph/power_law.h"

namespace inferturbo {
namespace {

TEST(ZipfSamplerTest, HeavyHeadLightTail) {
  ZipfSampler zipf(1000, 2.0);
  Rng rng(3);
  std::int64_t head = 0, tail = 0;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t r = zipf.Sample(&rng);
    if (r < 10) ++head;
    if (r >= 500) ++tail;
  }
  EXPECT_GT(head, 8000);
  EXPECT_LT(tail, 200);
}

TEST(ZipfSamplerTest, CoversRangeUnderLowAlpha) {
  ZipfSampler zipf(50, 0.5);
  Rng rng(5);
  std::int64_t max_seen = 0;
  for (int i = 0; i < 5000; ++i) {
    max_seen = std::max(max_seen, zipf.Sample(&rng));
  }
  EXPECT_GT(max_seen, 40);
}

TEST(PowerLawTest, EdgeCountMatchesAvgDegree) {
  PowerLawConfig config;
  config.num_nodes = 1000;
  config.avg_degree = 8.0;
  const EdgeList edges = GeneratePowerLawEdges(config);
  EXPECT_EQ(edges.src.size(), 8000u);
  EXPECT_EQ(edges.dst.size(), 8000u);
}

TEST(PowerLawTest, InSkewConcentratesInDegree) {
  PowerLawConfig config;
  config.num_nodes = 2000;
  config.avg_degree = 10.0;
  config.alpha = 1.8;
  config.skew = PowerLawSkew::kIn;
  const Dataset d = MakePowerLawDataset(config);
  const DegreeStats in = ComputeInDegreeStats(d.graph);
  const DegreeStats out = ComputeOutDegreeStats(d.graph);
  // Hubs exist on the in side, not the out side.
  EXPECT_GT(in.max_degree, 20 * out.max_degree / 4);
  EXPECT_GT(in.max_degree, 10 * static_cast<std::int64_t>(in.mean_degree));
  EXPECT_LT(out.max_degree, 5 * static_cast<std::int64_t>(out.mean_degree) +
                                 30);
}

TEST(PowerLawTest, OutSkewConcentratesOutDegree) {
  PowerLawConfig config;
  config.num_nodes = 2000;
  config.avg_degree = 10.0;
  config.alpha = 1.8;
  config.skew = PowerLawSkew::kOut;
  const Dataset d = MakePowerLawDataset(config);
  const DegreeStats out = ComputeOutDegreeStats(d.graph);
  EXPECT_GT(out.max_degree, 10 * static_cast<std::int64_t>(out.mean_degree));
}

TEST(PowerLawTest, DeterministicUnderSeed) {
  PowerLawConfig config;
  config.num_nodes = 500;
  config.seed = 77;
  const EdgeList a = GeneratePowerLawEdges(config);
  const EdgeList b = GeneratePowerLawEdges(config);
  EXPECT_EQ(a.src, b.src);
  EXPECT_EQ(a.dst, b.dst);
}

TEST(PowerLawTest, NoSelfLoops) {
  PowerLawConfig config;
  config.num_nodes = 300;
  const EdgeList edges = GeneratePowerLawEdges(config);
  for (std::size_t i = 0; i < edges.src.size(); ++i) {
    EXPECT_NE(edges.src[i], edges.dst[i]);
  }
}

TEST(PowerLawDatasetTest, MillesimalTrainingSplit) {
  PowerLawConfig config;
  config.num_nodes = 5000;
  const Dataset d = MakePowerLawDataset(config);
  EXPECT_EQ(d.graph.train_nodes().size(), 5u);
  EXPECT_EQ(d.graph.test_nodes().size(), 5000u);
  EXPECT_EQ(d.graph.num_classes(), 2);
}

TEST(DatasetsTest, PpiLikeShape) {
  const Dataset d = MakePpiLike(0.2);
  EXPECT_EQ(d.graph.feature_dim(), 50);
  EXPECT_EQ(d.graph.num_classes(), 121);
  EXPECT_TRUE(d.graph.is_multi_label());
  EXPECT_EQ(d.graph.multi_labels().rows(), d.graph.num_nodes());
}

TEST(DatasetsTest, ProductsLikeShape) {
  const Dataset d = MakeProductsLike(0.1);
  EXPECT_EQ(d.graph.feature_dim(), 100);
  EXPECT_EQ(d.graph.num_classes(), 47);
  EXPECT_FALSE(d.graph.is_multi_label());
}

TEST(DatasetsTest, Mag240mLikeShape) {
  const Dataset d = MakeMag240mLike(0.02);
  EXPECT_EQ(d.graph.feature_dim(), 128);
  EXPECT_EQ(d.graph.num_classes(), 153);
}

TEST(DatasetsTest, SplitsPartitionTheNodeSet) {
  const Dataset d = MakeProductsLike(0.1);
  std::vector<NodeId> all;
  for (const auto* split :
       {&d.graph.train_nodes(), &d.graph.val_nodes(), &d.graph.test_nodes()}) {
    all.insert(all.end(), split->begin(), split->end());
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(static_cast<std::int64_t>(all.size()), d.graph.num_nodes());
  EXPECT_TRUE(std::adjacent_find(all.begin(), all.end()) == all.end());
}

TEST(DatasetsTest, HomophilyBeatsUniformBaseline) {
  PlantedGraphConfig config;
  config.num_nodes = 2000;
  config.num_classes = 4;
  config.feature_dim = 8;
  config.homophily = 0.8;
  const Dataset d = MakePlantedDataset("homophily-check", config);
  std::int64_t same = 0;
  for (EdgeId e = 0; e < d.graph.num_edges(); ++e) {
    same += d.graph.labels()[static_cast<std::size_t>(d.graph.EdgeSrc(e))] ==
            d.graph.labels()[static_cast<std::size_t>(d.graph.EdgeDst(e))];
  }
  const double fraction =
      static_cast<double>(same) / static_cast<double>(d.graph.num_edges());
  // 0.8 + 0.2/4 = 0.85 expected; uniform would be 0.25.
  EXPECT_GT(fraction, 0.7);
}

TEST(PartitionTest, AssignmentIsConsistent) {
  HashPartitioner partitioner(7);
  const PartitionAssignment a = AssignPartitions(1000, partitioner);
  for (NodeId v = 0; v < 1000; ++v) {
    const std::int64_t p = a.partition_of[static_cast<std::size_t>(v)];
    EXPECT_EQ(p, partitioner.PartitionOf(v));
    const std::int64_t local = a.local_index[static_cast<std::size_t>(v)];
    EXPECT_EQ(a.members[static_cast<std::size_t>(p)][static_cast<std::size_t>(
                  local)],
              v);
  }
}

TEST(PartitionTest, PartitionsAreBalanced) {
  HashPartitioner partitioner(8);
  const PartitionAssignment a = AssignPartitions(8000, partitioner);
  for (const auto& members : a.members) {
    EXPECT_GT(members.size(), 700u);
    EXPECT_LT(members.size(), 1300u);
  }
}

TEST(DegreeStatsTest, HubThresholdFormula) {
  // threshold = lambda * edges / workers: the paper's 1e9 edges /
  // 1000 workers at lambda 0.1 -> 100000.
  EXPECT_EQ(HubDegreeThreshold(1'000'000'000, 1000, 0.1), 100000);
  EXPECT_EQ(HubDegreeThreshold(100, 1000, 0.1), 1);  // floors at 1
}

TEST(DegreeStatsTest, FindsHubs) {
  PowerLawConfig config;
  config.num_nodes = 1000;
  config.avg_degree = 10.0;
  config.skew = PowerLawSkew::kOut;
  config.alpha = 1.6;
  const Dataset d = MakePowerLawDataset(config);
  const std::vector<NodeId> hubs = FindOutDegreeHubs(d.graph, 100);
  EXPECT_FALSE(hubs.empty());
  for (NodeId v : hubs) EXPECT_GT(d.graph.OutDegree(v), 100);
}

TEST(DegreeStatsTest, HistogramCoversAllNodes) {
  const Dataset d = MakeProductsLike(0.05);
  const DegreeStats stats = ComputeInDegreeStats(d.graph);
  std::int64_t total = 0;
  for (std::int64_t c : stats.log2_histogram) total += c;
  EXPECT_EQ(total, d.graph.num_nodes());
  EXPECT_GE(stats.p90, stats.p50);
  EXPECT_GE(stats.p99, stats.p90);
  EXPECT_GE(stats.max_degree, stats.p99);
}

}  // namespace
}  // namespace inferturbo
