#include "src/pregel/vertex_api.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/graph/datasets.h"
#include "src/graph/graph_builder.h"
#include "src/pregel/algorithms.h"

namespace inferturbo {
namespace {

/// Max-value propagation: every vertex converges to the maximum initial
/// value in its weakly... (out-reachable) component. The Pregel paper's
/// canonical example.
class MaxValueProgram : public VertexProgram {
 public:
  std::int64_t value_width() const override { return 1; }

  std::vector<float> InitialValue(NodeId vertex,
                                  const Graph& graph) const override {
    (void)graph;
    return {static_cast<float>(vertex)};
  }

  void Compute(VertexContext* ctx) override {
    bool changed = ctx->superstep() == 0;
    for (const std::vector<float>& m : ctx->messages()) {
      if (m[0] > ctx->value()[0]) {
        ctx->value()[0] = m[0];
        changed = true;
      }
    }
    if (changed) ctx->SendToAllOutNeighbors(ctx->value());
    ctx->VoteToHalt();
  }
};

TEST(VertexApiTest, MaxPropagationOnRing) {
  const std::int64_t n = 12;
  GraphBuilder builder(n);
  for (NodeId v = 0; v < n; ++v) builder.AddEdge(v, (v + 1) % n);
  builder.SetNodeFeatures(Tensor(n, 1));
  const Graph g = std::move(builder).Finish().ValueOrDie();

  MaxValueProgram program;
  const VertexProgramResult result =
      RunVertexProgram(g, &program, VertexProgramOptions{});
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_EQ(result.values[static_cast<std::size_t>(v)][0],
              static_cast<float>(n - 1))
        << "vertex " << v;
  }
}

TEST(VertexApiTest, HaltedVerticesStopComputing) {
  // A program that halts immediately and never sends: the job must
  // finish after one superstep.
  class HaltProgram : public VertexProgram {
   public:
    std::int64_t value_width() const override { return 1; }
    std::vector<float> InitialValue(NodeId, const Graph&) const override {
      return {0.0f};
    }
    void Compute(VertexContext* ctx) override {
      ctx->value()[0] += 1.0f;
      ctx->VoteToHalt();
    }
  };
  const Dataset d = MakeProductsLike(0.01, /*seed=*/12);
  HaltProgram program;
  const VertexProgramResult result =
      RunVertexProgram(d.graph, &program, VertexProgramOptions{});
  EXPECT_EQ(result.metrics.num_steps(), 1);
  for (const auto& value : result.values) EXPECT_EQ(value[0], 1.0f);
}

TEST(VertexApiTest, MessagesReactivateHaltedVertices) {
  // Chain 0 -> 1 -> 2: everyone halts each step, but the token's
  // arrival must wake the next vertex.
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.SetNodeFeatures(Tensor(3, 1));
  const Graph g = std::move(builder).Finish().ValueOrDie();

  class TokenProgram : public VertexProgram {
   public:
    std::int64_t value_width() const override { return 1; }
    std::vector<float> InitialValue(NodeId v, const Graph&) const override {
      return {v == 0 ? 7.0f : 0.0f};
    }
    void Compute(VertexContext* ctx) override {
      for (const auto& m : ctx->messages()) ctx->value()[0] = m[0];
      if (ctx->value()[0] != 0.0f) {
        ctx->SendToAllOutNeighbors(ctx->value());
      }
      ctx->VoteToHalt();
    }
  };
  TokenProgram program;
  const VertexProgramResult result =
      RunVertexProgram(g, &program, VertexProgramOptions{});
  EXPECT_EQ(result.values[2][0], 7.0f);
}

TEST(VertexApiTest, PerVertexPageRankMatchesLibrary) {
  // The per-vertex API and the vectorized library implementation are
  // two expressions of the same algorithm; their results must agree.
  const Dataset d = MakeProductsLike(0.02, /*seed=*/13);
  const Graph& g = d.graph;

  class PageRankProgram : public VertexProgram {
   public:
    explicit PageRankProgram(std::int64_t n, std::int64_t steps)
        : n_(n), steps_(steps) {}
    std::int64_t value_width() const override { return 1; }
    std::vector<float> InitialValue(NodeId, const Graph&) const override {
      return {static_cast<float>(1.0 / static_cast<double>(n_))};
    }
    void Compute(VertexContext* ctx) override {
      if (ctx->superstep() > 0) {
        double incoming = 0.0;
        for (const auto& m : ctx->messages()) incoming += m[0];
        ctx->value()[0] = static_cast<float>(
            0.15 / static_cast<double>(n_) + 0.85 * incoming);
      }
      if (ctx->superstep() < steps_ && ctx->out_degree() > 0) {
        ctx->SendToAllOutNeighbors(
            {ctx->value()[0] / static_cast<float>(ctx->out_degree())});
      }
      ctx->VoteToHalt();
    }

   private:
    std::int64_t n_;
    std::int64_t steps_;
  };

  PageRankProgram program(g.num_nodes(), 15);
  VertexProgramOptions options;
  options.max_supersteps = 40;
  const VertexProgramResult per_vertex =
      RunVertexProgram(g, &program, options);

  PregelAlgorithmOptions lib_options;
  lib_options.num_workers = options.num_workers;
  lib_options.max_iterations = 16;  // library counts supersteps directly
  const std::vector<double> library = PageRank(g, lib_options);

  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(per_vertex.values[static_cast<std::size_t>(v)][0],
                library[static_cast<std::size_t>(v)], 2e-3)
        << "vertex " << v;
  }
}

}  // namespace
}  // namespace inferturbo
