// The kernel layer's bit-identity contract: every fast kernel must
// reproduce its scalar reference exactly — same bytes, not just within
// tolerance — at any thread count, over shapes that exercise every
// tile lane (full 4×16 tiles, column tails, row tails, empty, 1-row,
// 1-col) and the skip-on-zero path. The crash-sweep and cross-backend
// equivalence suites build on this guarantee.
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/tensor/kernels/kernel_config.h"
#include "src/tensor/kernels/kernels.h"
#include "src/tensor/kernels/reference.h"

namespace inferturbo {
namespace {

bool BitIdentical(const Tensor& a, const Tensor& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  if (a.size() == 0) return true;
  return std::memcmp(a.data(), b.data(), a.ByteSize()) == 0;
}

// Random matrix with exact +0.0/-0.0 entries sprinkled in so the
// skip-on-zero lanes and signed-zero accumulation actually run.
Tensor RandomWithZeros(std::int64_t rows, std::int64_t cols, Rng* rng) {
  Tensor t = Tensor::RandomNormal(rows, cols, 1.0f, rng);
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      const std::uint64_t roll = rng->NextBounded(10);
      if (roll == 0) t.At(r, c) = 0.0f;
      if (roll == 1) t.At(r, c) = -0.0f;
    }
  }
  return t;
}

// Thread settings every kernel is checked under. max_threads=1 pins
// the serial path; the larger settings force multi-task partitions
// even on tiny shapes (min_parallel_work=1) and oversubscribe the
// pool, which must not change a single bit.
struct ThreadSetting {
  int max_threads;
  std::int64_t min_parallel_work;
};

const ThreadSetting kThreadSettings[] = {{1, 1 << 18}, {2, 1}, {5, 1}};

class KernelsTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = kernels::GetKernelConfig(); }
  void TearDown() override { kernels::SetKernelConfig(saved_); }

  void Use(const ThreadSetting& setting) {
    kernels::KernelConfig config;
    config.max_threads = setting.max_threads;
    config.min_parallel_work = setting.min_parallel_work;
    kernels::SetKernelConfig(config);
  }

 private:
  kernels::KernelConfig saved_;
};

struct MatMulShape {
  std::int64_t m, k, n;
};

// Full tiles, tails in every dimension, degenerate and empty shapes,
// and sizes straddling the TransposedA transpose-path threshold.
const MatMulShape kMatMulShapes[] = {
    {0, 0, 0}, {0, 4, 4},   {4, 0, 4},   {4, 4, 0},    {1, 1, 1},
    {1, 7, 1}, {2, 3, 4},   {4, 16, 16}, {5, 17, 23},  {7, 1, 9},
    {3, 9, 8}, {16, 8, 33}, {33, 29, 47}, {64, 64, 64}, {12, 40, 17},
};

TEST_F(KernelsTest, MatMulBitIdenticalAtEveryThreadCount) {
  Rng rng(101);
  for (const MatMulShape& shape : kMatMulShapes) {
    const Tensor a = RandomWithZeros(shape.m, shape.k, &rng);
    const Tensor b = RandomWithZeros(shape.k, shape.n, &rng);
    const Tensor want = kernels::reference::MatMul(a, b);
    for (const ThreadSetting& setting : kThreadSettings) {
      Use(setting);
      const Tensor got = kernels::MatMul(a, b);
      EXPECT_TRUE(BitIdentical(want, got))
          << shape.m << "x" << shape.k << "x" << shape.n << " at "
          << setting.max_threads << " threads";
    }
  }
}

TEST_F(KernelsTest, MatMulTransposedBBitIdenticalAtEveryThreadCount) {
  Rng rng(102);
  for (const MatMulShape& shape : kMatMulShapes) {
    const Tensor a = RandomWithZeros(shape.m, shape.k, &rng);
    const Tensor b = RandomWithZeros(shape.n, shape.k, &rng);
    const Tensor want = kernels::reference::MatMulTransposedB(a, b);
    for (const ThreadSetting& setting : kThreadSettings) {
      Use(setting);
      const Tensor got = kernels::MatMulTransposedB(a, b);
      EXPECT_TRUE(BitIdentical(want, got))
          << shape.m << "x" << shape.k << "x" << shape.n << " at "
          << setting.max_threads << " threads";
    }
  }
}

TEST_F(KernelsTest, MatMulTransposedABitIdenticalAtEveryThreadCount) {
  Rng rng(103);
  for (const MatMulShape& shape : kMatMulShapes) {
    // A is (k×m) here; C = A^T·B is (m×n).
    const Tensor a = RandomWithZeros(shape.k, shape.m, &rng);
    const Tensor b = RandomWithZeros(shape.k, shape.n, &rng);
    const Tensor want = kernels::reference::MatMulTransposedA(a, b);
    for (const ThreadSetting& setting : kThreadSettings) {
      Use(setting);
      const Tensor got = kernels::MatMulTransposedA(a, b);
      EXPECT_TRUE(BitIdentical(want, got))
          << shape.m << "x" << shape.k << "x" << shape.n << " at "
          << setting.max_threads << " threads";
    }
  }
}

TEST_F(KernelsTest, MatMulRandomizedShapesSweep) {
  Rng rng(104);
  for (int trial = 0; trial < 25; ++trial) {
    const std::int64_t m = static_cast<std::int64_t>(rng.NextBounded(70));
    const std::int64_t k = static_cast<std::int64_t>(rng.NextBounded(70));
    const std::int64_t n = static_cast<std::int64_t>(rng.NextBounded(70));
    const Tensor a = RandomWithZeros(m, k, &rng);
    const Tensor b = RandomWithZeros(k, n, &rng);
    const Tensor want = kernels::reference::MatMul(a, b);
    for (const ThreadSetting& setting : kThreadSettings) {
      Use(setting);
      EXPECT_TRUE(BitIdentical(want, kernels::MatMul(a, b)))
          << "trial " << trial << ": " << m << "x" << k << "x" << n << " at "
          << setting.max_threads << " threads";
    }
  }
}

struct SegmentShape {
  std::int64_t rows, cols, segments;
};

const SegmentShape kSegmentShapes[] = {
    {0, 4, 3},  {1, 1, 1},   {5, 0, 4},    {7, 3, 1},
    {16, 8, 5}, {64, 32, 9}, {200, 17, 64}, {33, 1, 200},
};

std::vector<std::int64_t> RandomIds(std::int64_t rows,
                                    std::int64_t num_segments, Rng* rng) {
  std::vector<std::int64_t> ids(static_cast<std::size_t>(rows));
  for (auto& id : ids) {
    // Sampling from the full range leaves some segments empty on
    // purpose — empty segments must stay exactly zero.
    id = static_cast<std::int64_t>(
        rng->NextBounded(static_cast<std::uint64_t>(num_segments)));
  }
  return ids;
}

TEST_F(KernelsTest, SegmentSumAndMeanBitIdenticalAtEveryThreadCount) {
  Rng rng(105);
  for (const SegmentShape& shape : kSegmentShapes) {
    const Tensor values = RandomWithZeros(shape.rows, shape.cols, &rng);
    const std::vector<std::int64_t> ids =
        RandomIds(shape.rows, shape.segments, &rng);
    const Tensor want_sum =
        kernels::reference::SegmentSum(values, ids, shape.segments);
    const Tensor want_mean =
        kernels::reference::SegmentMean(values, ids, shape.segments);
    for (const ThreadSetting& setting : kThreadSettings) {
      Use(setting);
      EXPECT_TRUE(BitIdentical(
          want_sum, kernels::SegmentSum(values, ids, shape.segments)))
          << shape.rows << "x" << shape.cols << " into " << shape.segments
          << " segments at " << setting.max_threads << " threads";
      EXPECT_TRUE(BitIdentical(
          want_mean, kernels::SegmentMean(values, ids, shape.segments)))
          << shape.rows << "x" << shape.cols << " into " << shape.segments
          << " segments at " << setting.max_threads << " threads";
    }
  }
}

TEST_F(KernelsTest, GatherRowsBitIdenticalAtEveryThreadCount) {
  Rng rng(106);
  const Tensor source = RandomWithZeros(37, 13, &rng);
  for (const std::int64_t count : {std::int64_t{0}, std::int64_t{1},
                                   std::int64_t{50}, std::int64_t{333}}) {
    // Repetition allowed: indices sample with replacement.
    std::vector<std::int64_t> indices(static_cast<std::size_t>(count));
    for (auto& idx : indices) {
      idx = static_cast<std::int64_t>(rng.NextBounded(37));
    }
    const Tensor want = kernels::reference::GatherRows(source, indices);
    for (const ThreadSetting& setting : kThreadSettings) {
      Use(setting);
      EXPECT_TRUE(BitIdentical(want, kernels::GatherRows(source, indices)))
          << count << " gathered rows at " << setting.max_threads
          << " threads";
    }
  }
}

TEST_F(KernelsTest, ScatterAddRowsBitIdenticalAtEveryThreadCount) {
  Rng rng(107);
  for (const SegmentShape& shape : kSegmentShapes) {
    if (shape.rows == 0 || shape.cols == 0) continue;
    const Tensor rows = RandomWithZeros(shape.rows, shape.cols, &rng);
    const Tensor base = RandomWithZeros(shape.segments, shape.cols, &rng);
    const std::vector<std::int64_t> indices =
        RandomIds(shape.rows, shape.segments, &rng);
    Tensor want = base;
    kernels::reference::ScatterAddRows(&want, indices, rows);
    for (const ThreadSetting& setting : kThreadSettings) {
      Use(setting);
      Tensor got = base;
      kernels::ScatterAddRows(&got, indices, rows);
      EXPECT_TRUE(BitIdentical(want, got))
          << shape.rows << " rows into " << shape.segments << " at "
          << setting.max_threads << " threads";
    }
  }
}

TEST_F(KernelsTest, IsaDispatchReportsWithoutCrashing) {
  // Informational: whichever instantiation dispatch picked, results
  // above were already pinned bit-identical to the scalar reference.
  (void)kernels::UsingAvx2();
}

}  // namespace
}  // namespace inferturbo
