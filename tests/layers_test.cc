// Per-layer properties: the training-side computation flow (ForwardAg)
// and the inference-side computation flow (ComputeMessage / ApplyNode
// plus an engine-style gather) are two implementations of the same
// math and must agree on any graph.
#include <gtest/gtest.h>

#include <memory>

#include "src/gas/gas_conv.h"
#include "src/nn/gat_conv.h"
#include "src/nn/gcn_conv.h"
#include "src/nn/gin_conv.h"
#include "src/nn/pool_sage_conv.h"
#include "src/nn/sage_conv.h"
#include "src/tensor/ops.h"

namespace inferturbo {
namespace {

struct TestGraph {
  Tensor features;
  std::vector<std::int64_t> src;
  std::vector<std::int64_t> dst;
  std::int64_t num_nodes;
};

TestGraph MakeRandomTestGraph(std::uint64_t seed, std::int64_t num_nodes = 30,
                              std::int64_t num_edges = 120,
                              std::int64_t dim = 6) {
  Rng rng(seed);
  TestGraph g;
  g.num_nodes = num_nodes;
  g.features = Tensor::RandomNormal(num_nodes, dim, 1.0f, &rng);
  for (std::int64_t e = 0; e < num_edges; ++e) {
    g.src.push_back(static_cast<std::int64_t>(
        rng.NextBounded(static_cast<std::uint64_t>(num_nodes))));
    g.dst.push_back(static_cast<std::int64_t>(
        rng.NextBounded(static_cast<std::uint64_t>(num_nodes))));
  }
  return g;
}

/// Inference-side forward of one layer over an edge list.
Tensor InferenceForward(const GasConv& layer, const TestGraph& g) {
  const Tensor node_messages = layer.ComputeMessage(g.features);
  const Tensor edge_messages = GatherRows(node_messages, g.src);
  const GatherResult gathered =
      GatherIntoResult(layer.signature().agg_kind, edge_messages, g.dst,
                       g.num_nodes, /*is_partial=*/false);
  return layer.ApplyNode(g.features, gathered);
}

Tensor TrainingForward(const GasConv& layer, const TestGraph& g) {
  ag::VarPtr h = ag::Constant(g.features);
  return layer.ForwardAg(h, g.src, g.dst, g.num_nodes, nullptr)->value;
}

TEST(SageConvTest, TrainingAndInferencePathsAgree) {
  Rng rng(41);
  SageConv layer(6, 5, /*activation=*/true, &rng);
  const TestGraph g = MakeRandomTestGraph(1);
  EXPECT_TRUE(
      TrainingForward(layer, g).ApproxEquals(InferenceForward(layer, g),
                                             1e-4f));
}

TEST(GcnConvTest, TrainingAndInferencePathsAgree) {
  Rng rng(43);
  GcnConv layer(6, 5, /*activation=*/true, &rng);
  const TestGraph g = MakeRandomTestGraph(2);
  EXPECT_TRUE(
      TrainingForward(layer, g).ApproxEquals(InferenceForward(layer, g),
                                             1e-4f));
}

TEST(GatConvTest, TrainingAndInferencePathsAgree) {
  Rng rng(47);
  GatConv layer(6, 4, /*heads=*/2, /*activation=*/true, &rng);
  const TestGraph g = MakeRandomTestGraph(3);
  EXPECT_TRUE(
      TrainingForward(layer, g).ApproxEquals(InferenceForward(layer, g),
                                             1e-4f));
}

TEST(GinConvTest, TrainingAndInferencePathsAgree) {
  Rng rng(101);
  GinConv layer(6, 5, /*activation=*/true, &rng);
  const TestGraph g = MakeRandomTestGraph(7);
  EXPECT_TRUE(
      TrainingForward(layer, g).ApproxEquals(InferenceForward(layer, g),
                                             1e-4f));
}

TEST(GinConvTest, SignatureIsSumAggregate) {
  Rng rng(103);
  GinConv layer(6, 5, true, &rng);
  EXPECT_EQ(layer.signature().agg_kind, AggKind::kSum);
  EXPECT_TRUE(layer.signature().partial_gather);
}

TEST(GinConvTest, EpsilonScalesSelfTerm) {
  Rng rng(107);
  GinConv layer(4, 3, /*activation=*/false, &rng);
  const TestGraph g = MakeRandomTestGraph(8, 6, 12, 4);
  const Tensor before = InferenceForward(layer, g);
  layer.Parameters()[0]->value.At(0, 0) = 2.0f;  // eps
  const Tensor after = InferenceForward(layer, g);
  EXPECT_FALSE(before.ApproxEquals(after, 1e-6f));
}

TEST(PoolSageConvTest, TrainingAndInferencePathsAgree) {
  Rng rng(109);
  PoolSageConv layer(6, 5, /*activation=*/true, &rng);
  const TestGraph g = MakeRandomTestGraph(9);
  EXPECT_TRUE(
      TrainingForward(layer, g).ApproxEquals(InferenceForward(layer, g),
                                             1e-4f));
}

TEST(PoolSageConvTest, SignatureIsMaxAggregate) {
  Rng rng(113);
  PoolSageConv layer(6, 5, true, &rng);
  EXPECT_EQ(layer.signature().agg_kind, AggKind::kMax);
  EXPECT_TRUE(layer.signature().partial_gather);
  EXPECT_EQ(layer.signature().message_dim, 5);  // transformed width
}

TEST(GatConvTest, IsolatedNodeFallsBackToSelfTransform) {
  Rng rng(53);
  GatConv layer(4, 3, /*heads=*/1, /*activation=*/false, &rng);
  TestGraph g = MakeRandomTestGraph(4, /*num_nodes=*/5, /*num_edges=*/0,
                                    /*dim=*/4);
  const Tensor out = InferenceForward(layer, g);
  // With no in-edges the GAT output is W h_v + b for every node.
  const Tensor train_out = TrainingForward(layer, g);
  EXPECT_TRUE(out.ApproxEquals(train_out, 1e-4f));
  EXPECT_GT(L2Norm(out), 0.0);
}

TEST(SageConvTest, SignatureDeclaresLawfulAggregate) {
  Rng rng(59);
  SageConv layer(6, 5, true, &rng);
  EXPECT_EQ(layer.signature().agg_kind, AggKind::kMean);
  EXPECT_TRUE(layer.signature().partial_gather);
  EXPECT_TRUE(layer.signature().broadcastable_messages);
  EXPECT_EQ(layer.signature().message_dim, 6);
}

TEST(GatConvTest, SignatureDeclaresUnionAggregate) {
  Rng rng(61);
  GatConv layer(6, 4, 2, true, &rng);
  // Attention breaks the commutative/associative rule -> union +
  // @Gather(partial=False), as in the paper's Fig. 3.
  EXPECT_EQ(layer.signature().agg_kind, AggKind::kUnion);
  EXPECT_FALSE(layer.signature().partial_gather);
  EXPECT_FALSE(PartialGatherReduces(layer.signature().agg_kind));
  EXPECT_EQ(layer.signature().message_dim, 2 * 4 + 2);
}

TEST(LayersTest, ParametersAreSharedBetweenPaths) {
  Rng rng(67);
  SageConv layer(4, 3, false, &rng);
  const TestGraph g = MakeRandomTestGraph(5, 10, 30, 4);
  const Tensor before = InferenceForward(layer, g);
  // Mutate a parameter through the training-side handle; inference
  // must see the change (same storage).
  layer.Parameters()[0]->value.At(0, 0) += 1.0f;
  const Tensor after = InferenceForward(layer, g);
  EXPECT_FALSE(before.ApproxEquals(after, 1e-6f));
}

TEST(LayersTest, MessagesAreIdenticalAcrossOutEdges) {
  // The broadcastable_messages contract: ComputeMessage is per-node, so
  // two edges from the same source must carry equal rows.
  Rng rng(71);
  GatConv layer(4, 3, 2, true, &rng);
  const TestGraph g = MakeRandomTestGraph(6, 8, 40, 4);
  const Tensor node_messages = layer.ComputeMessage(g.features);
  const Tensor edge_messages = GatherRows(node_messages, g.src);
  for (std::size_t e1 = 0; e1 < g.src.size(); ++e1) {
    for (std::size_t e2 = e1 + 1; e2 < g.src.size(); ++e2) {
      if (g.src[e1] != g.src[e2]) continue;
      for (std::int64_t j = 0; j < edge_messages.cols(); ++j) {
        ASSERT_EQ(edge_messages.At(static_cast<std::int64_t>(e1), j),
                  edge_messages.At(static_cast<std::int64_t>(e2), j));
      }
    }
  }
}

}  // namespace
}  // namespace inferturbo
