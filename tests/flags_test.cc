#include "src/common/flags.h"

#include <gtest/gtest.h>

namespace inferturbo {
namespace {

FlagParser MustParse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "binary");
  const Result<FlagParser> parsed =
      FlagParser::Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return std::move(parsed).ValueOrDie();
}

TEST(FlagParserTest, EqualsAndSpaceForms) {
  const FlagParser flags =
      MustParse({"--mode=train", "--workers", "16", "--lr=0.05"});
  EXPECT_EQ(flags.GetString("mode", ""), "train");
  EXPECT_EQ(flags.GetInt("workers", 0), 16);
  EXPECT_DOUBLE_EQ(flags.GetDouble("lr", 0.0), 0.05);
}

TEST(FlagParserTest, BareFlagIsBooleanTrue) {
  const FlagParser flags = MustParse({"--verbose", "--mode=x"});
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_TRUE(flags.Has("verbose"));
}

TEST(FlagParserTest, TrailingBareFlagIsBooleanTrue) {
  const FlagParser flags = MustParse({"--mode=x", "--dry_run"});
  EXPECT_TRUE(flags.GetBool("dry_run", false));
}

TEST(FlagParserTest, FallbacksApplyWhenMissing) {
  const FlagParser flags = MustParse({});
  EXPECT_EQ(flags.GetString("mode", "demo"), "demo");
  EXPECT_EQ(flags.GetInt("workers", 8), 8);
  EXPECT_FALSE(flags.GetBool("verbose", false));
  EXPECT_FALSE(flags.Has("anything"));
}

TEST(FlagParserTest, BoolSpellings) {
  const FlagParser flags =
      MustParse({"--a=true", "--b=1", "--c=yes", "--d=false", "--e=0"});
  EXPECT_TRUE(flags.GetBool("a", false));
  EXPECT_TRUE(flags.GetBool("b", false));
  EXPECT_TRUE(flags.GetBool("c", false));
  EXPECT_FALSE(flags.GetBool("d", true));
  EXPECT_FALSE(flags.GetBool("e", true));
}

TEST(FlagParserTest, RejectsPositionalArguments) {
  const char* argv[] = {"binary", "positional"};
  EXPECT_FALSE(FlagParser::Parse(2, argv).ok());
}

TEST(FlagParserTest, RejectsBareDoubleDash) {
  const char* argv[] = {"binary", "--"};
  EXPECT_FALSE(FlagParser::Parse(2, argv).ok());
}

TEST(FlagParserTest, KeysListsEverything) {
  const FlagParser flags = MustParse({"--b=2", "--a=1"});
  EXPECT_EQ(flags.Keys(), (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace inferturbo
