#include "src/common/flags.h"

#include <gtest/gtest.h>

#include "src/common/byte_size.h"
#include "src/runtime/fault_plan.h"

namespace inferturbo {
namespace {

FlagParser MustParse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "binary");
  const Result<FlagParser> parsed =
      FlagParser::Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return std::move(parsed).ValueOrDie();
}

TEST(FlagParserTest, EqualsAndSpaceForms) {
  const FlagParser flags =
      MustParse({"--mode=train", "--workers", "16", "--lr=0.05"});
  EXPECT_EQ(flags.GetString("mode", ""), "train");
  EXPECT_EQ(flags.GetInt("workers", 0), 16);
  EXPECT_DOUBLE_EQ(flags.GetDouble("lr", 0.0), 0.05);
}

TEST(FlagParserTest, BareFlagIsBooleanTrue) {
  const FlagParser flags = MustParse({"--verbose", "--mode=x"});
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_TRUE(flags.Has("verbose"));
}

TEST(FlagParserTest, TrailingBareFlagIsBooleanTrue) {
  const FlagParser flags = MustParse({"--mode=x", "--dry_run"});
  EXPECT_TRUE(flags.GetBool("dry_run", false));
}

TEST(FlagParserTest, FallbacksApplyWhenMissing) {
  const FlagParser flags = MustParse({});
  EXPECT_EQ(flags.GetString("mode", "demo"), "demo");
  EXPECT_EQ(flags.GetInt("workers", 8), 8);
  EXPECT_FALSE(flags.GetBool("verbose", false));
  EXPECT_FALSE(flags.Has("anything"));
}

TEST(FlagParserTest, BoolSpellings) {
  const FlagParser flags =
      MustParse({"--a=true", "--b=1", "--c=yes", "--d=false", "--e=0"});
  EXPECT_TRUE(flags.GetBool("a", false));
  EXPECT_TRUE(flags.GetBool("b", false));
  EXPECT_TRUE(flags.GetBool("c", false));
  EXPECT_FALSE(flags.GetBool("d", true));
  EXPECT_FALSE(flags.GetBool("e", true));
}

TEST(FlagParserTest, RejectsPositionalArguments) {
  const char* argv[] = {"binary", "positional"};
  EXPECT_FALSE(FlagParser::Parse(2, argv).ok());
}

TEST(FlagParserTest, RejectsBareDoubleDash) {
  const char* argv[] = {"binary", "--"};
  EXPECT_FALSE(FlagParser::Parse(2, argv).ok());
}

TEST(FlagParserTest, KeysListsEverything) {
  const FlagParser flags = MustParse({"--b=2", "--a=1"});
  EXPECT_EQ(flags.Keys(), (std::vector<std::string>{"a", "b"}));
}

std::uint64_t MustParseBytes(std::string_view text) {
  const Result<std::uint64_t> parsed = ParseByteSize(text);
  EXPECT_TRUE(parsed.ok()) << "'" << text << "': "
                           << parsed.status().ToString();
  return parsed.ok() ? *parsed : 0;
}

TEST(ParseByteSizeTest, PlainNumbersAreBytes) {
  EXPECT_EQ(MustParseBytes("0"), 0u);
  EXPECT_EQ(MustParseBytes("1048576"), 1048576u);
  EXPECT_EQ(MustParseBytes("  42  "), 42u);
}

TEST(ParseByteSizeTest, UnitsAreBinaryAndCaseInsensitive) {
  EXPECT_EQ(MustParseBytes("512MB"), 512ull << 20);
  EXPECT_EQ(MustParseBytes("512MiB"), 512ull << 20);
  EXPECT_EQ(MustParseBytes("4GiB"), 4ull << 30);
  EXPECT_EQ(MustParseBytes("4gb"), 4ull << 30);
  EXPECT_EQ(MustParseBytes("64k"), 64ull << 10);
  EXPECT_EQ(MustParseBytes("64 KB"), 64ull << 10);
  EXPECT_EQ(MustParseBytes("2tb"), 2ull << 40);
  EXPECT_EQ(MustParseBytes("100B"), 100u);
}

TEST(ParseByteSizeTest, FractionsRoundDown) {
  EXPECT_EQ(MustParseBytes("1.5KiB"), 1536u);
  EXPECT_EQ(MustParseBytes("0.5 GiB"), 512ull << 20);
  EXPECT_EQ(MustParseBytes("2.7"), 2u);
}

TEST(ParseByteSizeTest, RejectsMalformedInput) {
  for (const char* bad :
       {"", "  ", "MB", "12XB", "12MiBs", "-4GiB", "1e400", "4GiB extra",
        "nan", "inf"}) {
    EXPECT_FALSE(ParseByteSize(bad).ok()) << "'" << bad << "'";
  }
}

TEST(ParseByteSizeTest, RejectsOverflow) {
  EXPECT_FALSE(ParseByteSize("17179869184GiB").ok());
  // Just under 2^64 still parses.
  EXPECT_TRUE(ParseByteSize("15EB").ok() == false);  // unknown unit
  EXPECT_TRUE(ParseByteSize("16000000TB").ok());
}

TEST(ParseByteSizeTest, RoundTripsWithFormatBytes) {
  // FormatBytes keeps one decimal, so the round trip is exact for whole
  // units and within half a unit otherwise.
  for (const std::uint64_t bytes :
       {0ull, 100ull, 1ull << 10, 64ull << 10, 512ull << 20, 4ull << 30,
        3ull << 40}) {
    const std::string text = FormatBytes(bytes);
    const Result<std::uint64_t> parsed = ParseByteSize(text);
    ASSERT_TRUE(parsed.ok()) << text;
    EXPECT_EQ(*parsed, bytes) << text;
  }
  const std::uint64_t odd = (1ull << 30) + (357ull << 20);  // "1.3 GiB"
  const Result<std::uint64_t> parsed = ParseByteSize(FormatBytes(odd));
  ASSERT_TRUE(parsed.ok());
  const double relative_error =
      std::abs(static_cast<double>(*parsed) - static_cast<double>(odd)) /
      static_cast<double>(odd);
  EXPECT_LT(relative_error, 0.05) << FormatBytes(odd);
}

TEST(FlagParserTest, GetBytesParsesUnitsAndRejectsGarbage) {
  const FlagParser flags =
      MustParse({"--storage_memory_budget=512MB", "--bad=12parsecs"});
  const Result<std::uint64_t> budget =
      flags.GetBytes("storage_memory_budget", 0);
  ASSERT_TRUE(budget.ok());
  EXPECT_EQ(*budget, 512ull << 20);
  const Result<std::uint64_t> missing = flags.GetBytes("absent", 77);
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(*missing, 77u);
  const Result<std::uint64_t> bad = flags.GetBytes("bad", 0);
  EXPECT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("--bad"), std::string::npos);
}

// --- task supervision / chaos flags (the CLI's robustness knobs) -----

TEST(FlagParserTest, SupervisionFlagsParse) {
  const FlagParser flags = MustParse(
      {"--task_deadline_ms=250", "--max_task_retries=5",
       "--speculative_execution", "--fault_plan=crash@compute:1:0"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("task_deadline_ms", 0.0), 250.0);
  EXPECT_EQ(flags.GetInt("max_task_retries", 3), 5);
  EXPECT_TRUE(flags.GetBool("speculative_execution", false));
  EXPECT_EQ(flags.GetString("fault_plan", ""), "crash@compute:1:0");
  // Presence of any supervision flag is what turns the supervisor on.
  EXPECT_TRUE(flags.Has("task_deadline_ms"));
  EXPECT_FALSE(MustParse({"--mode=infer"}).Has("task_deadline_ms"));
}

TEST(FaultPlanSpecTest, ParsesKindsStagesAndModifiers) {
  FaultPlan plan;
  ASSERT_TRUE(ParseFaultPlan("crash@compute:1:0;transient@map:0:*x3;"
                             "straggle@reduce:*:2x-1~250",
                             &plan)
                  .ok());
  EXPECT_EQ(plan.num_rules(), 3u);
  // Rule 1 fires for compute step 1 worker 0, exactly once.
  EXPECT_EQ(plan.Next({TaskStageKind::kPregelCompute, 1, 0, 0}).kind,
            TaskFaultKind::kCrash);
  EXPECT_EQ(plan.Next({TaskStageKind::kPregelCompute, 1, 0, 1}).kind,
            TaskFaultKind::kNone);
  // Rule 2: any worker in the map stage, three shots.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(plan.Next({TaskStageKind::kMrMap, 0, i, 0}).kind,
              TaskFaultKind::kTransient);
  }
  EXPECT_EQ(plan.Next({TaskStageKind::kMrMap, 0, 9, 0}).kind,
            TaskFaultKind::kNone);
  // Rule 3: unbounded straggle on worker 2 in any reduce round, 250 ms.
  const TaskFault straggle = plan.Next({TaskStageKind::kMrReduce, 7, 2, 0});
  EXPECT_EQ(straggle.kind, TaskFaultKind::kStraggle);
  EXPECT_DOUBLE_EQ(straggle.delay_seconds, 0.25);
  EXPECT_EQ(plan.Next({TaskStageKind::kMrReduce, 8, 2, 1}).kind,
            TaskFaultKind::kStraggle);
  EXPECT_EQ(plan.crashes_fired(), 1);
  EXPECT_EQ(plan.transients_fired(), 3);
  EXPECT_EQ(plan.delays_fired(), 2);
  EXPECT_EQ(plan.faults_fired(), 6);
  EXPECT_EQ(plan.realized_events().size(), 6u);
}

TEST(FaultPlanSpecTest, RejectsMalformedSpecs) {
  for (const char* bad :
       {"boom@compute:1:0", "crash@nowhere:1:0", "crash@compute:1",
        "crash@compute", "crash", "crash@compute:x:0",
        "crash@compute:1:0~50", "straggle@compute:1:0~",
        "crash@compute:1:0x0", "crash@compute:1:0 extra"}) {
    FaultPlan plan;
    EXPECT_FALSE(ParseFaultPlan(bad, &plan).ok()) << "'" << bad << "'";
  }
  // Empty specs (and stray separators) arm nothing and are fine.
  FaultPlan empty;
  EXPECT_TRUE(ParseFaultPlan("", &empty).ok());
  EXPECT_TRUE(ParseFaultPlan(" ; ", &empty).ok());
  EXPECT_EQ(empty.num_rules(), 0u);
}

TEST(FaultPlanSpecTest, RealizedEventsRenderStably) {
  FaultPlan plan;
  ASSERT_TRUE(ParseFaultPlan("crash@compute:1:0", &plan).ok());
  ASSERT_EQ(plan.Next({TaskStageKind::kPregelCompute, 1, 0, 2}).kind,
            TaskFaultKind::kCrash);
  const std::vector<TaskFaultEvent> events = plan.realized_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(TaskFaultEventToString(events[0]), "crash@compute:1:0#2");
}

}  // namespace
}  // namespace inferturbo
