// External-storage shuffle: with a spill directory configured, every
// shuffle block round-trips through disk between the producer and
// reducer halves of a round, and results stay bit-identical.
#include <gtest/gtest.h>

#include <filesystem>

#include "src/common/io_fault.h"
#include "src/graph/datasets.h"
#include "src/inference/inferturbo_mapreduce.h"
#include "src/mapreduce/mapreduce_engine.h"
#include "src/nn/model.h"

namespace inferturbo {
namespace {

TEST(SpillTest, EngineRoundTripsBlocksThroughDisk) {
  const std::string dir = testing::TempDir() + "/spill_engine";
  std::filesystem::create_directories(dir);

  const auto run = [&](bool spill) {
    MapReduceJob::Options options;
    options.num_instances = 3;
    if (spill) options.spill_directory = dir;
    MapReduceJob job(options);
    job.RunMap([](std::int64_t instance, MrEmitter* emitter) {
      for (int i = 0; i < 20; ++i) {
        MrValue v;
        v.src = instance;
        v.floats = {static_cast<float>(i), static_cast<float>(instance)};
        v.ids = {instance * 100 + i};
        emitter->Emit(i % 7, std::move(v));
      }
    });
    float checksum = 0.0f;
    job.RunReduce(
        [&checksum](std::int64_t key, std::span<MrValue> values,
                    MrEmitter* emitter) {
          MrValue out;
          float sum = 0.0f;
          for (const MrValue& v : values) {
            sum += v.floats[0] + v.floats[1] +
                   static_cast<float>(v.ids[0] % 97);
          }
          checksum += sum;
          out.floats = {sum};
          emitter->Emit(key, std::move(out));
        },
        nullptr);
    EXPECT_EQ(spill, job.spill_bytes_written() > 0);
    return checksum;
  };
  EXPECT_EQ(run(false), run(true));
  // Spill files are cleaned up after being consumed.
  EXPECT_TRUE(std::filesystem::is_empty(dir));
}

TEST(SpillTest, InferenceWithSpillMatchesInMemory) {
  const std::string dir = testing::TempDir() + "/spill_inference";
  std::filesystem::create_directories(dir);

  PowerLawConfig config;
  config.num_nodes = 300;
  config.avg_degree = 6.0;
  config.seed = 7;
  const Dataset d = MakePowerLawDataset(config, /*feature_dim=*/10);
  ModelConfig mc;
  mc.input_dim = 10;
  mc.hidden_dim = 8;
  mc.num_classes = 2;
  mc.num_layers = 2;
  const std::unique_ptr<GnnModel> model = MakeSageModel(mc);

  InferTurboOptions in_memory;
  in_memory.num_workers = 4;
  in_memory.strategies.partial_gather = true;
  const Result<InferenceResult> reference =
      RunInferTurboMapReduce(d.graph, *model, in_memory);
  ASSERT_TRUE(reference.ok());

  InferTurboOptions spilled = in_memory;
  spilled.mr_spill_directory = dir;
  const Result<InferenceResult> via_disk =
      RunInferTurboMapReduce(d.graph, *model, spilled);
  ASSERT_TRUE(via_disk.ok()) << via_disk.status().ToString();
  EXPECT_TRUE(via_disk->logits.ApproxEquals(reference->logits, 0.0f));
}

// Shared fixture-style setup for the fault-injection tests below.
struct SpillFaultRig {
  Dataset d;
  std::unique_ptr<GnnModel> model;
  Result<InferenceResult> reference = Status::Internal("not run");
  InferTurboOptions spilled;

  explicit SpillFaultRig(const std::string& dir_name) {
    const std::string dir = testing::TempDir() + "/" + dir_name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    PowerLawConfig config;
    config.num_nodes = 300;
    config.avg_degree = 6.0;
    config.seed = 7;
    d = MakePowerLawDataset(config, /*feature_dim=*/10);
    ModelConfig mc;
    mc.input_dim = 10;
    mc.hidden_dim = 8;
    mc.num_classes = 2;
    mc.num_layers = 2;
    model = MakeSageModel(mc);
    InferTurboOptions in_memory;
    in_memory.num_workers = 4;
    in_memory.strategies.partial_gather = true;
    reference = RunInferTurboMapReduce(d.graph, *model, in_memory);
    spilled = in_memory;
    spilled.mr_spill_directory = dir;
  }
};

TEST(SpillTest, TransientReadFaultIsRetriedAndCounted) {
  SpillFaultRig rig("spill_read_fault");
  ASSERT_TRUE(rig.reference.ok());
  // One spill block comes back bit-flipped; the block checksum catches
  // it and the retry re-reads healthy bytes from disk.
  ScriptedIoFaultInjector injector;
  injector.Arm(IoOp::kRead, ".blk", IoFaultKind::kBitFlip, /*times=*/1);
  rig.spilled.io_fault_injector = &injector;
  const Result<InferenceResult> result =
      RunInferTurboMapReduce(rig.d.graph, *rig.model, rig.spilled);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(injector.faults_fired(), 1);
  EXPECT_GT(result->metrics.spill_read_retries, 0);
  EXPECT_TRUE(result->logits.ApproxEquals(rig.reference->logits, 0.0f));
}

TEST(SpillTest, TransientShortReadIsRetriedAndCounted) {
  SpillFaultRig rig("spill_short_read");
  ASSERT_TRUE(rig.reference.ok());
  ScriptedIoFaultInjector injector;
  injector.Arm(IoOp::kRead, ".blk", IoFaultKind::kShortRead, /*times=*/1);
  rig.spilled.io_fault_injector = &injector;
  const Result<InferenceResult> result =
      RunInferTurboMapReduce(rig.d.graph, *rig.model, rig.spilled);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->metrics.spill_read_retries, 0);
  EXPECT_TRUE(result->logits.ApproxEquals(rig.reference->logits, 0.0f));
}

TEST(SpillTest, TransientWriteFaultIsRetriedAndCounted) {
  SpillFaultRig rig("spill_write_fault");
  ASSERT_TRUE(rig.reference.ok());
  ScriptedIoFaultInjector injector;
  injector.Arm(IoOp::kWrite, ".blk", IoFaultKind::kWriteFail, /*times=*/1);
  rig.spilled.io_fault_injector = &injector;
  const Result<InferenceResult> result =
      RunInferTurboMapReduce(rig.d.graph, *rig.model, rig.spilled);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(injector.faults_fired(), 1);
  EXPECT_GT(result->metrics.spill_write_retries, 0);
  EXPECT_TRUE(result->logits.ApproxEquals(rig.reference->logits, 0.0f));
}

TEST(SpillTest, PersistentReadCorruptionSurfacesAsIoError) {
  SpillFaultRig rig("spill_persistent_fault");
  ASSERT_TRUE(rig.reference.ok());
  // Every read of one block stays corrupt: retries exhaust and the job
  // fails with a descriptive IoError instead of producing wrong logits.
  ScriptedIoFaultInjector injector;
  injector.Arm(IoOp::kRead, ".blk", IoFaultKind::kBitFlip, /*times=*/-1);
  rig.spilled.io_fault_injector = &injector;
  const Result<InferenceResult> result =
      RunInferTurboMapReduce(rig.d.graph, *rig.model, rig.spilled);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  EXPECT_NE(result.status().message().find("checksum mismatch"),
            std::string::npos)
      << result.status().ToString();
}

TEST(SpillTest, PersistentWriteFaultSurfacesAsIoError) {
  SpillFaultRig rig("spill_enospc");
  ASSERT_TRUE(rig.reference.ok());
  ScriptedIoFaultInjector injector;
  injector.Arm(IoOp::kWrite, ".blk", IoFaultKind::kNoSpace, /*times=*/-1);
  rig.spilled.io_fault_injector = &injector;
  const Result<InferenceResult> result =
      RunInferTurboMapReduce(rig.d.graph, *rig.model, rig.spilled);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  EXPECT_NE(result.status().message().find("no space"), std::string::npos)
      << result.status().ToString();
}

}  // namespace
}  // namespace inferturbo
