#include "src/common/status.h"

#include <gtest/gtest.h>

#include "src/common/result.h"

namespace inferturbo {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status s = Status::OutOfMemory("budget blown");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsOutOfMemory());
  EXPECT_EQ(s.message(), "budget blown");
  EXPECT_EQ(s.ToString(), "OutOfMemory: budget blown");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument),
            "InvalidArgument");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIoError), "IoError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
            "DeadlineExceeded");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnavailable), "Unavailable");
}

TEST(StatusTest, DeadlineExceededIsDistinguishableByCode) {
  const Status s = Status::DeadlineExceeded("attempt 2 over 500ms budget");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsDeadlineExceeded());
  EXPECT_FALSE(s.IsUnavailable());
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(s.ToString(), "DeadlineExceeded: attempt 2 over 500ms budget");
}

TEST(StatusTest, UnavailableIsDistinguishableByCode) {
  const Status s = Status::Unavailable("transient fault injected");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_FALSE(s.IsDeadlineExceeded());
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(s.ToString(), "Unavailable: transient fault injected");
}

Status FailsThrough() {
  INFERTURBO_RETURN_NOT_OK(Status::Aborted("inner"));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_EQ(FailsThrough(), Status::Aborted("inner"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "payload");
}

Status UsesAssignOrReturn(bool fail, int* out) {
  auto make = [&]() -> Result<int> {
    if (fail) return Status::Internal("nope");
    return 7;
  };
  INFERTURBO_ASSIGN_OR_RETURN(*out, make());
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnBothPaths) {
  int out = 0;
  EXPECT_TRUE(UsesAssignOrReturn(false, &out).ok());
  EXPECT_EQ(out, 7);
  EXPECT_EQ(UsesAssignOrReturn(true, &out), Status::Internal("nope"));
}

}  // namespace
}  // namespace inferturbo
