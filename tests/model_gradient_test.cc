// End-to-end gradient checks: for every model kind, the analytic
// gradient of the full pipeline — layers, head, loss — matches central
// finite differences on every parameter entry. This is the property
// that makes the mini-batch training half of the system trustworthy,
// and it pins the composition of every autograd operator at once.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/graph/datasets.h"
#include "src/nn/model.h"
#include "src/tensor/autograd.h"

namespace inferturbo {
namespace {

struct GraphFixture {
  Tensor features;
  Tensor edge_features;
  std::vector<std::int64_t> src;
  std::vector<std::int64_t> dst;
  std::vector<std::int64_t> labels;
  std::int64_t num_nodes;
};

GraphFixture SmallFixture(std::int64_t num_classes) {
  Rng rng(3);
  GraphFixture g;
  g.num_nodes = 12;
  g.features = Tensor::RandomNormal(g.num_nodes, 5, 1.0f, &rng);
  g.edge_features = Tensor::RandomNormal(40, 2, 1.0f, &rng);
  for (int e = 0; e < 40; ++e) {
    g.src.push_back(static_cast<std::int64_t>(rng.NextBounded(12)));
    g.dst.push_back(static_cast<std::int64_t>(rng.NextBounded(12)));
  }
  for (std::int64_t v = 0; v < g.num_nodes; ++v) {
    g.labels.push_back(static_cast<std::int64_t>(
        rng.NextBounded(static_cast<std::uint64_t>(num_classes))));
  }
  return g;
}

class ModelGradientTest : public testing::TestWithParam<std::string> {};

TEST_P(ModelGradientTest, AnalyticMatchesFiniteDifferences) {
  const std::string kind = GetParam();
  ModelConfig config;
  config.input_dim = 5;
  config.hidden_dim = 4;
  config.num_classes = 3;
  config.num_layers = 2;
  config.heads = 2;
  config.edge_feature_dim = kind == "edge_sage" ? 2 : 0;
  config.seed = 7;
  const std::unique_ptr<GnnModel> model =
      MakeModel(kind, config).ValueOrDie();
  const GraphFixture g = SmallFixture(config.num_classes);

  const auto loss_value = [&]() -> ag::VarPtr {
    ag::VarPtr h = ag::Constant(g.features);
    for (std::int64_t l = 0; l < model->num_layers(); ++l) {
      h = model->layer(l).ForwardAg(
          h, g.src, g.dst, g.num_nodes,
          kind == "edge_sage" ? &g.edge_features : nullptr);
    }
    return ag::SoftmaxCrossEntropyLoss(model->PredictLogitsAg(h), g.labels);
  };

  ag::VarPtr loss = loss_value();
  ag::Backward(loss);

  const std::vector<ag::VarPtr> params = model->Parameters();
  // ReLU/LeakyReLU kinks make central differences unreliable when a
  // perturbation flips an activation (bias parameters start exactly at
  // the kink). Use a small epsilon plus a relative tolerance, and
  // allow a bounded number of kink hits overall.
  const float epsilon = 5e-3f;
  std::int64_t checked = 0;
  std::int64_t kink_hits = 0;
  for (std::size_t p = 0; p < params.size(); ++p) {
    Tensor analytic = params[p]->grad;
    if (analytic.empty()) {
      analytic = Tensor(params[p]->value.rows(), params[p]->value.cols());
    }
    // Sample a handful of entries per parameter — full sweeps are
    // covered per-op in autograd_test; this pins the composition.
    Rng pick(100 + p);
    const std::int64_t samples =
        std::min<std::int64_t>(4, params[p]->value.size());
    for (std::int64_t s = 0; s < samples; ++s) {
      const std::int64_t i = static_cast<std::int64_t>(pick.NextBounded(
          static_cast<std::uint64_t>(params[p]->value.size())));
      const float saved = params[p]->value.data()[i];
      params[p]->value.data()[i] = saved + epsilon;
      const float up = loss_value()->value.At(0, 0);
      params[p]->value.data()[i] = saved - epsilon;
      const float down = loss_value()->value.At(0, 0);
      params[p]->value.data()[i] = saved;
      const float numeric = (up - down) / (2.0f * epsilon);
      const float tolerance =
          1.5e-2f + 0.05f * std::fabs(numeric);
      if (std::fabs(analytic.data()[i] - numeric) > tolerance) {
        ++kink_hits;
      }
      ++checked;
    }
    params[p]->ZeroGrad();
  }
  EXPECT_GT(checked, 8);
  EXPECT_LE(kink_hits, checked / 10)
      << kind << ": too many gradient mismatches to blame on kinks";
}

INSTANTIATE_TEST_SUITE_P(AllModelKinds, ModelGradientTest,
                         testing::Values("sage", "gcn", "gat", "gin",
                                         "pool_sage", "edge_sage"));

}  // namespace
}  // namespace inferturbo
