// Fault tolerance — the system property the paper inherits from its
// substrates (§I: "it gains good system properties (e.g., scalability,
// fault tolerance) of those mature infrastructures"). These tests
// inject worker/task failures mid-job and require the recovered run to
// produce *bit-identical* results to an undisturbed one.
#include <gtest/gtest.h>

#include <set>

#include "src/graph/datasets.h"
#include "src/inference/inferturbo_mapreduce.h"
#include "src/inference/inferturbo_pregel.h"
#include "src/nn/model.h"

namespace inferturbo {
namespace {

Dataset SmallGraph() {
  PowerLawConfig config;
  config.num_nodes = 500;
  config.avg_degree = 6.0;
  config.seed = 3;
  return MakePowerLawDataset(config, /*feature_dim=*/12);
}

std::unique_ptr<GnnModel> SmallModel(const Graph& g) {
  ModelConfig config;
  config.input_dim = g.feature_dim();
  config.hidden_dim = 8;
  config.num_classes = g.num_classes();
  config.num_layers = 3;  // enough supersteps to fail in the middle
  return MakeSageModel(config);
}

TEST(PregelFaultToleranceTest, RecoversFromSingleWorkerCrash) {
  const Dataset d = SmallGraph();
  const std::unique_ptr<GnnModel> model = SmallModel(d.graph);

  InferTurboOptions clean;
  clean.num_workers = 4;
  clean.strategies.partial_gather = true;
  const Result<InferenceResult> reference =
      RunInferTurboPregel(d.graph, *model, clean);
  ASSERT_TRUE(reference.ok());

  InferTurboOptions faulty = clean;
  faulty.checkpoint_interval = 1;
  // Worker 2 crashes once, in superstep 2.
  auto fired = std::make_shared<bool>(false);
  faulty.failure_injector = [fired](std::int64_t step, std::int64_t worker) {
    if (step == 2 && worker == 2 && !*fired) {
      *fired = true;
      return true;
    }
    return false;
  };
  const Result<InferenceResult> recovered =
      RunInferTurboPregel(d.graph, *model, faulty);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(faulty.failures_recovered, 1);
  EXPECT_TRUE(recovered->logits.ApproxEquals(reference->logits, 0.0f))
      << "recovered run must be bit-identical";
  // The replayed superstep shows up as extra accounted work.
  EXPECT_EQ(recovered->metrics.num_steps(),
            reference->metrics.num_steps() + 1);
}

TEST(PregelFaultToleranceTest, RecoversFromRepeatedCrashes) {
  const Dataset d = SmallGraph();
  const std::unique_ptr<GnnModel> model = SmallModel(d.graph);

  InferTurboOptions clean;
  clean.num_workers = 4;
  const Result<InferenceResult> reference =
      RunInferTurboPregel(d.graph, *model, clean);
  ASSERT_TRUE(reference.ok());

  InferTurboOptions faulty = clean;
  faulty.checkpoint_interval = 2;
  // Three distinct crashes across different steps/workers.
  auto remaining = std::make_shared<std::set<std::pair<std::int64_t,
                                                       std::int64_t>>>();
  remaining->insert({1, 0});
  remaining->insert({2, 3});
  remaining->insert({3, 1});
  faulty.failure_injector = [remaining](std::int64_t step,
                                        std::int64_t worker) {
    return remaining->erase({step, worker}) > 0;
  };
  const Result<InferenceResult> recovered =
      RunInferTurboPregel(d.graph, *model, faulty);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(faulty.failures_recovered, 3);
  EXPECT_TRUE(recovered->logits.ApproxEquals(reference->logits, 0.0f));
}

TEST(PregelFaultToleranceTest, CheckpointIntervalControlsReplayDepth) {
  const Dataset d = SmallGraph();
  const std::unique_ptr<GnnModel> model = SmallModel(d.graph);
  // Interval 4 on a 4-superstep job -> only step 0 is checkpointed, so
  // a crash at step 3 replays steps 0..3 (4 extra metric steps... the
  // aborted attempt plus three replayed ones = job steps + 4 - 1 + 1).
  InferTurboOptions clean;
  clean.num_workers = 3;
  const Result<InferenceResult> reference =
      RunInferTurboPregel(d.graph, *model, clean);
  ASSERT_TRUE(reference.ok());

  InferTurboOptions faulty = clean;
  faulty.checkpoint_interval = 4;
  auto fired = std::make_shared<bool>(false);
  faulty.failure_injector = [fired](std::int64_t step, std::int64_t) {
    if (step == 3 && !*fired) {
      *fired = true;
      return true;
    }
    return false;
  };
  const Result<InferenceResult> recovered =
      RunInferTurboPregel(d.graph, *model, faulty);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(recovered->logits.ApproxEquals(reference->logits, 0.0f));
  // Replay from step 0: aborted attempt at step 3 + steps 0,1,2 redone.
  EXPECT_EQ(recovered->metrics.num_steps(),
            reference->metrics.num_steps() + 4);
}

TEST(MapReduceFaultToleranceTest, ReExecutesFailedReduceTask) {
  const Dataset d = SmallGraph();
  const std::unique_ptr<GnnModel> model = SmallModel(d.graph);

  InferTurboOptions clean;
  clean.num_workers = 4;
  clean.strategies.partial_gather = true;
  const Result<InferenceResult> reference =
      RunInferTurboMapReduce(d.graph, *model, clean);
  ASSERT_TRUE(reference.ok());

  InferTurboOptions faulty = clean;
  auto fired = std::make_shared<bool>(false);
  faulty.failure_injector = [fired](std::int64_t stage,
                                    std::int64_t instance) {
    if (stage == 2 && instance == 1 && !*fired) {
      *fired = true;
      return true;
    }
    return false;
  };
  const Result<InferenceResult> recovered =
      RunInferTurboMapReduce(d.graph, *model, faulty);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(faulty.failures_recovered, 1);
  EXPECT_TRUE(recovered->logits.ApproxEquals(reference->logits, 0.0f));
  // Unlike Pregel's rollback, only the failed task re-runs: stage
  // count is unchanged; the retried instance just worked longer.
  EXPECT_EQ(recovered->metrics.num_steps(),
            reference->metrics.num_steps());
}

TEST(MapReduceFaultToleranceTest, SurvivesManyFailures) {
  const Dataset d = SmallGraph();
  const std::unique_ptr<GnnModel> model = SmallModel(d.graph);

  InferTurboOptions clean;
  clean.num_workers = 4;
  const Result<InferenceResult> reference =
      RunInferTurboMapReduce(d.graph, *model, clean);
  ASSERT_TRUE(reference.ok());

  InferTurboOptions faulty = clean;
  // Every instance fails once in every reduce stage.
  auto counts = std::make_shared<std::map<std::pair<std::int64_t,
                                                    std::int64_t>,
                                          int>>();
  faulty.failure_injector = [counts](std::int64_t stage,
                                     std::int64_t instance) {
    return (*counts)[{stage, instance}]++ == 0;
  };
  const Result<InferenceResult> recovered =
      RunInferTurboMapReduce(d.graph, *model, faulty);
  ASSERT_TRUE(recovered.ok());
  EXPECT_GT(faulty.failures_recovered, 4);
  EXPECT_TRUE(recovered->logits.ApproxEquals(reference->logits, 0.0f));
}

TEST(PregelFaultToleranceTest, RecoveryReplaysBroadcastBoard) {
  // With the broadcast strategy on, hub payloads live on the engine's
  // board between supersteps; the checkpoint must capture it or the
  // replayed superstep would resolve stale (or missing) references.
  PowerLawConfig config;
  config.num_nodes = 400;
  config.avg_degree = 8.0;
  config.alpha = 1.5;
  config.skew = PowerLawSkew::kOut;  // guarantees hubs -> board traffic
  config.seed = 23;
  const Dataset d = MakePowerLawDataset(config, /*feature_dim=*/10);
  const std::unique_ptr<GnnModel> model = SmallModel(d.graph);

  InferTurboOptions clean;
  clean.num_workers = 4;
  clean.strategies.broadcast = true;
  clean.strategies.threshold_override = 10;
  const Result<InferenceResult> reference =
      RunInferTurboPregel(d.graph, *model, clean);
  ASSERT_TRUE(reference.ok());

  InferTurboOptions faulty = clean;
  faulty.checkpoint_interval = 1;
  auto fired = std::make_shared<bool>(false);
  faulty.failure_injector = [fired](std::int64_t step, std::int64_t worker) {
    // Crash in a middle superstep, after broadcast payloads were
    // published and references are in flight.
    if (step == 2 && worker == 1 && !*fired) {
      *fired = true;
      return true;
    }
    return false;
  };
  const Result<InferenceResult> recovered =
      RunInferTurboPregel(d.graph, *model, faulty);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(faulty.failures_recovered, 1);
  EXPECT_TRUE(recovered->logits.ApproxEquals(reference->logits, 0.0f));
}

TEST(PregelFaultToleranceTest, FailureWithoutCheckpointingIsCleanError) {
  // A worker failure with checkpointing disabled is unrecoverable, but
  // it must surface as a Status the caller can handle — not a process
  // abort.
  const Dataset d = SmallGraph();
  const std::unique_ptr<GnnModel> model = SmallModel(d.graph);

  InferTurboOptions faulty;
  faulty.num_workers = 4;
  faulty.checkpoint_interval = 0;  // explicitly off
  auto fired = std::make_shared<bool>(false);
  faulty.failure_injector = [fired](std::int64_t step, std::int64_t worker) {
    if (step == 1 && worker == 0 && !*fired) {
      *fired = true;
      return true;
    }
    return false;
  };
  const Result<InferenceResult> result =
      RunInferTurboPregel(d.graph, *model, faulty);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kAborted);
  EXPECT_NE(result.status().message().find("checkpointing is disabled"),
            std::string::npos)
      << result.status().ToString();
  EXPECT_EQ(faulty.failures_recovered, 0);
}

}  // namespace
}  // namespace inferturbo
