// Observability-plane acceptance: the perf-counter profiling layer
// (graceful fallback included — CI containers routinely forbid
// perf_event_open), the lock-free flight recorder under multi-threaded
// hammering and ring wrap, incomplete-span drains, the serve-mode
// timeline sampler's JSONL output, report_diff gating semantics, and
// the plane-wide zero-perturbation contract: every switch on at once
// must not move a single logit bit on either backend.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/atomic_file.h"
#include "src/graph/datasets.h"
#include "src/inference/inferturbo_mapreduce.h"
#include "src/inference/inferturbo_pregel.h"
#include "src/nn/model.h"
#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/json.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/perf_counters.h"
#include "src/telemetry/report_diff.h"
#include "src/telemetry/timeline.h"
#include "src/telemetry/trace.h"
#include "src/tensor/kernels/kernel_stats.h"

namespace inferturbo {
namespace {

/// Every test restores all four switches to their defaults (off) and
/// clears the ring/trace/registry so cases cannot observe each other.
class ObservabilityTest : public ::testing::Test {
 protected:
  void SetUp() override { ResetAll(); }
  void TearDown() override { ResetAll(); }

  static void ResetAll() {
    SetMetricsEnabled(false);
    SetTracingEnabled(false);
    SetProfilingEnabled(false);
    SetFlightRecorderEnabled(false);
    SetFlightRecordPath("");
    GlobalMetrics().ResetValues();
    ClearTrace();
    ResetFlightRecorder();
  }
};

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// --- perf counters ---------------------------------------------------

TEST_F(ObservabilityTest, PerfCountersDisabledReadIsInvalid) {
  ASSERT_FALSE(ProfilingEnabled());
  const PerfCounterValues values = ReadThreadPerfCounters();
  EXPECT_FALSE(values.valid);
  EXPECT_EQ(values.cycles, 0);
}

TEST_F(ObservabilityTest, PerfCountersSupportOrExplicitReason) {
  // The availability probe must commit to exactly one of two states:
  // usable counters, or a non-empty stable fallback reason. CI
  // containers commonly deny perf_event_open, so both arms are real.
  if (PerfCountersSupported()) {
    EXPECT_TRUE(PerfCountersUnavailableReason().empty());
    SetProfilingEnabled(true);
    const PerfCounterValues values = ReadThreadPerfCounters();
    EXPECT_TRUE(values.valid);
    EXPECT_GT(values.cycles, 0);
  } else {
    EXPECT_FALSE(PerfCountersUnavailableReason().empty());
    SetProfilingEnabled(true);
    const PerfCounterValues values = ReadThreadPerfCounters();
    EXPECT_FALSE(values.valid);
  }
}

TEST_F(ObservabilityTest, PerfCounterScopeAccumulateForm) {
  SetProfilingEnabled(true);
  PerfCounterValues out;
  {
    PerfCounterScope scope("obs_test", &out);
    // Burn a few instructions so a live counter has something to see.
    volatile std::int64_t sink = 0;
    for (int i = 0; i < 10000; ++i) sink = sink + i;
  }
  if (PerfCountersSupported()) {
    EXPECT_TRUE(out.valid);
    EXPECT_GT(out.cycles, 0);
    EXPECT_GT(out.instructions, 0);
  } else {
    EXPECT_FALSE(out.valid);
    EXPECT_EQ(out.cycles, 0);
  }
}

TEST_F(ObservabilityTest, PerfCounterScopeRegistryForm) {
  SetProfilingEnabled(true);
  {
    PerfCounterScope scope("obs_registry");
    volatile std::int64_t sink = 0;
    for (int i = 0; i < 10000; ++i) sink = sink + i;
  }
  Counter* scopes = GlobalMetrics().GetCounter("profile.obs_registry.scopes");
  Counter* cycles = GlobalMetrics().GetCounter("profile.obs_registry.cycles");
  if (PerfCountersSupported()) {
    EXPECT_EQ(scopes->value(), 1);
    EXPECT_GT(cycles->value(), 0);
  } else {
    // Fallback: the scope disarms, nothing accumulates — and nothing
    // crashes.
    EXPECT_EQ(scopes->value(), 0);
    EXPECT_EQ(cycles->value(), 0);
  }
}

TEST_F(ObservabilityTest, PerfCounterValuesArithmetic) {
  PerfCounterValues a;
  a.cycles = 100;
  a.instructions = 250;
  a.llc_misses = 7;
  a.stalled_cycles = 20;
  a.valid = true;
  PerfCounterValues b;
  b.cycles = 40;
  b.instructions = 50;
  b.llc_misses = 2;
  b.stalled_cycles = 5;
  b.valid = true;

  const PerfCounterValues delta = a - b;
  EXPECT_EQ(delta.cycles, 60);
  EXPECT_EQ(delta.instructions, 200);
  EXPECT_EQ(delta.llc_misses, 5);
  EXPECT_EQ(delta.stalled_cycles, 15);

  PerfCounterValues sum = b;
  sum += delta;
  EXPECT_EQ(sum.cycles, a.cycles);
  EXPECT_EQ(sum.instructions, a.instructions);

  EXPECT_DOUBLE_EQ(a.ipc(), 2.5);
  PerfCounterValues zero;
  EXPECT_DOUBLE_EQ(zero.ipc(), 0.0);  // no division by zero cycles
}

TEST_F(ObservabilityTest, ProfilingReportJsonShape) {
  SetProfilingEnabled(true);
  const JsonValue report = ProfilingReportJson();
  ASSERT_TRUE(report.is_object());
  const JsonValue* available = report.Find("available");
  const JsonValue* enabled = report.Find("enabled");
  ASSERT_NE(available, nullptr);
  ASSERT_NE(enabled, nullptr);
  EXPECT_TRUE(available->is_bool());
  EXPECT_TRUE(enabled->as_bool());
  if (!available->as_bool()) {
    const JsonValue* reason = report.Find("fallback_reason");
    ASSERT_NE(reason, nullptr);
    EXPECT_FALSE(reason->as_string().empty());
  }
}

// --- analytic kernel work (roofline inputs) --------------------------

TEST_F(ObservabilityTest, KernelWorkEstimates) {
  const kernels::KernelWork mm = kernels::MatMulWork(8, 16, 4);
  EXPECT_EQ(mm.flops, 2 * 8 * 16 * 4);
  EXPECT_EQ(mm.bytes, 4 * (8 * 16 + 16 * 4 + 8 * 4));
  EXPECT_GT(mm.BytesPerFlop(), 0.0);

  // Pure-movement kernels have zero FLOPs; the intensity helper must
  // not divide by that zero.
  const kernels::KernelWork gather = kernels::GatherWork(32, 8);
  EXPECT_EQ(gather.flops, 0);
  EXPECT_GT(gather.bytes, 0);
  EXPECT_DOUBLE_EQ(gather.BytesPerFlop(), 0.0);

  const kernels::KernelWork fold = kernels::SegmentFoldWork(100, 8);
  EXPECT_EQ(fold.flops, 100 * 8);
  const kernels::KernelWork mean = kernels::SegmentMeanWork(100, 8, 10);
  EXPECT_GT(mean.flops, fold.flops);  // fold plus the per-segment divide
  EXPECT_GT(kernels::ScatterAddWork(64, 8).bytes, 0);
}

// --- flight recorder -------------------------------------------------

TEST_F(ObservabilityTest, FlightRecorderDisabledIsNoOp) {
  RecordFlightEvent(FlightEventKind::kMark, "obs/ignored", 1, 2);
  EXPECT_EQ(FlightRecordTotalEvents(), 0u);
  EXPECT_TRUE(FlightRecordSnapshot().empty());
}

TEST_F(ObservabilityTest, FlightRecorderRecordsInOrder) {
  SetFlightRecorderEnabled(true);
  RecordFlightEvent(FlightEventKind::kMark, "obs/first", 1, 10);
  RecordFlightEvent(FlightEventKind::kRetry, "obs/second", 2, 20);
  RecordFlightEvent(FlightEventKind::kQuarantine, "obs/third", 3, 30);

  const std::vector<FlightEvent> events = FlightRecordSnapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(std::string_view(events[0].name), "obs/first");
  EXPECT_EQ(events[0].kind, FlightEventKind::kMark);
  EXPECT_EQ(events[0].a, 1);
  EXPECT_EQ(events[0].b, 10);
  EXPECT_EQ(std::string_view(events[2].name), "obs/third");
  EXPECT_LT(events[0].seq, events[1].seq);
  EXPECT_LT(events[1].seq, events[2].seq);
  EXPECT_EQ(FlightRecordTotalEvents(), 3u);
}

TEST_F(ObservabilityTest, FlightRecorderRingWrapKeepsNewest) {
  SetFlightRecorderEnabled(true);
  constexpr std::int64_t kEvents = 10000;  // > ring capacity (4096)
  for (std::int64_t i = 0; i < kEvents; ++i) {
    RecordFlightEvent(FlightEventKind::kMark, "obs/wrap", i);
  }
  EXPECT_EQ(FlightRecordTotalEvents(), static_cast<std::uint64_t>(kEvents));

  const std::vector<FlightEvent> events = FlightRecordSnapshot();
  ASSERT_FALSE(events.empty());
  EXPECT_LE(events.size(), 4096u);
  // Oldest-first, and the newest event survived the wrap.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq);
  }
  EXPECT_EQ(events.back().a, kEvents - 1);

  const JsonValue record = BuildFlightRecord("wrap test");
  EXPECT_EQ(record.Find("events_recorded")->as_int(), kEvents);
  EXPECT_GT(record.Find("events_dropped")->as_int(), 0);
}

TEST_F(ObservabilityTest, FlightRecorderMultiThreadedHammer) {
  // The writer path is wait-free and the TSan preset runs this test:
  // 8 threads race 10k appends each while a reader keeps snapshotting.
  SetFlightRecorderEnabled(true);
  constexpr int kThreads = 8;
  constexpr std::int64_t kPerThread = 10000;
  std::atomic<bool> stop{false};

  std::thread reader([&stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::vector<FlightEvent> events = FlightRecordSnapshot();
      for (const FlightEvent& e : events) {
        // Torn slots must be skipped, never surfaced half-written.
        ASSERT_NE(e.name, nullptr);
        ASSERT_EQ(std::string_view(e.name), "obs/hammer");
      }
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([t] {
      for (std::int64_t i = 0; i < kPerThread; ++i) {
        RecordFlightEvent(FlightEventKind::kMark, "obs/hammer", t, i);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(FlightRecordTotalEvents(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  const std::vector<FlightEvent> events = FlightRecordSnapshot();
  EXPECT_LE(events.size(), 4096u);
  std::set<std::uint64_t> seqs;
  for (const FlightEvent& e : events) {
    EXPECT_TRUE(seqs.insert(e.seq).second) << "duplicate seq " << e.seq;
  }
}

TEST_F(ObservabilityTest, FlightRecordJsonRoundTrip) {
  SetFlightRecorderEnabled(true);
  RecordFlightEvent(FlightEventKind::kGenerationSwap, "obs/swap", 5);
  RecordFlightEvent(FlightEventKind::kEviction, "obs/evict", 2, 4096);

  const Result<JsonValue> parsed =
      ParseJson(BuildFlightRecord("unit \"test\" reason").Dump(2));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& doc = *parsed;
  EXPECT_EQ(doc.Find("schema")->as_string(), "inferturbo.flight_record.v1");
  EXPECT_EQ(doc.Find("reason")->as_string(), "unit \"test\" reason");
  EXPECT_EQ(doc.Find("events_recorded")->as_int(), 2);
  EXPECT_EQ(doc.Find("events_dropped")->as_int(), 0);
  const JsonValue::Array& events = doc.Find("events")->as_array();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].Find("kind")->as_string(), "generation_swap");
  EXPECT_EQ(events[0].Find("name")->as_string(), "obs/swap");
  EXPECT_EQ(events[0].Find("a")->as_int(), 5);
  EXPECT_EQ(events[1].Find("b")->as_int(), 4096);
  EXPECT_GE(events[1].Find("time_ns")->as_int(),
            events[0].Find("time_ns")->as_int());
}

TEST_F(ObservabilityTest, FlightEventKindNamesAreDistinct) {
  std::set<std::string_view> names;
  for (int k = 0; k <= static_cast<int>(FlightEventKind::kEngineError); ++k) {
    const std::string_view name =
        FlightEventKindName(static_cast<FlightEventKind>(k));
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(names.insert(name).second) << "duplicate kind name " << name;
  }
}

TEST_F(ObservabilityTest, DumpOnErrorWithoutPathIsNoOp) {
  SetFlightRecorderEnabled(true);
  RecordFlightEvent(FlightEventKind::kMark, "obs/pre");
  EXPECT_FALSE(DumpFlightRecordOnError("no sink configured"));
}

TEST_F(ObservabilityTest, DumpOnErrorWritesParseableRecord) {
  const std::string path = TempPath("obs_flight_dump.json");
  std::remove(path.c_str());
  // Setting the path arms recording too — the CLI relies on this.
  SetFlightRecordPath(path);
  EXPECT_TRUE(FlightRecorderEnabled());
  EXPECT_EQ(FlightRecordPath(), path);
  RecordFlightEvent(FlightEventKind::kCheckpointSave, "obs/ckpt", 3);

  ASSERT_TRUE(DumpFlightRecordOnError("synthetic engine failure"));
  const Result<JsonValue> parsed = ParseJson(Slurp(path));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("schema")->as_string(),
            "inferturbo.flight_record.v1");
  EXPECT_EQ(parsed->Find("reason")->as_string(), "synthetic engine failure");
  bool saw_ckpt = false;
  bool saw_error = false;
  for (const JsonValue& e : parsed->Find("events")->as_array()) {
    if (e.Find("name")->as_string() == "obs/ckpt") saw_ckpt = true;
    if (e.Find("kind")->as_string() == "engine_error") saw_error = true;
  }
  EXPECT_TRUE(saw_ckpt);
  EXPECT_TRUE(saw_error);  // the dump itself records the error event
  std::remove(path.c_str());
}

TEST_F(ObservabilityTest, ResetClearsRingAndCounters) {
  SetFlightRecorderEnabled(true);
  RecordFlightEvent(FlightEventKind::kMark, "obs/gone");
  ASSERT_EQ(FlightRecordTotalEvents(), 1u);
  ResetFlightRecorder();
  EXPECT_EQ(FlightRecordTotalEvents(), 0u);
  EXPECT_TRUE(FlightRecordSnapshot().empty());
}

// --- incomplete-span drain (flight recorder firing mid-superstep) ----

TEST_F(ObservabilityTest, DrainReportsOpenSpansAsIncomplete) {
  SetTracingEnabled(true);
  {
    TraceSpan closed("obs/closed");
  }
  auto open = std::make_unique<TraceSpan>("obs/open");

  std::vector<TraceEvent> events = DrainTrace();
  bool saw_closed = false;
  bool saw_open = false;
  for (const TraceEvent& e : events) {
    if (std::string_view(e.name) == "obs/closed") {
      saw_closed = true;
      EXPECT_TRUE(e.complete);
    }
    if (std::string_view(e.name) == "obs/open") {
      saw_open = true;
      EXPECT_FALSE(e.complete);
      EXPECT_GE(e.dur_ns, 0);  // start-to-drain time, not final duration
    }
  }
  EXPECT_TRUE(saw_closed);
  EXPECT_TRUE(saw_open);

  // The incomplete report did not consume the span: once it closes
  // normally, a later drain sees the completed event.
  open.reset();
  bool saw_completed = false;
  for (const TraceEvent& e : DrainTrace()) {
    if (std::string_view(e.name) == "obs/open" && e.complete) {
      saw_completed = true;
    }
  }
  EXPECT_TRUE(saw_completed);
}

// --- histogram interval deltas (the timeline's percentile source) ----

TEST_F(ObservabilityTest, HistogramSnapshotDeltaSince) {
  SetMetricsEnabled(true);
  Histogram* h = GlobalMetrics().GetHistogram("obs.delta.seconds");
  h->Observe(1e-3);
  h->Observe(1e-3);
  const HistogramSnapshot before = h->Snapshot();
  h->Observe(1.0);
  h->Observe(1.0);
  h->Observe(1.0);
  const HistogramSnapshot after = h->Snapshot();

  const HistogramSnapshot delta = after.DeltaSince(before);
  EXPECT_EQ(delta.count, 3);
  EXPECT_NEAR(delta.sum, 3.0, 1e-9);
  // All interval observations were ~1s, so the interval p50 must sit in
  // that bucket's range — far above the earlier 1ms observations.
  EXPECT_GT(delta.Percentile(0.5), 0.5);
  EXPECT_LT(before.Percentile(0.5), 0.01);
}

// --- timeline sampler ------------------------------------------------

TEST_F(ObservabilityTest, TimelineSamplerEmitsParseableJsonl) {
  SetMetricsEnabled(true);
  Counter* queries = GlobalMetrics().GetCounter("obs.timeline.queries");
  queries->Add(5);

  const std::string path = TempPath("obs_timeline.jsonl");
  std::remove(path.c_str());
  TimelineOptions options;
  options.path = path;
  options.interval_seconds = 0.05;
  options.extra = [] {
    return JsonValue(JsonValue::Object{
        {"serving", JsonValue(JsonValue::Object{{"epoch", JsonValue(7)}})}});
  };
  {
    TimelineSampler sampler(options);
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    queries->Add(3);
    sampler.Stop();
    EXPECT_GE(sampler.samples(), 2);  // >= one tick plus the final sample
  }

  std::ifstream in(path);
  std::string line;
  std::int64_t lines = 0;
  std::int64_t last_seq = -1;
  std::int64_t final_total = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    const Result<JsonValue> parsed = ParseJson(line);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << line;
    const JsonValue& doc = *parsed;
    EXPECT_EQ(doc.Find("schema")->as_string(), "inferturbo.run_timeline.v1");
    const std::int64_t seq = doc.Find("seq")->as_int();
    EXPECT_GT(seq, last_seq);  // strictly increasing, no duplicate final
    last_seq = seq;
    EXPECT_GE(doc.Find("uptime_seconds")->as_double(), 0.0);
    const JsonValue* counter =
        doc.Find("counters")->Find("obs.timeline.queries");
    ASSERT_NE(counter, nullptr);
    final_total = counter->Find("total")->as_int();
    EXPECT_GE(counter->Find("delta")->as_int(), 0);
    // extra() members are merged into every line.
    EXPECT_EQ(doc.Find("serving")->Find("epoch")->as_int(), 7);
  }
  EXPECT_GE(lines, 2);
  EXPECT_EQ(final_total, 8);  // the final sample saw both Add calls
  std::remove(path.c_str());
}

// --- report diffing --------------------------------------------------

TEST_F(ObservabilityTest, ClassifyMetricKeyDirections) {
  EXPECT_EQ(ClassifyMetricKey("seconds"), MetricDirection::kHigherIsWorse);
  EXPECT_EQ(ClassifyMetricKey("p99_seconds"), MetricDirection::kHigherIsWorse);
  EXPECT_EQ(ClassifyMetricKey("speedup"), MetricDirection::kLowerIsWorse);
  EXPECT_EQ(ClassifyMetricKey("queries_per_second"),
            MetricDirection::kLowerIsWorse);
  EXPECT_EQ(ClassifyMetricKey("checksum"), MetricDirection::kExact);
  EXPECT_EQ(ClassifyMetricKey("logits_crc32"), MetricDirection::kExact);
  EXPECT_EQ(ClassifyMetricKey("threads"), MetricDirection::kInformational);
}

JsonValue BenchDoc(double speedup, const std::string& crc) {
  return JsonValue(JsonValue::Object{
      {"results",
       JsonValue(JsonValue::Array{JsonValue(JsonValue::Object{
           {"op", JsonValue("matmul")},
           {"threads", JsonValue(4)},
           {"speedup", JsonValue(speedup)},
           {"checksum", JsonValue(crc)},
       })})},
  });
}

TEST_F(ObservabilityTest, DiffReportsGatesRegressionNotImprovement) {
  ReportDiffOptions options;
  options.tolerance = 0.25;

  const ReportDiffResult same =
      DiffReports(BenchDoc(3.0, "abc"), BenchDoc(3.0, "abc"), options);
  EXPECT_TRUE(same.ok);
  EXPECT_GE(same.compared, 1);

  // A lower-is-worse key dropping past tolerance fails...
  const ReportDiffResult worse =
      DiffReports(BenchDoc(3.0, "abc"), BenchDoc(1.5, "abc"), options);
  EXPECT_FALSE(worse.ok);
  ASSERT_FALSE(worse.findings.empty());
  EXPECT_EQ(worse.findings[0].kind, "regression");

  // ...improving past tolerance does not.
  const ReportDiffResult better =
      DiffReports(BenchDoc(3.0, "abc"), BenchDoc(9.0, "abc"), options);
  EXPECT_TRUE(better.ok);

  // A small move inside tolerance passes.
  const ReportDiffResult wiggle =
      DiffReports(BenchDoc(3.0, "abc"), BenchDoc(2.8, "abc"), options);
  EXPECT_TRUE(wiggle.ok);
}

TEST_F(ObservabilityTest, DiffReportsExactKeysIgnoreTolerance) {
  ReportDiffOptions options;
  options.tolerance = 100.0;  // tolerance must not excuse exact keys
  const ReportDiffResult result =
      DiffReports(BenchDoc(3.0, "abc"), BenchDoc(3.0, "def"), options);
  EXPECT_FALSE(result.ok);
  ASSERT_FALSE(result.findings.empty());
  EXPECT_EQ(result.findings[0].kind, "exact_mismatch");
}

TEST_F(ObservabilityTest, DiffReportsKeyFiltersAndMissing) {
  ReportDiffOptions options;
  options.key_filters = {"speedup"};
  // With the filter, only speedup is gated — but the exact-class
  // checksum is always gated regardless.
  const ReportDiffResult filtered =
      DiffReports(BenchDoc(3.0, "abc"), BenchDoc(1.0, "abc"), options);
  EXPECT_FALSE(filtered.ok);

  JsonValue empty(JsonValue::Object{
      {"results", JsonValue(JsonValue::Array{})},
  });
  ReportDiffOptions strict;
  strict.fail_on_missing = true;
  const ReportDiffResult missing =
      DiffReports(BenchDoc(3.0, "abc"), empty, strict);
  EXPECT_FALSE(missing.ok);
  EXPECT_GT(missing.missing, 0);

  // min_compared: two documents aligning zero gated values must not
  // silently pass.
  ReportDiffOptions lax;
  lax.fail_on_missing = false;
  const ReportDiffResult none = DiffReports(BenchDoc(3.0, "abc"), empty, lax);
  EXPECT_FALSE(none.ok);
  EXPECT_EQ(none.compared, 0);
}

TEST_F(ObservabilityTest, LintJsonFileValidatesJsonlWithSchema) {
  const std::string path = TempPath("obs_lint.jsonl");
  {
    std::ofstream out(path);
    out << R"({"schema": "inferturbo.run_timeline.v1", "seq": 0})" << "\n";
    out << R"({"schema": "inferturbo.run_timeline.v1", "seq": 1})" << "\n";
  }
  const Result<std::int64_t> count =
      LintJsonFile(path, "inferturbo.run_timeline.v1");
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(*count, 2);

  EXPECT_FALSE(LintJsonFile(path, "inferturbo.flight_record.v1").ok());

  {
    std::ofstream out(path);
    out << R"({"schema": "inferturbo.run_timeline.v1")" << "\n";  // truncated
  }
  EXPECT_FALSE(LintJsonFile(path, "inferturbo.run_timeline.v1").ok());
  std::remove(path.c_str());
}

// --- the plane-wide zero-perturbation contract -----------------------

Dataset ObservabilityDataset() {
  PlantedGraphConfig config;
  config.num_nodes = 300;
  config.avg_degree = 8.0;
  config.num_classes = 5;
  config.feature_dim = 12;
  config.seed = 23;
  return MakePlantedDataset("observability", config);
}

std::unique_ptr<GnnModel> ObservabilityModel(const Graph& graph) {
  ModelConfig config;
  config.input_dim = graph.feature_dim();
  config.hidden_dim = 16;
  config.num_classes = graph.num_classes();
  config.num_layers = 2;
  config.seed = 7;
  Result<std::unique_ptr<GnnModel>> model = MakeModel("sage", config);
  EXPECT_TRUE(model.ok());
  return std::move(model).ValueOrDie();
}

void ExpectBitIdentical(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::int64_t i = 0; i < a.size(); ++i) {
    // Tolerance 0.0f: the observability plane must not move a bit.
    ASSERT_EQ(a.data()[i], b.data()[i]) << "logit " << i << " diverged";
  }
}

TEST_F(ObservabilityTest, FullPlaneDoesNotChangePregelLogits) {
  const Dataset dataset = ObservabilityDataset();
  const std::unique_ptr<GnnModel> model = ObservabilityModel(dataset.graph);
  InferTurboOptions options;
  options.num_workers = 4;
  const Result<InferenceResult> base =
      RunInferTurboPregel(dataset.graph, *model, options);
  ASSERT_TRUE(base.ok()) << base.status().ToString();

  // Everything on at once: metrics, tracing, profiling, flight ring.
  SetMetricsEnabled(true);
  SetTracingEnabled(true);
  SetProfilingEnabled(true);
  SetFlightRecorderEnabled(true);
  const Result<InferenceResult> observed =
      RunInferTurboPregel(dataset.graph, *model, options);
  ASSERT_TRUE(observed.ok()) << observed.status().ToString();
  ExpectBitIdentical(base->logits, observed->logits);
  // And the plane actually observed the run: traced spans mirror into
  // the flight ring as span begin/end pairs.
  EXPECT_GT(FlightRecordTotalEvents(), 0u);
}

TEST_F(ObservabilityTest, FullPlaneDoesNotChangeMapReduceLogits) {
  const Dataset dataset = ObservabilityDataset();
  const std::unique_ptr<GnnModel> model = ObservabilityModel(dataset.graph);
  InferTurboOptions options;
  options.num_workers = 4;
  const Result<InferenceResult> base =
      RunInferTurboMapReduce(dataset.graph, *model, options);
  ASSERT_TRUE(base.ok()) << base.status().ToString();

  SetMetricsEnabled(true);
  SetTracingEnabled(true);
  SetProfilingEnabled(true);
  SetFlightRecorderEnabled(true);
  const Result<InferenceResult> observed =
      RunInferTurboMapReduce(dataset.graph, *model, options);
  ASSERT_TRUE(observed.ok()) << observed.status().ToString();
  ExpectBitIdentical(base->logits, observed->logits);
  EXPECT_GT(FlightRecordTotalEvents(), 0u);
}

}  // namespace
}  // namespace inferturbo
