#include "src/sampling/khop_sampler.h"

#include <gtest/gtest.h>

#include <set>

#include "src/graph/datasets.h"
#include "src/graph/graph_builder.h"

namespace inferturbo {
namespace {

Graph MakeLineGraph() {
  // 0 <- 1 <- 2 <- 3 <- 4 (in-edges point "leftward": i+1 -> i).
  GraphBuilder builder(5);
  for (NodeId i = 0; i + 1 < 5; ++i) builder.AddEdge(i + 1, i);
  builder.SetNodeFeatures(Tensor::Full(5, 2, 1.0f));
  return std::move(builder).Finish().ValueOrDie();
}

TEST(KHopSamplerTest, TwoHopsReachExactlyTwoLevels) {
  const Graph g = MakeLineGraph();
  KHopSampler sampler(&g);
  KHopOptions options;
  options.hops = 2;
  const std::vector<NodeId> targets = {0};
  const Subgraph sub = sampler.Sample(targets, options, nullptr);
  std::set<NodeId> nodes(sub.nodes.begin(), sub.nodes.end());
  EXPECT_EQ(nodes, (std::set<NodeId>{0, 1, 2}));
  EXPECT_EQ(sub.num_edges(), 2);
  EXPECT_EQ(sub.num_targets, 1);
  EXPECT_EQ(sub.nodes[0], 0);  // targets first
}

TEST(KHopSamplerTest, EdgesUseLocalIndices) {
  const Graph g = MakeLineGraph();
  KHopSampler sampler(&g);
  KHopOptions options;
  options.hops = 1;
  const std::vector<NodeId> targets = {2};
  const Subgraph sub = sampler.Sample(targets, options, nullptr);
  ASSERT_EQ(sub.num_edges(), 1);
  EXPECT_EQ(sub.nodes[static_cast<std::size_t>(sub.src_local[0])], 3);
  EXPECT_EQ(sub.nodes[static_cast<std::size_t>(sub.dst_local[0])], 2);
}

TEST(KHopSamplerTest, FeaturesAreGatheredPerLocalNode) {
  const Dataset d = MakeProductsLike(0.02);
  KHopSampler sampler(&d.graph);
  KHopOptions options;
  options.hops = 2;
  const std::vector<NodeId> targets = {3, 14};
  const Subgraph sub = sampler.Sample(targets, options, nullptr);
  for (std::size_t i = 0; i < sub.nodes.size(); ++i) {
    for (std::int64_t j = 0; j < d.graph.feature_dim(); ++j) {
      ASSERT_EQ(sub.features.At(static_cast<std::int64_t>(i), j),
                d.graph.node_features().At(sub.nodes[i], j));
    }
  }
}

TEST(KHopSamplerTest, FanoutCapsInEdgesPerNode) {
  const Dataset d = MakeProductsLike(0.05);
  KHopSampler sampler(&d.graph);
  KHopOptions options;
  options.hops = 1;
  options.fanout = 3;
  Rng rng(1);
  const std::vector<NodeId> targets = {0, 1, 2, 3, 4};
  const Subgraph sub = sampler.Sample(targets, options, &rng);
  std::vector<std::int64_t> per_target(5, 0);
  for (std::int64_t e = 0; e < sub.num_edges(); ++e) {
    ASSERT_LT(sub.dst_local[static_cast<std::size_t>(e)], 5);
    ++per_target[static_cast<std::size_t>(
        sub.dst_local[static_cast<std::size_t>(e)])];
  }
  for (std::int64_t c : per_target) EXPECT_LE(c, 3);
}

TEST(KHopSamplerTest, FullFanoutKeepsEveryInEdge) {
  const Dataset d = MakeProductsLike(0.02);
  KHopSampler sampler(&d.graph);
  KHopOptions options;
  options.hops = 1;
  const std::vector<NodeId> targets = {7};
  const Subgraph sub = sampler.Sample(targets, options, nullptr);
  EXPECT_EQ(sub.num_edges(), d.graph.InDegree(7));
}

TEST(KHopSamplerTest, SampledSubgraphsDifferAcrossSeeds) {
  const Dataset d = MakeProductsLike(0.05);
  KHopSampler sampler(&d.graph);
  KHopOptions options;
  options.hops = 2;
  options.fanout = 2;
  const std::vector<NodeId> targets = {11};
  Rng rng1(1), rng2(2);
  const Subgraph a = sampler.Sample(targets, options, &rng1);
  const Subgraph b = sampler.Sample(targets, options, &rng2);
  EXPECT_TRUE(a.nodes != b.nodes || a.src_local != b.src_local);
}

TEST(KHopSamplerTest, ByteSizeGrowsWithNeighborhood) {
  const Dataset d = MakeProductsLike(0.05);
  KHopSampler sampler(&d.graph);
  const std::vector<NodeId> targets = {11};
  KHopOptions one;
  one.hops = 1;
  KHopOptions two;
  two.hops = 2;
  EXPECT_LT(sampler.Sample(targets, one, nullptr).ApproxByteSize(),
            sampler.Sample(targets, two, nullptr).ApproxByteSize());
}

}  // namespace
}  // namespace inferturbo
