#include "src/nn/trainer.h"

#include <gtest/gtest.h>

#include "src/graph/datasets.h"
#include "src/graph/graph_builder.h"
#include "src/inference/reference_inference.h"
#include "src/nn/metrics.h"

namespace inferturbo {
namespace {

TrainerOptions FastOptions() {
  TrainerOptions options;
  options.epochs = 12;
  options.batch_size = 32;
  options.fanout = 8;
  options.learning_rate = 1e-2f;
  options.seed = 3;
  return options;
}

TEST(TrainerTest, LossDecreasesOnPlantedData) {
  PlantedGraphConfig config;
  config.num_nodes = 600;
  config.num_classes = 5;
  config.feature_dim = 10;
  config.homophily = 0.8;
  config.noise = 0.8;
  const Dataset d = MakePlantedDataset("trainer-loss", config);

  ModelConfig mc;
  mc.input_dim = 10;
  mc.hidden_dim = 16;
  mc.num_classes = 5;
  mc.num_layers = 2;
  std::unique_ptr<GnnModel> model = MakeSageModel(mc);
  MiniBatchTrainer trainer(&d.graph, model.get(), FastOptions());
  const Result<TrainReport> report = trainer.Train();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->steps, 0);
  EXPECT_LT(report->final_loss, report->epoch_losses.front() * 0.7);
}

TEST(TrainerTest, TrainedModelBeatsChanceOnTestSplit) {
  PlantedGraphConfig config;
  config.num_nodes = 800;
  config.num_classes = 4;
  config.feature_dim = 12;
  config.homophily = 0.8;
  config.noise = 1.0;
  const Dataset d = MakePlantedDataset("trainer-acc", config);

  ModelConfig mc;
  mc.input_dim = 12;
  mc.hidden_dim = 16;
  mc.num_classes = 4;
  mc.num_layers = 2;
  std::unique_ptr<GnnModel> model = MakeSageModel(mc);
  MiniBatchTrainer trainer(&d.graph, model.get(), FastOptions());
  ASSERT_TRUE(trainer.Train().ok());

  const Tensor logits = FullGraphReferenceLogits(*model, d.graph);
  const double acc =
      AccuracyOn(logits, d.graph.labels(), d.graph.test_nodes());
  EXPECT_GT(acc, 0.6) << "chance would be 0.25";
}

TEST(TrainerTest, MultiLabelTrainingImprovesF1) {
  const Dataset d = MakePpiLike(0.25, /*seed=*/5);
  ModelConfig mc;
  mc.input_dim = d.graph.feature_dim();
  mc.hidden_dim = 24;
  mc.num_classes = d.graph.num_classes();
  mc.num_layers = 2;
  std::unique_ptr<GnnModel> model = MakeSageModel(mc);

  const Tensor before = FullGraphReferenceLogits(*model, d.graph);
  const double f1_before =
      MicroF1On(before, d.graph.multi_labels(), d.graph.test_nodes());

  TrainerOptions options = FastOptions();
  options.epochs = 10;
  MiniBatchTrainer trainer(&d.graph, model.get(), options);
  ASSERT_TRUE(trainer.Train().ok());

  const Tensor after = FullGraphReferenceLogits(*model, d.graph);
  const double f1_after =
      MicroF1On(after, d.graph.multi_labels(), d.graph.test_nodes());
  EXPECT_GT(f1_after, f1_before + 0.1);
  EXPECT_GT(f1_after, 0.5);
}

TEST(TrainerTest, FailsWithoutTrainingSplit) {
  ModelConfig mc;
  mc.input_dim = 4;
  mc.hidden_dim = 8;
  mc.num_classes = 2;
  std::unique_ptr<GnnModel> model = MakeSageModel(mc);
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.SetNodeFeatures(Tensor(4, 4));
  builder.SetLabels({0, 1, 0, 1}, 2);
  Graph g = std::move(builder).Finish().ValueOrDie();
  MiniBatchTrainer trainer(&g, model.get(), FastOptions());
  const Result<TrainReport> report = trainer.Train();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsInvalidArgument());
}

TEST(TrainerTest, TrainingIsDeterministicUnderSeed) {
  PlantedGraphConfig config;
  config.num_nodes = 300;
  config.num_classes = 3;
  config.feature_dim = 6;
  const Dataset d = MakePlantedDataset("trainer-det", config);
  const auto train_once = [&] {
    ModelConfig mc;
    mc.input_dim = 6;
    mc.hidden_dim = 8;
    mc.num_classes = 3;
    mc.seed = 21;
    std::unique_ptr<GnnModel> model = MakeSageModel(mc);
    TrainerOptions options = FastOptions();
    options.epochs = 3;
    MiniBatchTrainer trainer(&d.graph, model.get(), options);
    EXPECT_TRUE(trainer.Train().ok());
    return FullGraphReferenceLogits(*model, d.graph);
  };
  EXPECT_TRUE(train_once().ApproxEquals(train_once(), 0.0f));
}

}  // namespace
}  // namespace inferturbo
