#include "src/tensor/segment_ops.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/tensor/ops.h"

namespace inferturbo {
namespace {

TEST(SegmentOpsTest, SegmentSumBasic) {
  Tensor v = Tensor::FromRows({{1, 1}, {2, 2}, {3, 3}});
  const std::vector<std::int64_t> ids = {0, 1, 0};
  Tensor out = SegmentSum(v, ids, 2);
  EXPECT_TRUE(out.ApproxEquals(Tensor::FromRows({{4, 4}, {2, 2}})));
}

TEST(SegmentOpsTest, SegmentSumLeavesEmptySegmentsZero) {
  Tensor v = Tensor::FromRows({{1, 1}});
  const std::vector<std::int64_t> ids = {2};
  Tensor out = SegmentSum(v, ids, 4);
  EXPECT_EQ(out.At(0, 0), 0.0f);
  EXPECT_EQ(out.At(2, 0), 1.0f);
  EXPECT_EQ(out.At(3, 0), 0.0f);
}

TEST(SegmentOpsTest, SegmentMeanDividesByCount) {
  Tensor v = Tensor::FromRows({{2, 4}, {4, 8}, {9, 9}});
  const std::vector<std::int64_t> ids = {0, 0, 1};
  Tensor out = SegmentMean(v, ids, 2);
  EXPECT_TRUE(out.ApproxEquals(Tensor::FromRows({{3, 6}, {9, 9}})));
}

TEST(SegmentOpsTest, SegmentMaxAndMin) {
  Tensor v = Tensor::FromRows({{1, -5}, {3, -1}, {-2, 0}});
  const std::vector<std::int64_t> ids = {0, 0, 0};
  EXPECT_TRUE(SegmentMax(v, ids, 1).ApproxEquals(Tensor::FromRows({{3, 0}})));
  EXPECT_TRUE(
      SegmentMin(v, ids, 1).ApproxEquals(Tensor::FromRows({{-2, -5}})));
}

TEST(SegmentOpsTest, SegmentMaxEmptySegmentIsZeroNotInf) {
  Tensor v = Tensor::FromRows({{5, 5}});
  const std::vector<std::int64_t> ids = {0};
  Tensor out = SegmentMax(v, ids, 2);
  EXPECT_EQ(out.At(1, 0), 0.0f);
  EXPECT_EQ(out.At(1, 1), 0.0f);
}

TEST(SegmentOpsTest, SegmentCounts) {
  const std::vector<std::int64_t> ids = {0, 2, 2, 2};
  const std::vector<std::int64_t> counts = SegmentCounts(ids, 3);
  EXPECT_EQ(counts, (std::vector<std::int64_t>{1, 0, 3}));
}

TEST(SegmentOpsTest, SegmentSoftmaxSumsToOnePerSegment) {
  Rng rng(9);
  Tensor logits = Tensor::RandomNormal(10, 1, 2.0f, &rng);
  std::vector<std::int64_t> ids;
  for (int i = 0; i < 10; ++i) ids.push_back(i % 3);
  Tensor alpha = SegmentSoftmax(logits, ids, 3);
  std::vector<double> sums(3, 0.0);
  for (std::int64_t i = 0; i < 10; ++i) {
    sums[static_cast<std::size_t>(ids[static_cast<std::size_t>(i)])] +=
        alpha.At(i, 0);
    EXPECT_GT(alpha.At(i, 0), 0.0f);
  }
  for (double s : sums) EXPECT_NEAR(s, 1.0, 1e-5);
}

TEST(SegmentOpsTest, SegmentSoftmaxSingletonSegmentIsOne) {
  Tensor logits = Tensor::FromRows({{-40.0f}});
  const std::vector<std::int64_t> ids = {0};
  Tensor alpha = SegmentSoftmax(logits, ids, 1);
  EXPECT_NEAR(alpha.At(0, 0), 1.0f, 1e-6f);
}

TEST(SegmentOpsTest, SegmentSoftmaxIsShiftInvariant) {
  Tensor a = Tensor::FromRows({{1.0f}, {2.0f}, {3.0f}});
  Tensor b = Tensor::FromRows({{1001.0f}, {1002.0f}, {1003.0f}});
  const std::vector<std::int64_t> ids = {0, 0, 0};
  EXPECT_TRUE(
      SegmentSoftmax(a, ids, 1).ApproxEquals(SegmentSoftmax(b, ids, 1),
                                             1e-5f));
}

// Property: a segment reduction over a random permutation of rows gives
// the same result — the commutativity the paper's aggregate stage
// requires.
TEST(SegmentOpsTest, SegmentSumIsPermutationInvariant) {
  Rng rng(21);
  Tensor v = Tensor::RandomNormal(50, 4, 1.0f, &rng);
  std::vector<std::int64_t> ids;
  for (int i = 0; i < 50; ++i) {
    ids.push_back(static_cast<std::int64_t>(rng.NextBounded(7)));
  }
  Tensor base = SegmentSum(v, ids, 7);

  std::vector<std::int64_t> perm(50);
  for (int i = 0; i < 50; ++i) perm[static_cast<std::size_t>(i)] = i;
  for (std::size_t i = 50; i > 1; --i) {
    std::swap(perm[i - 1],
              perm[static_cast<std::size_t>(rng.NextBounded(i))]);
  }
  Tensor pv = GatherRows(v, perm);
  std::vector<std::int64_t> pids;
  for (std::int64_t p : perm) {
    pids.push_back(ids[static_cast<std::size_t>(p)]);
  }
  EXPECT_TRUE(SegmentSum(pv, pids, 7).ApproxEquals(base, 1e-4f));
}

}  // namespace
}  // namespace inferturbo
