#include "src/tensor/autograd.h"

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/tensor/ops.h"

namespace inferturbo {
namespace ag {
namespace {

/// Finite-difference check: for scalar-valued builder(params...), the
/// analytic gradient of every parameter entry must match the central
/// difference within tolerance. This pins every operator's backward.
void CheckGradients(const std::vector<VarPtr>& params,
                    const std::function<VarPtr()>& build_loss,
                    float epsilon = 1e-3f, float tolerance = 2e-2f) {
  VarPtr loss = build_loss();
  ASSERT_EQ(loss->value.rows(), 1);
  ASSERT_EQ(loss->value.cols(), 1);
  Backward(loss);

  for (std::size_t p = 0; p < params.size(); ++p) {
    Tensor analytic = params[p]->grad;
    ASSERT_FALSE(analytic.empty()) << "param " << p << " got no gradient";
    for (std::int64_t i = 0; i < params[p]->value.size(); ++i) {
      const float saved = params[p]->value.data()[i];
      params[p]->value.data()[i] = saved + epsilon;
      const float up = build_loss()->value.At(0, 0);
      params[p]->value.data()[i] = saved - epsilon;
      const float down = build_loss()->value.At(0, 0);
      params[p]->value.data()[i] = saved;
      const float numeric = (up - down) / (2.0f * epsilon);
      EXPECT_NEAR(analytic.data()[i], numeric, tolerance)
          << "param " << p << " entry " << i;
    }
    params[p]->ZeroGrad();
  }
}

/// Reduce any tensor node to a scalar via a fixed random projection so
/// each op can be grad-checked in isolation.
VarPtr ProjectToScalar(const VarPtr& x, Rng* rng) {
  Tensor proj = Tensor::RandomNormal(x->value.cols(), 1, 1.0f, rng);
  Tensor ones = Tensor::Full(1, x->value.rows(), 1.0f);
  // 1xN * (NxC * Cx1) -> 1x1
  return MatMul(Constant(ones), MatMul(x, Constant(proj)));
}

TEST(AutogradTest, ConstantRequiresNoGrad) {
  VarPtr c = Constant(Tensor::Full(2, 2, 1.0f));
  EXPECT_FALSE(c->requires_grad);
  VarPtr p = Param(Tensor::Full(2, 2, 1.0f));
  EXPECT_TRUE(p->requires_grad);
}

TEST(AutogradTest, MatMulGradient) {
  Rng rng(1);
  VarPtr a = Param(Tensor::RandomNormal(3, 4, 1.0f, &rng));
  VarPtr b = Param(Tensor::RandomNormal(4, 2, 1.0f, &rng));
  Rng proj_rng(2);
  Tensor proj = Tensor::RandomNormal(2, 1, 1.0f, &proj_rng);
  Tensor ones = Tensor::Full(1, 3, 1.0f);
  CheckGradients({a, b}, [&] {
    return MatMul(Constant(ones), MatMul(MatMul(a, b), Constant(proj)));
  });
}

TEST(AutogradTest, AddAndBiasGradient) {
  Rng rng(3);
  VarPtr a = Param(Tensor::RandomNormal(3, 4, 1.0f, &rng));
  VarPtr bias = Param(Tensor::RandomNormal(1, 4, 1.0f, &rng));
  CheckGradients({a, bias}, [&] {
    Rng local(4);
    return ProjectToScalar(AddRowBroadcast(a, bias), &local);
  });
}

TEST(AutogradTest, MulGradient) {
  Rng rng(5);
  VarPtr a = Param(Tensor::RandomNormal(2, 3, 1.0f, &rng));
  VarPtr b = Param(Tensor::RandomNormal(2, 3, 1.0f, &rng));
  CheckGradients({a, b}, [&] {
    Rng local(6);
    return ProjectToScalar(Mul(a, b), &local);
  });
}

TEST(AutogradTest, MulColBroadcastGradient) {
  Rng rng(7);
  VarPtr a = Param(Tensor::RandomNormal(4, 3, 1.0f, &rng));
  VarPtr s = Param(Tensor::RandomNormal(4, 1, 1.0f, &rng));
  CheckGradients({a, s}, [&] {
    Rng local(8);
    return ProjectToScalar(MulColBroadcast(a, s), &local);
  });
}

TEST(AutogradTest, LeakyReluGradient) {
  Rng rng(9);
  VarPtr a = Param(Tensor::RandomNormal(3, 3, 1.0f, &rng));
  CheckGradients({a}, [&] {
    Rng local(10);
    return ProjectToScalar(LeakyRelu(a, 0.2f), &local);
  });
}

TEST(AutogradTest, ConcatSliceGradient) {
  Rng rng(11);
  VarPtr a = Param(Tensor::RandomNormal(2, 3, 1.0f, &rng));
  VarPtr b = Param(Tensor::RandomNormal(2, 2, 1.0f, &rng));
  CheckGradients({a, b}, [&] {
    Rng local(12);
    return ProjectToScalar(SliceCols(ConcatCols(a, b), 1, 4), &local);
  });
}

TEST(AutogradTest, GatherRowsGradient) {
  Rng rng(13);
  VarPtr a = Param(Tensor::RandomNormal(4, 3, 1.0f, &rng));
  const std::vector<std::int64_t> idx = {0, 2, 2, 3, 1};
  CheckGradients({a}, [&] {
    Rng local(14);
    return ProjectToScalar(GatherRows(a, idx), &local);
  });
}

TEST(AutogradTest, SegmentSumGradient) {
  Rng rng(15);
  VarPtr a = Param(Tensor::RandomNormal(6, 3, 1.0f, &rng));
  const std::vector<std::int64_t> ids = {0, 1, 0, 2, 1, 0};
  CheckGradients({a}, [&] {
    Rng local(16);
    return ProjectToScalar(SegmentSum(a, ids, 3), &local);
  });
}

TEST(AutogradTest, SegmentMeanGradient) {
  Rng rng(17);
  VarPtr a = Param(Tensor::RandomNormal(6, 3, 1.0f, &rng));
  const std::vector<std::int64_t> ids = {0, 1, 0, 2, 1, 0};
  CheckGradients({a}, [&] {
    Rng local(18);
    return ProjectToScalar(SegmentMean(a, ids, 3), &local);
  });
}

TEST(AutogradTest, SegmentMaxGradientRoutesToArgmax) {
  // Hand-checkable case: rows {1, 5, 3} in one segment -> grad flows
  // only to the row holding 5.
  VarPtr a = Param(Tensor::FromRows({{1.0f}, {5.0f}, {3.0f}}));
  const std::vector<std::int64_t> ids = {0, 0, 0};
  VarPtr m = SegmentMax(a, ids, 1);
  Backward(m);
  EXPECT_EQ(a->grad.At(0, 0), 0.0f);
  EXPECT_EQ(a->grad.At(1, 0), 1.0f);
  EXPECT_EQ(a->grad.At(2, 0), 0.0f);
}

TEST(AutogradTest, SegmentMaxGradientNumeric) {
  Rng rng(25);
  VarPtr a = Param(Tensor::RandomNormal(6, 3, 1.0f, &rng));
  const std::vector<std::int64_t> ids = {0, 1, 0, 2, 1, 0};
  CheckGradients({a}, [&] {
    Rng local(26);
    return ProjectToScalar(SegmentMax(a, ids, 3), &local);
  });
}

TEST(AutogradTest, SegmentSoftmaxGradient) {
  Rng rng(19);
  VarPtr logits = Param(Tensor::RandomNormal(6, 1, 1.0f, &rng));
  const std::vector<std::int64_t> ids = {0, 1, 0, 1, 0, 1};
  CheckGradients({logits}, [&] {
    Rng local(20);
    return ProjectToScalar(SegmentSoftmax(logits, ids, 2), &local);
  });
}

TEST(AutogradTest, SparseMatMulGradient) {
  Rng rng(27);
  VarPtr x = Param(Tensor::RandomNormal(5, 3, 1.0f, &rng));
  const std::vector<std::int64_t> dst = {0, 0, 1, 2, 3, 3};
  const std::vector<std::int64_t> src = {1, 2, 0, 4, 3, 1};
  CheckGradients({x}, [&] {
    Rng local(28);
    CsrMatrix a = inferturbo::CsrMatrix::FromEdges(5, dst, src);
    a.NormalizeRows();
    return ProjectToScalar(SparseMatMul(std::move(a), x), &local);
  });
}

TEST(AutogradTest, SparseMatMulMatchesSegmentMean) {
  Rng rng(29);
  VarPtr x = Constant(Tensor::RandomNormal(6, 4, 1.0f, &rng));
  const std::vector<std::int64_t> dst = {0, 0, 2, 5, 5, 5};
  const std::vector<std::int64_t> src = {1, 3, 4, 0, 2, 2};
  CsrMatrix a = inferturbo::CsrMatrix::FromEdges(6, dst, src);
  a.NormalizeRows();
  const VarPtr via_spmm = SparseMatMul(std::move(a), x);
  const VarPtr via_segments =
      SegmentMean(GatherRows(x, src), dst, 6);
  EXPECT_TRUE(via_spmm->value.ApproxEquals(via_segments->value, 1e-5f));
}

TEST(AutogradTest, SoftmaxCrossEntropyGradient) {
  Rng rng(21);
  VarPtr logits = Param(Tensor::RandomNormal(5, 4, 1.0f, &rng));
  const std::vector<std::int64_t> labels = {0, 3, 1, 2, 0};
  CheckGradients({logits},
                 [&] { return SoftmaxCrossEntropyLoss(logits, labels); });
}

TEST(AutogradTest, SigmoidBceGradient) {
  Rng rng(23);
  VarPtr logits = Param(Tensor::RandomNormal(4, 3, 1.0f, &rng));
  Tensor targets(4, 3);
  Rng trng(24);
  for (std::int64_t i = 0; i < targets.size(); ++i) {
    targets.data()[i] = trng.NextDouble() < 0.5 ? 0.0f : 1.0f;
  }
  CheckGradients({logits}, [&] { return SigmoidBceLoss(logits, targets); });
}

TEST(AutogradTest, GradAccumulatesAcrossSharedUse) {
  // y = sum(a) + sum(a) -> da = 2.
  VarPtr a = Param(Tensor::Full(2, 2, 1.0f));
  Tensor ones_row = Tensor::Full(1, 2, 1.0f);
  Tensor ones_col = Tensor::Full(2, 1, 1.0f);
  const auto sum = [&](const VarPtr& x) {
    return MatMul(Constant(ones_row), MatMul(x, Constant(ones_col)));
  };
  VarPtr loss = Add(sum(a), sum(a));
  Backward(loss);
  EXPECT_TRUE(a->grad.ApproxEquals(Tensor::Full(2, 2, 2.0f), 1e-5f));
}

TEST(AutogradTest, BackwardOnDiamondGraphVisitsOnce) {
  // b = a*a; loss = sum(b + b). Every node on the diamond must be
  // processed exactly once or gradients double-count.
  VarPtr a = Param(Tensor::Full(1, 2, 3.0f));
  VarPtr b = Mul(a, a);
  VarPtr c = Add(b, b);
  Tensor ones_col = Tensor::Full(2, 1, 1.0f);
  VarPtr loss = MatMul(c, Constant(ones_col));
  Backward(loss);
  // d/da sum(2*a^2) = 4a = 12.
  EXPECT_TRUE(a->grad.ApproxEquals(Tensor::Full(1, 2, 12.0f), 1e-4f));
}

}  // namespace
}  // namespace ag
}  // namespace inferturbo
