// Out-of-core shard store: pack/open round trips, slice fidelity
// against the source graph, LRU eviction under a memory budget, async
// prefetch, and corruption (truncation, bit flips, torn writes)
// surfacing as clean Status errors — exercised against the scripted
// I/O fault injector.
#include "src/storage/shard_store.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/graph/datasets.h"
#include "src/storage/graph_view.h"
#include "src/storage/shard_format.h"
#include "src/storage/shard_reader.h"
#include "src/storage/shard_writer.h"

namespace inferturbo {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

Dataset MakeDataset(bool edge_features = false) {
  PlantedGraphConfig config;
  config.num_nodes = 600;
  config.avg_degree = 6.0;
  config.feature_dim = 12;
  config.num_classes = 4;
  if (edge_features) config.edge_feature_dim = 3;
  config.seed = 29;
  return MakePlantedDataset("shard-store", config);
}

bool BitIdentical(const Graph& a, const Graph& b) {
  return a.num_nodes() == b.num_nodes() && a.num_edges() == b.num_edges() &&
         a.edge_src() == b.edge_src() && a.edge_dst() == b.edge_dst() &&
         a.labels() == b.labels() &&
         a.node_features().ApproxEquals(b.node_features(), 0.0f) &&
         a.has_edge_features() == b.has_edge_features() &&
         (!a.has_edge_features() ||
          a.edge_features().ApproxEquals(b.edge_features(), 0.0f));
}

TEST(ShardWriterTest, PackAndOpenRoundTripsMeta) {
  const Dataset d = MakeDataset(/*edge_features=*/true);
  const std::string dir = FreshDir("shards_meta");
  ShardWriterOptions writer;
  writer.num_partitions = 4;
  const Result<ShardMeta> meta = WriteGraphShards(d.graph, dir, writer);
  ASSERT_TRUE(meta.ok()) << meta.status().ToString();

  ShardStoreOptions options;
  options.directory = dir;
  const Result<ShardStore> store = ShardStore::Open(std::move(options));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ(store->meta().num_nodes, d.graph.num_nodes());
  EXPECT_EQ(store->meta().num_edges, d.graph.num_edges());
  EXPECT_EQ(store->meta().feature_dim, d.graph.feature_dim());
  EXPECT_EQ(store->meta().edge_feature_dim, 3);
  EXPECT_EQ(store->meta().num_classes, d.graph.num_classes());
  EXPECT_TRUE(store->meta().has_labels);
  EXPECT_EQ(store->meta().num_partitions(), 4);
  std::int64_t nodes = 0;
  std::int64_t edges = 0;
  for (const ShardPartitionInfo& p : store->meta().partitions) {
    nodes += p.num_nodes;
    edges += p.num_edges;
  }
  EXPECT_EQ(nodes, d.graph.num_nodes());
  EXPECT_EQ(edges, d.graph.num_edges());
}

TEST(ShardWriterTest, MultiLabelGraphsAreRejected) {
  PlantedGraphConfig config;
  config.num_nodes = 100;
  config.feature_dim = 4;
  config.num_classes = 6;
  config.multi_label = true;
  config.seed = 3;
  const Dataset d = MakePlantedDataset("multi", config);
  EXPECT_TRUE(WriteGraphShards(d.graph, FreshDir("shards_multi"))
                  .status()
                  .IsInvalidArgument());
}

TEST(ShardStoreTest, MappedSlicesMatchTheSourceGraph) {
  const Dataset d = MakeDataset(/*edge_features=*/true);
  const std::string dir = FreshDir("shards_slices");
  ShardWriterOptions writer;
  writer.num_partitions = 4;
  ASSERT_TRUE(WriteGraphShards(d.graph, dir, writer).ok());

  ShardStoreOptions options;
  options.directory = dir;
  Result<ShardStore> store = ShardStore::Open(std::move(options));
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  std::vector<bool> node_seen(static_cast<std::size_t>(d.graph.num_nodes()));
  std::vector<bool> edge_seen(static_cast<std::size_t>(d.graph.num_edges()));
  for (std::int64_t p = 0; p < 4; ++p) {
    const Result<ShardLease> lease = store->Map(p);
    ASSERT_TRUE(lease.ok()) << lease.status().ToString();
    const MappedShard& shard = **lease;
    const auto nodes = shard.node_ids();
    const auto offsets = shard.out_offsets();
    ASSERT_EQ(offsets.size(), nodes.size() + 1);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const NodeId v = nodes[i];
      ASSERT_GE(v, 0);
      ASSERT_LT(v, d.graph.num_nodes());
      if (i > 0) {
        ASSERT_LT(nodes[i - 1], v);  // ascending member order
      }
      ASSERT_FALSE(node_seen[static_cast<std::size_t>(v)]);
      node_seen[static_cast<std::size_t>(v)] = true;
      EXPECT_EQ(shard.labels()[i], d.graph.labels()[v]);
      const float* row = shard.node_features() +
                         static_cast<std::size_t>(i) * 12;
      for (std::int64_t c = 0; c < 12; ++c) {
        ASSERT_EQ(row[c], d.graph.node_features().At(v, c));
      }
      // Out-edges carry the source graph's global dst + edge ids, in
      // the source graph's out-edge order.
      const auto out = d.graph.OutEdges(v);
      ASSERT_EQ(offsets[i + 1] - offsets[i],
                static_cast<std::int64_t>(out.size()));
      for (std::size_t k = 0; k < out.size(); ++k) {
        const std::size_t e =
            static_cast<std::size_t>(offsets[i]) + k;
        const EdgeId id = out[k];
        EXPECT_EQ(shard.out_edge_ids()[e], id);
        EXPECT_EQ(shard.out_dst()[e],
                  d.graph.edge_dst()[static_cast<std::size_t>(id)]);
        ASSERT_FALSE(edge_seen[static_cast<std::size_t>(id)]);
        edge_seen[static_cast<std::size_t>(id)] = true;
        const float* efeat = shard.edge_features() + e * 3;
        for (std::int64_t c = 0; c < 3; ++c) {
          ASSERT_EQ(efeat[c], d.graph.edge_features().At(id, c));
        }
      }
    }
  }
  for (bool seen : node_seen) EXPECT_TRUE(seen);
  for (bool seen : edge_seen) EXPECT_TRUE(seen);
}

TEST(ShardStoreTest, MaterializeGraphIsBitIdentical) {
  for (const bool edge_features : {false, true}) {
    const Dataset d = MakeDataset(edge_features);
    const std::string dir = FreshDir(
        edge_features ? "shards_mat_ef" : "shards_mat");
    ShardWriterOptions writer;
    writer.num_partitions = 5;
    ASSERT_TRUE(WriteGraphShards(d.graph, dir, writer).ok());
    ShardStoreOptions options;
    options.directory = dir;
    Result<ShardStore> store = ShardStore::Open(std::move(options));
    ASSERT_TRUE(store.ok());
    const ShardGraphView view(std::move(*store));
    const Result<Graph> rebuilt = MaterializeGraph(view);
    ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
    EXPECT_TRUE(BitIdentical(d.graph, *rebuilt));
  }
}

TEST(ShardStoreTest, InMemoryViewMatchesShardViewByteForByte) {
  const Dataset d = MakeDataset(/*edge_features=*/true);
  const std::string dir = FreshDir("shards_views");
  ShardWriterOptions writer;
  writer.num_partitions = 6;
  ASSERT_TRUE(WriteGraphShards(d.graph, dir, writer).ok());
  ShardStoreOptions options;
  options.directory = dir;
  Result<ShardStore> store = ShardStore::Open(std::move(options));
  ASSERT_TRUE(store.ok());
  const ShardGraphView streamed(std::move(*store));
  const InMemoryGraphView resident(d.graph, 6);
  ASSERT_EQ(resident.num_partitions(), streamed.num_partitions());
  for (std::int64_t p = 0; p < 6; ++p) {
    const Result<PartitionSlice> a = resident.AcquirePartition(p);
    const Result<PartitionSlice> b = streamed.AcquirePartition(p);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->nodes.size(), b->nodes.size());
    for (std::size_t i = 0; i < a->nodes.size(); ++i) {
      ASSERT_EQ(a->nodes[i], b->nodes[i]);
      ASSERT_EQ(a->out_offsets[i], b->out_offsets[i]);
      ASSERT_EQ(a->labels[i], b->labels[i]);
    }
    ASSERT_EQ(a->out_dst.size(), b->out_dst.size());
    for (std::size_t e = 0; e < a->out_dst.size(); ++e) {
      ASSERT_EQ(a->out_dst[e], b->out_dst[e]);
      ASSERT_EQ(a->out_edge_ids[e], b->out_edge_ids[e]);
    }
    const std::size_t feat = a->nodes.size() * 12;
    for (std::size_t i = 0; i < feat; ++i) {
      ASSERT_EQ(a->node_features[i], b->node_features[i]);
    }
    const std::size_t efeat = a->out_dst.size() * 3;
    for (std::size_t i = 0; i < efeat; ++i) {
      ASSERT_EQ(a->edge_features[i], b->edge_features[i]);
    }
  }
}

TEST(ShardStoreTest, BudgetEvictsLeastRecentlyUsedShards) {
  const Dataset d = MakeDataset();
  const std::string dir = FreshDir("shards_budget");
  ShardWriterOptions writer;
  writer.num_partitions = 8;
  ASSERT_TRUE(WriteGraphShards(d.graph, dir, writer).ok());

  // Find the largest shard, then cap the budget at two of those: the
  // store must keep cycling shards out to stay under it.
  std::uint64_t largest = 0;
  for (std::int64_t p = 0; p < 8; ++p) {
    largest = std::max<std::uint64_t>(
        largest, std::filesystem::file_size(
                     dir + "/" + ShardFileName(p)));
  }
  ShardStoreOptions options;
  options.directory = dir;
  options.memory_budget_bytes = 2 * largest;
  Result<ShardStore> store = ShardStore::Open(std::move(options));
  ASSERT_TRUE(store.ok());

  for (int pass = 0; pass < 2; ++pass) {
    for (std::int64_t p = 0; p < 8; ++p) {
      const Result<ShardLease> lease = store->Map(p);
      ASSERT_TRUE(lease.ok()) << lease.status().ToString();
    }
  }
  const StorageMetrics metrics = store->metrics();
  EXPECT_GT(metrics.evictions, 0);
  EXPECT_LE(metrics.peak_bytes_mapped, 2 * largest);
  EXPECT_EQ(metrics.checksum_failures, 0);
  EXPECT_GE(metrics.map_calls, 8);
}

TEST(ShardStoreTest, PinnedShardsSurviveEvictionPressure) {
  const Dataset d = MakeDataset();
  const std::string dir = FreshDir("shards_pinned");
  ShardWriterOptions writer;
  writer.num_partitions = 8;
  ASSERT_TRUE(WriteGraphShards(d.graph, dir, writer).ok());
  std::uint64_t largest = 0;
  for (std::int64_t p = 0; p < 8; ++p) {
    largest = std::max<std::uint64_t>(
        largest,
        std::filesystem::file_size(dir + "/" + ShardFileName(p)));
  }

  ShardStoreOptions options;
  options.directory = dir;
  options.memory_budget_bytes = 4 * largest;
  options.pinned_budget_bytes = 2 * largest;
  Result<ShardStore> store = ShardStore::Open(std::move(options));
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  const Result<std::int64_t> pinned = store->PinHotSet(/*hub_threshold=*/0);
  ASSERT_TRUE(pinned.ok()) << pinned.status().ToString();
  ASSERT_GT(*pinned, 0);
  const StorageMetrics after_pin = store->metrics();
  EXPECT_EQ(after_pin.pinned_partitions, *pinned);
  EXPECT_GT(after_pin.pinned_bytes, 0u);
  EXPECT_LE(after_pin.pinned_bytes, 2 * largest);

  // Pinning again is idempotent.
  const Result<std::int64_t> again = store->PinHotSet(/*hub_threshold=*/0);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(store->metrics().pinned_partitions, after_pin.pinned_partitions);
  EXPECT_EQ(store->metrics().pinned_bytes, after_pin.pinned_bytes);

  // Two full passes force the unpinned shards to cycle through the
  // remaining headroom; the pinned hot-set must stay resident (every
  // Map of a pinned shard is a cache hit) and the combined pinned+LRU
  // footprint must never exceed the budget.
  for (int pass = 0; pass < 2; ++pass) {
    for (std::int64_t p = 0; p < 8; ++p) {
      ASSERT_TRUE(store->Map(p).ok());
    }
  }
  const StorageMetrics metrics = store->metrics();
  EXPECT_GT(metrics.evictions, 0);
  EXPECT_LE(metrics.peak_bytes_mapped, 4 * largest);
  EXPECT_GE(metrics.pinned_hits, 2 * after_pin.pinned_partitions);
  EXPECT_EQ(metrics.pinned_partitions, after_pin.pinned_partitions);
  EXPECT_EQ(metrics.checksum_failures, 0);
}

TEST(ShardStoreTest, TinyPinnedBudgetPinsNothing) {
  const Dataset d = MakeDataset();
  const std::string dir = FreshDir("shards_pin_tiny");
  ShardWriterOptions writer;
  writer.num_partitions = 4;
  ASSERT_TRUE(WriteGraphShards(d.graph, dir, writer).ok());
  ShardStoreOptions options;
  options.directory = dir;
  options.pinned_budget_bytes = 1;  // smaller than any shard
  Result<ShardStore> store = ShardStore::Open(std::move(options));
  ASSERT_TRUE(store.ok());
  const Result<std::int64_t> pinned = store->PinHotSet(/*hub_threshold=*/0);
  ASSERT_TRUE(pinned.ok());
  EXPECT_EQ(*pinned, 0);
  EXPECT_EQ(store->metrics().pinned_bytes, 0u);
  EXPECT_EQ(store->metrics().pinned_partitions, 0);
}

TEST(ShardStoreTest, PinnedBudgetAboveMemoryBudgetIsRejected) {
  const Dataset d = MakeDataset();
  const std::string dir = FreshDir("shards_pin_reject");
  ASSERT_TRUE(WriteGraphShards(d.graph, dir).ok());
  ShardStoreOptions options;
  options.directory = dir;
  options.memory_budget_bytes = 1000;
  options.pinned_budget_bytes = 2000;
  EXPECT_TRUE(
      ShardStore::Open(std::move(options)).status().IsInvalidArgument());
}

TEST(ShardStoreTest, OutOfRangePrefetchIsANoOp) {
  const Dataset d = MakeDataset();
  const std::string dir = FreshDir("shards_pf_range");
  ShardWriterOptions writer;
  writer.num_partitions = 4;
  ASSERT_TRUE(WriteGraphShards(d.graph, dir, writer).ok());
  ThreadPool pool(2);
  ShardStoreOptions options;
  options.directory = dir;
  options.prefetch_pool = &pool;
  Result<ShardStore> store = ShardStore::Open(std::move(options));
  ASSERT_TRUE(store.ok());
  const ShardGraphView view(std::move(*store));

  // The drivers blindly hint p+1 while sweeping; hints past either end
  // must not issue anything — not even a queued no-op task.
  view.PrefetchPartition(-1);
  view.PrefetchPartition(view.num_partitions());
  view.PrefetchPartition(view.num_partitions() + 7);
  EXPECT_EQ(view.storage_metrics().prefetch_issued, 0);

  view.PrefetchPartition(view.num_partitions() - 1);
  EXPECT_EQ(view.storage_metrics().prefetch_issued, 1);
}

TEST(ShardStoreTest, ForcedReadPathsAreBitIdentical) {
  const Dataset d = MakeDataset(/*edge_features=*/true);
  const std::string dir = FreshDir("shards_read_paths");
  ShardWriterOptions writer;
  writer.num_partitions = 5;
  ASSERT_TRUE(WriteGraphShards(d.graph, dir, writer).ok());

  for (const ShardReadPath path :
       {ShardReadPath::kMmap, ShardReadPath::kPread, ShardReadPath::kDirect,
        ShardReadPath::kUring, ShardReadPath::kAuto}) {
    SCOPED_TRACE(ShardReadPathName(path));
    ShardStoreOptions options;
    options.directory = dir;
    options.read_path = path;
    Result<ShardStore> store = ShardStore::Open(std::move(options));
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    // kAuto resolves to a concrete tier at Open.
    EXPECT_NE(store->read_path(), ShardReadPath::kAuto);
    if (path != ShardReadPath::kAuto) {
      EXPECT_EQ(store->read_path(), path);
    }
    const ShardGraphView view(std::move(*store));
    const Result<Graph> rebuilt = MaterializeGraph(view);
    ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
    EXPECT_TRUE(BitIdentical(d.graph, *rebuilt));
    EXPECT_EQ(view.storage_metrics().checksum_failures, 0);
  }
}

TEST(ShardStoreTest, SecondMapIsACacheHit) {
  const Dataset d = MakeDataset();
  const std::string dir = FreshDir("shards_hit");
  ASSERT_TRUE(WriteGraphShards(d.graph, dir).ok());
  ShardStoreOptions options;
  options.directory = dir;
  Result<ShardStore> store = ShardStore::Open(std::move(options));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Map(0).ok());
  ASSERT_TRUE(store->Map(0).ok());
  const StorageMetrics metrics = store->metrics();
  EXPECT_EQ(metrics.cache_misses, 1);
  EXPECT_EQ(metrics.cache_hits, 1);
  EXPECT_EQ(metrics.map_calls, 1);
}

TEST(ShardStoreTest, PrefetchMakesTheNextMapAHit) {
  const Dataset d = MakeDataset();
  const std::string dir = FreshDir("shards_prefetch");
  ShardWriterOptions writer;
  writer.num_partitions = 4;
  ASSERT_TRUE(WriteGraphShards(d.graph, dir, writer).ok());

  ThreadPool pool(2);
  ShardStoreOptions options;
  options.directory = dir;
  options.prefetch_pool = &pool;
  Result<ShardStore> store = ShardStore::Open(std::move(options));
  ASSERT_TRUE(store.ok());

  store->Prefetch(2);
  // Wait for the async load to land before demanding the shard.
  for (int i = 0; i < 2000 && store->metrics().prefetch_completed == 0;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(store->metrics().prefetch_completed, 1);
  ASSERT_TRUE(store->Map(2).ok());
  const StorageMetrics metrics = store->metrics();
  EXPECT_EQ(metrics.prefetch_issued, 1);
  EXPECT_EQ(metrics.prefetch_hits, 1);
  EXPECT_EQ(metrics.cache_hits, 1);
  EXPECT_EQ(metrics.cache_misses, 0);
}

TEST(ShardStoreTest, MapOutOfRangeIsInvalidArgument) {
  const Dataset d = MakeDataset();
  const std::string dir = FreshDir("shards_range");
  ASSERT_TRUE(WriteGraphShards(d.graph, dir).ok());
  ShardStoreOptions options;
  options.directory = dir;
  Result<ShardStore> store = ShardStore::Open(std::move(options));
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE(store->Map(-1).status().IsInvalidArgument());
  EXPECT_TRUE(store->Map(1).status().IsInvalidArgument());
}

TEST(ShardStoreTest, OpenRejectsMissingOrCorruptMeta) {
  ShardStoreOptions missing;
  missing.directory = testing::TempDir() + "/shards_no_such_dir";
  std::filesystem::remove_all(missing.directory);
  EXPECT_FALSE(ShardStore::Open(std::move(missing)).ok());

  const Dataset d = MakeDataset();
  const std::string dir = FreshDir("shards_badmeta");
  ASSERT_TRUE(WriteGraphShards(d.graph, dir).ok());
  const std::string meta_path = dir + "/" + ShardMetaFileName();
  std::fstream f(meta_path,
                 std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(24);
  char byte = 0x5a;
  f.write(&byte, 1);
  f.close();
  ShardStoreOptions corrupt;
  corrupt.directory = dir;
  const Result<ShardStore> store = ShardStore::Open(std::move(corrupt));
  EXPECT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kIoError);
}

TEST(ShardStoreTest, TruncatedShardFileIsACleanIoError) {
  const Dataset d = MakeDataset();
  const std::string dir = FreshDir("shards_trunc");
  ShardWriterOptions writer;
  writer.num_partitions = 2;
  ASSERT_TRUE(WriteGraphShards(d.graph, dir, writer).ok());
  const std::string shard_path = dir + "/" + ShardFileName(1);
  const std::uintmax_t size = std::filesystem::file_size(shard_path);
  std::filesystem::resize_file(shard_path, size / 2);

  ShardStoreOptions options;
  options.directory = dir;
  Result<ShardStore> store = ShardStore::Open(std::move(options));
  ASSERT_TRUE(store.ok());  // meta is intact; the damage is per-shard
  ASSERT_TRUE(store->Map(0).ok());
  const Result<ShardLease> bad = store->Map(1);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kIoError);
}

TEST(ShardStoreTest, FlippedPayloadByteFailsTheChecksum) {
  const Dataset d = MakeDataset();
  const std::string dir = FreshDir("shards_flip");
  ASSERT_TRUE(WriteGraphShards(d.graph, dir).ok());
  // Flip one byte deep in the payload region on disk: the frame
  // structure stays valid, only a page CRC can catch it.
  const std::string shard_path = dir + "/" + ShardFileName(0);
  std::fstream f(shard_path,
                 std::ios::in | std::ios::out | std::ios::binary);
  f.seekg(ShardPayloadStart() + 128);
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x01);
  f.seekp(ShardPayloadStart() + 128);
  f.write(&byte, 1);
  f.close();

  ShardStoreOptions options;
  options.directory = dir;
  Result<ShardStore> store = ShardStore::Open(std::move(options));
  ASSERT_TRUE(store.ok());
  const Result<ShardLease> bad = store->Map(0);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kIoError);
  EXPECT_NE(bad.status().message().find("checksum"), std::string::npos);
  EXPECT_GT(store->metrics().checksum_failures, 0);
}

TEST(ShardStoreTest, TransientReadBitFlipIsRetriedToSuccess) {
  const Dataset d = MakeDataset();
  const std::string dir = FreshDir("shards_transient");
  ASSERT_TRUE(WriteGraphShards(d.graph, dir).ok());
  ScriptedIoFaultInjector injector;
  injector.Arm(IoOp::kRead, "shard_00000", IoFaultKind::kBitFlip,
               /*times=*/1);
  ShardStoreOptions options;
  options.directory = dir;
  options.fault_injector = &injector;
  Result<ShardStore> store = ShardStore::Open(std::move(options));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  const Result<ShardLease> lease = store->Map(0);
  ASSERT_TRUE(lease.ok()) << lease.status().ToString();
  EXPECT_EQ(injector.faults_fired(), 1);
  EXPECT_GT(store->metrics().checksum_failures, 0);
  // The healthy retry's data is what got cached.
  EXPECT_EQ((*lease)->node_ids().size(),
            static_cast<std::size_t>(d.graph.num_nodes()));
}

TEST(ShardStoreTest, PersistentReadCorruptionFailsCleanly) {
  const Dataset d = MakeDataset();
  const std::string dir = FreshDir("shards_persistent");
  ASSERT_TRUE(WriteGraphShards(d.graph, dir).ok());
  ScriptedIoFaultInjector injector;
  injector.Arm(IoOp::kRead, "shard_00000", IoFaultKind::kShortRead,
               /*times=*/-1);
  ShardStoreOptions options;
  options.directory = dir;
  options.fault_injector = &injector;
  Result<ShardStore> store = ShardStore::Open(std::move(options));
  ASSERT_TRUE(store.ok());
  const Result<ShardLease> bad = store->Map(0);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kIoError);
}

TEST(ShardWriterTest, TransientWriteFaultsAreRetriedToSuccess) {
  const Dataset d = MakeDataset();
  const std::string dir = FreshDir("shards_wretry");
  ScriptedIoFaultInjector injector;
  injector.Arm(IoOp::kWrite, "shard_00000", IoFaultKind::kWriteFail,
               /*times=*/2);
  ShardWriterOptions writer;
  writer.num_partitions = 2;
  writer.fault_injector = &injector;
  const Result<ShardMeta> meta = WriteGraphShards(d.graph, dir, writer);
  ASSERT_TRUE(meta.ok()) << meta.status().ToString();
  EXPECT_EQ(injector.faults_fired(), 2);

  ShardStoreOptions options;
  options.directory = dir;
  Result<ShardStore> store = ShardStore::Open(std::move(options));
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE(store->Map(0).ok());
  EXPECT_TRUE(store->Map(1).ok());
}

TEST(ShardWriterTest, PersistentWriteFailureLeavesNoValidPack) {
  const Dataset d = MakeDataset();
  const std::string dir = FreshDir("shards_wfail");
  ScriptedIoFaultInjector injector;
  injector.Arm(IoOp::kWrite, "shard_", IoFaultKind::kNoSpace,
               /*times=*/-1);
  ShardWriterOptions writer;
  writer.num_partitions = 2;
  writer.fault_injector = &injector;
  EXPECT_FALSE(WriteGraphShards(d.graph, dir, writer).ok());
  // The meta file is the commit point and was never written: the
  // directory must not open as a pack.
  EXPECT_FALSE(std::filesystem::exists(dir + "/" + ShardMetaFileName()));
  ShardStoreOptions options;
  options.directory = dir;
  EXPECT_FALSE(ShardStore::Open(std::move(options)).ok());
}

}  // namespace
}  // namespace inferturbo
