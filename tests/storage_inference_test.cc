// The out-of-core acceptance property: inference streamed from a shard
// directory is BIT-identical (tolerance 0.0f) to the in-memory run, on
// both backends, under every strategy combination, with the memory
// budget binding — peak mapped bytes never exceed it. The shard
// partitioning doubles as the worker assignment, so the streamed
// MapReduce run folds floats in exactly the in-memory order.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>

#include "src/common/thread_pool.h"
#include "src/graph/datasets.h"
#include "src/inference/inferturbo_mapreduce.h"
#include "src/inference/inferturbo_pregel.h"
#include "src/nn/model.h"
#include "src/storage/graph_view.h"
#include "src/storage/shard_format.h"
#include "src/storage/shard_store.h"
#include "src/storage/shard_writer.h"

namespace inferturbo {
namespace {

constexpr std::int64_t kPartitions = 8;

Dataset SkewedDataset() {
  PowerLawConfig config;
  config.num_nodes = 400;
  config.avg_degree = 6.0;
  config.skew = PowerLawSkew::kBoth;
  config.alpha = 1.6;
  config.seed = 99;
  return MakePowerLawDataset(config, /*feature_dim=*/12);
}

std::unique_ptr<GnnModel> MakeModelFor(const std::string& kind,
                                       const Graph& graph) {
  ModelConfig config;
  config.input_dim = graph.feature_dim();
  config.hidden_dim = 16;
  config.num_classes = graph.num_classes();
  config.num_layers = 2;
  config.heads = 4;
  config.seed = 5;
  if (graph.has_edge_features()) {
    config.edge_feature_dim = graph.edge_features().cols();
  }
  Result<std::unique_ptr<GnnModel>> model = MakeModel(kind, config);
  EXPECT_TRUE(model.ok());
  return std::move(model).ValueOrDie();
}

std::string PackInto(const Graph& graph, const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  ShardWriterOptions writer;
  writer.num_partitions = kPartitions;
  const Result<ShardMeta> meta = WriteGraphShards(graph, dir, writer);
  EXPECT_TRUE(meta.ok()) << meta.status().ToString();
  return dir;
}

/// A budget that is genuinely binding — the whole pack minus its
/// smallest shard, so the store can never hold every partition and
/// must evict — while leaving ample headroom for the shards that 2
/// pool workers plus their prefetches pin concurrently.
std::uint64_t BindingBudget(const std::string& dir) {
  std::uint64_t smallest = UINT64_MAX;
  std::uint64_t total = 0;
  for (std::int64_t p = 0; p < kPartitions; ++p) {
    const std::uint64_t size =
        std::filesystem::file_size(dir + "/" + ShardFileName(p));
    smallest = std::min(smallest, size);
    total += size;
  }
  const std::uint64_t budget = total - smallest;
  EXPECT_LT(budget, total);
  return budget;
}

Result<ShardStore> OpenStore(const std::string& dir, std::uint64_t budget,
                             ThreadPool* pool,
                             std::uint64_t pinned_budget = 0) {
  ShardStoreOptions options;
  options.directory = dir;
  options.memory_budget_bytes = budget;
  options.prefetch_pool = pool;
  options.pinned_budget_bytes = pinned_budget;
  return ShardStore::Open(std::move(options));
}

struct Case {
  bool partial_gather;
  bool broadcast;
  bool shadow_nodes;
};

std::string CaseName(const testing::TestParamInfo<Case>& info) {
  const Case& c = info.param;
  std::string name;
  name += c.partial_gather ? "pg1" : "pg0";
  name += c.broadcast ? "_bc1" : "_bc0";
  name += c.shadow_nodes ? "_sn1" : "_sn0";
  return name;
}

class StorageEquivalenceTest : public testing::TestWithParam<Case> {};

TEST_P(StorageEquivalenceTest, StreamedRunsAreBitIdenticalToInMemory) {
  const Case& c = GetParam();
  const Dataset dataset = SkewedDataset();
  const std::unique_ptr<GnnModel> model =
      MakeModelFor("sage", dataset.graph);
  const std::string dir = PackInto(dataset.graph, "storage_equiv");
  const std::uint64_t budget = BindingBudget(dir);
  ThreadPool pool(2);

  InferTurboOptions options;
  options.num_workers = kPartitions;
  options.pool = &pool;
  options.strategies.partial_gather = c.partial_gather;
  options.strategies.broadcast = c.broadcast;
  options.strategies.shadow_nodes = c.shadow_nodes;
  options.strategies.threshold_override =
      (c.broadcast || c.shadow_nodes) ? 8 : -1;
  options.export_embeddings = true;

  // Every streaming configuration — pipeline on/off × pinned hot-set
  // on/off — must reproduce the in-memory logits bit for bit on both
  // backends.
  struct StreamMode {
    int slots;
    bool pin;
    const char* name;
  };
  constexpr StreamMode kModes[] = {
      {0, false, "demand"},
      {2, false, "pipelined"},
      {0, true, "demand_pinned"},
      {2, true, "pipelined_pinned"},
  };
  for (const bool use_mapreduce : {false, true}) {
    SCOPED_TRACE(use_mapreduce ? "mapreduce" : "pregel");
    const Result<InferenceResult> in_memory =
        use_mapreduce
            ? RunInferTurboMapReduce(dataset.graph, *model, options)
            : RunInferTurboPregel(dataset.graph, *model, options);
    ASSERT_TRUE(in_memory.ok()) << in_memory.status().ToString();

    for (const StreamMode& mode : kModes) {
      SCOPED_TRACE(mode.name);
      const std::uint64_t pinned_budget = mode.pin ? budget / 2 : 0;
      Result<ShardStore> store =
          OpenStore(dir, budget, &pool, pinned_budget);
      ASSERT_TRUE(store.ok()) << store.status().ToString();
      const ShardGraphView view(std::move(*store));
      InferTurboOptions streamed_options = options;
      streamed_options.storage_pipeline_slots = mode.slots;
      streamed_options.pin_hub_shards = mode.pin;
      const Result<InferenceResult> streamed =
          use_mapreduce
              ? RunInferTurboMapReduce(view, *model, streamed_options)
              : RunInferTurboPregel(view, *model, streamed_options);
      ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();

      // Bit-identical: tolerance 0.0f, and hard predictions agree.
      EXPECT_TRUE(streamed->logits.ApproxEquals(in_memory->logits, 0.0f));
      EXPECT_EQ(streamed->predictions, in_memory->predictions);
      EXPECT_TRUE(
          streamed->embeddings.ApproxEquals(in_memory->embeddings, 0.0f));

      const StorageMetrics storage = streamed->metrics.storage;
      EXPECT_GT(storage.map_calls, 0);
      EXPECT_GT(storage.peak_bytes_mapped, 0u);
      EXPECT_LE(storage.peak_bytes_mapped, budget);
      EXPECT_EQ(storage.checksum_failures, 0);
      if (mode.pin) {
        // Half the binding budget fits several of the 8 shards.
        EXPECT_GT(storage.pinned_bytes, 0u);
        EXPECT_GT(storage.pinned_partitions, 0);
      } else {
        EXPECT_EQ(storage.pinned_partitions, 0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, StorageEquivalenceTest,
    testing::Values(Case{false, false, false}, Case{true, false, false},
                    Case{true, true, false}, Case{true, false, true},
                    Case{true, true, true}),
    CaseName);

TEST(StorageInferenceTest, EdgeFeatureModelStreamsBitIdentically) {
  PlantedGraphConfig config;
  config.num_nodes = 300;
  config.avg_degree = 5.0;
  config.feature_dim = 8;
  config.num_classes = 4;
  config.edge_feature_dim = 3;
  config.seed = 17;
  const Dataset dataset = MakePlantedDataset("storage-edge", config);
  const std::unique_ptr<GnnModel> model =
      MakeModelFor("edge_sage", dataset.graph);
  const std::string dir = PackInto(dataset.graph, "storage_edge");
  ThreadPool pool(2);

  InferTurboOptions options;
  options.num_workers = kPartitions;
  options.pool = &pool;

  for (const bool use_mapreduce : {false, true}) {
    SCOPED_TRACE(use_mapreduce ? "mapreduce" : "pregel");
    const Result<InferenceResult> in_memory =
        use_mapreduce
            ? RunInferTurboMapReduce(dataset.graph, *model, options)
            : RunInferTurboPregel(dataset.graph, *model, options);
    ASSERT_TRUE(in_memory.ok()) << in_memory.status().ToString();
    Result<ShardStore> store = OpenStore(dir, BindingBudget(dir), &pool);
    ASSERT_TRUE(store.ok());
    const ShardGraphView view(std::move(*store));
    const Result<InferenceResult> streamed =
        use_mapreduce ? RunInferTurboMapReduce(view, *model, options)
                      : RunInferTurboPregel(view, *model, options);
    ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
    EXPECT_TRUE(streamed->logits.ApproxEquals(in_memory->logits, 0.0f));
  }
}

TEST(StorageInferenceTest, MapReduceRejectsWorkerPartitionMismatch) {
  const Dataset dataset = SkewedDataset();
  const std::unique_ptr<GnnModel> model =
      MakeModelFor("sage", dataset.graph);
  const std::string dir = PackInto(dataset.graph, "storage_mismatch");
  Result<ShardStore> store = OpenStore(dir, 0, nullptr);
  ASSERT_TRUE(store.ok());
  const ShardGraphView view(std::move(*store));

  InferTurboOptions options;
  options.num_workers = kPartitions - 3;
  EXPECT_TRUE(RunInferTurboMapReduce(view, *model, options)
                  .status()
                  .IsInvalidArgument());
  // The Pregel backend materializes the view, so any worker count works.
  EXPECT_TRUE(RunInferTurboPregel(view, *model, options).ok());
}

TEST(StorageInferenceTest, StreamedPipelineActuallyRuns) {
  const Dataset dataset = SkewedDataset();
  const std::unique_ptr<GnnModel> model =
      MakeModelFor("sage", dataset.graph);
  const std::string dir = PackInto(dataset.graph, "storage_pf");
  ThreadPool pool(2);
  Result<ShardStore> store = OpenStore(dir, BindingBudget(dir), &pool);
  ASSERT_TRUE(store.ok());
  const ShardGraphView view(std::move(*store));

  InferTurboOptions options;
  options.num_workers = kPartitions;
  options.pool = &pool;
  const Result<InferenceResult> streamed =
      RunInferTurboMapReduce(view, *model, options);
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
  // The map stage no longer issues fire-and-forget prefetches; every
  // shard load goes through the pipeline's loader thread instead.
  EXPECT_EQ(streamed->metrics.storage.prefetch_issued, 0);
  // Each consumed load charges its I/O time either to consumer wait or
  // to hidden overlap, so the two together are strictly positive.
  const StorageMetrics storage = streamed->metrics.storage;
  EXPECT_GT(storage.overlap_seconds + storage.pipeline_wait_seconds, 0.0);
}

// The headline acceptance run: a pack at least 4x the memory budget
// still streams bit-identically through the pipeline on both backends,
// with the peak mapped bytes provably under the budget.
TEST(StorageInferenceTest, FourTimesBudgetStreamsBitIdentically) {
  constexpr std::int64_t kManyPartitions = 24;
  // Near-uniform shard sizes (hash partitioning, feature rows
  // dominate): the pipeline's resident window — consumer + slots +
  // the load in flight — stays a small fixed fraction of the pack, so
  // a quarter-of-the-pack budget is binding but never violated. The
  // skew stress lives in the strategy sweep above.
  PlantedGraphConfig config;
  config.num_nodes = 800;
  config.avg_degree = 5.0;
  config.feature_dim = 12;
  config.num_classes = 4;
  config.seed = 23;
  const Dataset dataset = MakePlantedDataset("storage-4x", config);
  const std::unique_ptr<GnnModel> model =
      MakeModelFor("sage", dataset.graph);

  const std::string dir = testing::TempDir() + "/storage_4x";
  std::filesystem::remove_all(dir);
  ShardWriterOptions writer;
  writer.num_partitions = kManyPartitions;
  const Result<ShardMeta> meta = WriteGraphShards(dataset.graph, dir, writer);
  ASSERT_TRUE(meta.ok()) << meta.status().ToString();

  std::uint64_t total = 0;
  for (std::int64_t p = 0; p < kManyPartitions; ++p) {
    total += std::filesystem::file_size(dir + "/" + ShardFileName(p));
  }
  const std::uint64_t budget = total / 4;
  ASSERT_GE(total, 4 * budget);

  // One pool worker: the resident set is the consumer's shard plus the
  // pipeline's in-flight slots, comfortably under a quarter of the pack.
  ThreadPool pool(1);
  InferTurboOptions options;
  options.num_workers = kManyPartitions;
  options.pool = &pool;
  options.storage_pipeline_slots = 2;

  for (const bool use_mapreduce : {false, true}) {
    SCOPED_TRACE(use_mapreduce ? "mapreduce" : "pregel");
    const Result<InferenceResult> in_memory =
        use_mapreduce
            ? RunInferTurboMapReduce(dataset.graph, *model, options)
            : RunInferTurboPregel(dataset.graph, *model, options);
    ASSERT_TRUE(in_memory.ok()) << in_memory.status().ToString();

    Result<ShardStore> store = OpenStore(dir, budget, &pool);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    const ShardGraphView view(std::move(*store));
    const Result<InferenceResult> streamed =
        use_mapreduce ? RunInferTurboMapReduce(view, *model, options)
                      : RunInferTurboPregel(view, *model, options);
    ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();

    EXPECT_TRUE(streamed->logits.ApproxEquals(in_memory->logits, 0.0f));
    EXPECT_EQ(streamed->predictions, in_memory->predictions);
    const StorageMetrics storage = streamed->metrics.storage;
    EXPECT_GT(storage.peak_bytes_mapped, 0u);
    EXPECT_LE(storage.peak_bytes_mapped, budget);
    EXPECT_EQ(storage.checksum_failures, 0);
    EXPECT_GT(storage.evictions, 0);
  }
}

}  // namespace
}  // namespace inferturbo
