// The out-of-core acceptance property: inference streamed from a shard
// directory is BIT-identical (tolerance 0.0f) to the in-memory run, on
// both backends, under every strategy combination, with the memory
// budget binding — peak mapped bytes never exceed it. The shard
// partitioning doubles as the worker assignment, so the streamed
// MapReduce run folds floats in exactly the in-memory order.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>

#include "src/common/thread_pool.h"
#include "src/graph/datasets.h"
#include "src/inference/inferturbo_mapreduce.h"
#include "src/inference/inferturbo_pregel.h"
#include "src/nn/model.h"
#include "src/storage/graph_view.h"
#include "src/storage/shard_format.h"
#include "src/storage/shard_store.h"
#include "src/storage/shard_writer.h"

namespace inferturbo {
namespace {

constexpr std::int64_t kPartitions = 8;

Dataset SkewedDataset() {
  PowerLawConfig config;
  config.num_nodes = 400;
  config.avg_degree = 6.0;
  config.skew = PowerLawSkew::kBoth;
  config.alpha = 1.6;
  config.seed = 99;
  return MakePowerLawDataset(config, /*feature_dim=*/12);
}

std::unique_ptr<GnnModel> MakeModelFor(const std::string& kind,
                                       const Graph& graph) {
  ModelConfig config;
  config.input_dim = graph.feature_dim();
  config.hidden_dim = 16;
  config.num_classes = graph.num_classes();
  config.num_layers = 2;
  config.heads = 4;
  config.seed = 5;
  if (graph.has_edge_features()) {
    config.edge_feature_dim = graph.edge_features().cols();
  }
  Result<std::unique_ptr<GnnModel>> model = MakeModel(kind, config);
  EXPECT_TRUE(model.ok());
  return std::move(model).ValueOrDie();
}

std::string PackInto(const Graph& graph, const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  ShardWriterOptions writer;
  writer.num_partitions = kPartitions;
  const Result<ShardMeta> meta = WriteGraphShards(graph, dir, writer);
  EXPECT_TRUE(meta.ok()) << meta.status().ToString();
  return dir;
}

/// A budget that is genuinely binding — the whole pack minus its
/// smallest shard, so the store can never hold every partition and
/// must evict — while leaving ample headroom for the shards that 2
/// pool workers plus their prefetches pin concurrently.
std::uint64_t BindingBudget(const std::string& dir) {
  std::uint64_t smallest = UINT64_MAX;
  std::uint64_t total = 0;
  for (std::int64_t p = 0; p < kPartitions; ++p) {
    const std::uint64_t size =
        std::filesystem::file_size(dir + "/" + ShardFileName(p));
    smallest = std::min(smallest, size);
    total += size;
  }
  const std::uint64_t budget = total - smallest;
  EXPECT_LT(budget, total);
  return budget;
}

Result<ShardStore> OpenStore(const std::string& dir, std::uint64_t budget,
                             ThreadPool* pool) {
  ShardStoreOptions options;
  options.directory = dir;
  options.memory_budget_bytes = budget;
  options.prefetch_pool = pool;
  return ShardStore::Open(std::move(options));
}

struct Case {
  bool partial_gather;
  bool broadcast;
  bool shadow_nodes;
};

std::string CaseName(const testing::TestParamInfo<Case>& info) {
  const Case& c = info.param;
  std::string name;
  name += c.partial_gather ? "pg1" : "pg0";
  name += c.broadcast ? "_bc1" : "_bc0";
  name += c.shadow_nodes ? "_sn1" : "_sn0";
  return name;
}

class StorageEquivalenceTest : public testing::TestWithParam<Case> {};

TEST_P(StorageEquivalenceTest, StreamedRunsAreBitIdenticalToInMemory) {
  const Case& c = GetParam();
  const Dataset dataset = SkewedDataset();
  const std::unique_ptr<GnnModel> model =
      MakeModelFor("sage", dataset.graph);
  const std::string dir = PackInto(dataset.graph, "storage_equiv");
  const std::uint64_t budget = BindingBudget(dir);
  ThreadPool pool(2);

  InferTurboOptions options;
  options.num_workers = kPartitions;
  options.pool = &pool;
  options.strategies.partial_gather = c.partial_gather;
  options.strategies.broadcast = c.broadcast;
  options.strategies.shadow_nodes = c.shadow_nodes;
  options.strategies.threshold_override =
      (c.broadcast || c.shadow_nodes) ? 8 : -1;
  options.export_embeddings = true;

  for (const bool use_mapreduce : {false, true}) {
    SCOPED_TRACE(use_mapreduce ? "mapreduce" : "pregel");
    const Result<InferenceResult> in_memory =
        use_mapreduce
            ? RunInferTurboMapReduce(dataset.graph, *model, options)
            : RunInferTurboPregel(dataset.graph, *model, options);
    ASSERT_TRUE(in_memory.ok()) << in_memory.status().ToString();

    Result<ShardStore> store = OpenStore(dir, budget, &pool);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    const ShardGraphView view(std::move(*store));
    const Result<InferenceResult> streamed =
        use_mapreduce ? RunInferTurboMapReduce(view, *model, options)
                      : RunInferTurboPregel(view, *model, options);
    ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();

    // Bit-identical: tolerance 0.0f, and hard predictions agree.
    EXPECT_TRUE(streamed->logits.ApproxEquals(in_memory->logits, 0.0f));
    EXPECT_EQ(streamed->predictions, in_memory->predictions);
    EXPECT_TRUE(
        streamed->embeddings.ApproxEquals(in_memory->embeddings, 0.0f));

    const StorageMetrics storage = streamed->metrics.storage;
    EXPECT_GT(storage.map_calls, 0);
    EXPECT_GT(storage.peak_bytes_mapped, 0u);
    EXPECT_LE(storage.peak_bytes_mapped, budget);
    EXPECT_EQ(storage.checksum_failures, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, StorageEquivalenceTest,
    testing::Values(Case{false, false, false}, Case{true, false, false},
                    Case{true, true, false}, Case{true, false, true},
                    Case{true, true, true}),
    CaseName);

TEST(StorageInferenceTest, EdgeFeatureModelStreamsBitIdentically) {
  PlantedGraphConfig config;
  config.num_nodes = 300;
  config.avg_degree = 5.0;
  config.feature_dim = 8;
  config.num_classes = 4;
  config.edge_feature_dim = 3;
  config.seed = 17;
  const Dataset dataset = MakePlantedDataset("storage-edge", config);
  const std::unique_ptr<GnnModel> model =
      MakeModelFor("edge_sage", dataset.graph);
  const std::string dir = PackInto(dataset.graph, "storage_edge");
  ThreadPool pool(2);

  InferTurboOptions options;
  options.num_workers = kPartitions;
  options.pool = &pool;

  for (const bool use_mapreduce : {false, true}) {
    SCOPED_TRACE(use_mapreduce ? "mapreduce" : "pregel");
    const Result<InferenceResult> in_memory =
        use_mapreduce
            ? RunInferTurboMapReduce(dataset.graph, *model, options)
            : RunInferTurboPregel(dataset.graph, *model, options);
    ASSERT_TRUE(in_memory.ok()) << in_memory.status().ToString();
    Result<ShardStore> store = OpenStore(dir, BindingBudget(dir), &pool);
    ASSERT_TRUE(store.ok());
    const ShardGraphView view(std::move(*store));
    const Result<InferenceResult> streamed =
        use_mapreduce ? RunInferTurboMapReduce(view, *model, options)
                      : RunInferTurboPregel(view, *model, options);
    ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
    EXPECT_TRUE(streamed->logits.ApproxEquals(in_memory->logits, 0.0f));
  }
}

TEST(StorageInferenceTest, MapReduceRejectsWorkerPartitionMismatch) {
  const Dataset dataset = SkewedDataset();
  const std::unique_ptr<GnnModel> model =
      MakeModelFor("sage", dataset.graph);
  const std::string dir = PackInto(dataset.graph, "storage_mismatch");
  Result<ShardStore> store = OpenStore(dir, 0, nullptr);
  ASSERT_TRUE(store.ok());
  const ShardGraphView view(std::move(*store));

  InferTurboOptions options;
  options.num_workers = kPartitions - 3;
  EXPECT_TRUE(RunInferTurboMapReduce(view, *model, options)
                  .status()
                  .IsInvalidArgument());
  // The Pregel backend materializes the view, so any worker count works.
  EXPECT_TRUE(RunInferTurboPregel(view, *model, options).ok());
}

TEST(StorageInferenceTest, StreamedPrefetchActuallyFires) {
  const Dataset dataset = SkewedDataset();
  const std::unique_ptr<GnnModel> model =
      MakeModelFor("sage", dataset.graph);
  const std::string dir = PackInto(dataset.graph, "storage_pf");
  ThreadPool pool(2);
  Result<ShardStore> store = OpenStore(dir, BindingBudget(dir), &pool);
  ASSERT_TRUE(store.ok());
  const ShardGraphView view(std::move(*store));

  InferTurboOptions options;
  options.num_workers = kPartitions;
  options.pool = &pool;
  const Result<InferenceResult> streamed =
      RunInferTurboMapReduce(view, *model, options);
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
  // The map stage prefetches partition p+1 before acquiring p.
  EXPECT_GT(streamed->metrics.storage.prefetch_issued, 0);
}

}  // namespace
}  // namespace inferturbo
