#include "src/gas/message.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/gas/gas_conv.h"
#include "src/tensor/segment_ops.h"

namespace inferturbo {
namespace {

TEST(MessageBatchTest, PushAndAppend) {
  MessageBatch a;
  const float r1[] = {1.0f, 2.0f};
  const float r2[] = {3.0f, 4.0f};
  a.Push(5, 1, r1, 2);
  a.Push(6, 2, r2, 2);
  EXPECT_EQ(a.size(), 2);
  EXPECT_EQ(a.dst[1], 6);
  EXPECT_EQ(a.payload.At(1, 0), 3.0f);

  MessageBatch b;
  b.Push(7, 3, r1, 2);
  a.Append(b);
  EXPECT_EQ(a.size(), 3);
  EXPECT_EQ(a.src[2], 3);
}

TEST(MessageBatchTest, IncrementalPushKeepsContentsThroughGrowth) {
  // Push grows the payload geometrically; many single-row pushes must
  // land every row intact and in order (the vertex-API build path).
  Rng rng(3);
  const std::int64_t n = 1000, width = 5;
  const Tensor rows = Tensor::RandomNormal(n, width, 1.0f, &rng);
  MessageBatch a;
  for (std::int64_t i = 0; i < n; ++i) {
    a.Push(static_cast<NodeId>(i % 17), static_cast<NodeId>(i),
           rows.RowPtr(i), width);
  }
  ASSERT_EQ(a.size(), n);
  EXPECT_TRUE(a.payload.ApproxEquals(rows, 0.0f));
  EXPECT_EQ(a.dst[999], 999 % 17);
  EXPECT_EQ(a.src[999], 999);
}

TEST(MessageBatchTest, PushAfterMismatchedReserveAdoptsRowWidth) {
  // A reservation at one width must not poison a first push at another
  // width while the batch is still empty.
  MessageBatch a;
  a.Reserve(4, 2);
  const float r[] = {1.0f, 2.0f, 3.0f};
  a.Push(0, 0, r, 3);
  ASSERT_EQ(a.payload.cols(), 3);
  EXPECT_EQ(a.payload.At(0, 2), 3.0f);
}

TEST(MessageBatchTest, MergeConcatenatesInOrder) {
  const float r[] = {1.0f};
  MessageBatch a, b, empty;
  a.Push(0, 0, r, 1);
  b.Push(1, 1, r, 1);
  std::vector<MessageBatch> batches = {a, empty, b};
  MessageBatch m = MessageBatch::Merge(batches);
  EXPECT_EQ(m.size(), 2);
  EXPECT_EQ(m.dst[0], 0);
  EXPECT_EQ(m.dst[1], 1);
}

TEST(MessageBatchTest, WireBytesChargePayloadAndHeader) {
  const float r[] = {1.0f, 2.0f};
  MessageBatch a;
  a.Push(0, 0, r, 2);
  EXPECT_EQ(a.WireBytes(), MessageBytes(2));
}

TEST(MessageBatchTest, IdOnlyBatchChargesReferenceBytes) {
  MessageBatch refs;
  refs.payload = Tensor(0, 0);
  refs.dst.push_back(3);
  refs.src.push_back(9);
  EXPECT_EQ(refs.WireBytes(), IdOnlyMessageBytes());
}

TEST(PooledAccumulatorTest, SumAccumulates) {
  PooledAccumulator acc(AggKind::kSum, 2);
  const float r1[] = {1.0f, 2.0f};
  const float r2[] = {10.0f, 20.0f};
  acc.Add(5, r1);
  acc.Add(5, r2);
  acc.Add(9, r1);
  const auto fin = acc.Finalize();
  ASSERT_EQ(fin.dst.size(), 2u);
  EXPECT_EQ(fin.dst[0], 5);
  EXPECT_EQ(fin.counts[0], 2);
  EXPECT_EQ(fin.values.At(0, 0), 11.0f);
  EXPECT_EQ(fin.values.At(1, 1), 2.0f);
}

TEST(PooledAccumulatorTest, MeanDividesAtFinalize) {
  PooledAccumulator acc(AggKind::kMean, 1);
  const float a = 2.0f, b = 4.0f;
  acc.Add(0, &a);
  acc.Add(0, &b);
  EXPECT_EQ(acc.Finalize().values.At(0, 0), 3.0f);
}

TEST(PooledAccumulatorTest, MaxMinSemantics) {
  PooledAccumulator mx(AggKind::kMax, 1);
  PooledAccumulator mn(AggKind::kMin, 1);
  const float a = -2.0f, b = 5.0f;
  for (auto* acc : {&mx, &mn}) {
    acc->Add(0, &a);
    acc->Add(0, &b);
  }
  EXPECT_EQ(mx.Finalize().values.At(0, 0), 5.0f);
  EXPECT_EQ(mn.Finalize().values.At(0, 0), -2.0f);
}

TEST(PooledAccumulatorTest, PartialBatchCarriesCountColumn) {
  PooledAccumulator acc(AggKind::kMean, 2);
  const float r[] = {4.0f, 8.0f};
  acc.Add(3, r);
  acc.Add(3, r);
  MessageBatch partial = acc.ToPartialBatch(/*from=*/7);
  ASSERT_EQ(partial.size(), 1);
  EXPECT_EQ(partial.payload.cols(), 3);
  EXPECT_EQ(partial.payload.At(0, 0), 8.0f);  // running sum, not mean
  EXPECT_EQ(partial.payload.At(0, 2), 2.0f);  // count
  EXPECT_EQ(partial.src[0], 7);
}

// The partial-gather exactness property: splitting a message stream
// across senders, partially pooling each side, and merging the
// partials must equal pooling everything at the receiver.
TEST(PooledAccumulatorTest, PartialThenMergeEqualsDirect) {
  Rng rng(31);
  for (const AggKind kind :
       {AggKind::kSum, AggKind::kMean, AggKind::kMax, AggKind::kMin}) {
    const std::int64_t num_msgs = 200, width = 3, num_nodes = 11;
    Tensor rows = Tensor::RandomNormal(num_msgs, width, 1.0f, &rng);
    std::vector<std::int64_t> dst;
    for (std::int64_t i = 0; i < num_msgs; ++i) {
      dst.push_back(static_cast<std::int64_t>(
          rng.NextBounded(static_cast<std::uint64_t>(num_nodes))));
    }

    // Direct: everything folded at the receiver.
    const GatherResult direct =
        GatherIntoResult(kind, rows, dst, num_nodes, /*is_partial=*/false);

    // Partial: three senders each pool a third, receiver merges.
    std::vector<MessageBatch> partials;
    for (int part = 0; part < 3; ++part) {
      PooledAccumulator acc(kind, width);
      for (std::int64_t i = part; i < num_msgs; i += 3) {
        acc.Add(dst[static_cast<std::size_t>(i)], rows.RowPtr(i));
      }
      partials.push_back(acc.ToPartialBatch(part));
    }
    MessageBatch merged = MessageBatch::Merge(partials);
    std::vector<std::int64_t> merged_dst(merged.dst.begin(),
                                         merged.dst.end());
    const GatherResult via_partial = GatherIntoResult(
        kind, merged.payload, merged_dst, num_nodes, /*is_partial=*/true);

    EXPECT_TRUE(via_partial.pooled.ApproxEquals(direct.pooled, 1e-4f))
        << "kind=" << static_cast<int>(kind);
    EXPECT_EQ(via_partial.counts, direct.counts);
  }
}

TEST(SplitByWorkerTest, PreservesPerWorkerOrderAndContent) {
  const std::int64_t num_workers = 4;
  const HashPartitioner partitioner(num_workers);
  Rng rng(47);
  MessageBatch batch;
  const std::int64_t n = 123, width = 3;
  batch.Reserve(static_cast<std::size_t>(n), width);
  batch.payload = Tensor::RandomNormal(n, width, 1.0f, &rng);
  for (std::int64_t i = 0; i < n; ++i) {
    batch.dst.push_back(static_cast<NodeId>(rng.NextBounded(500)));
    batch.src.push_back(static_cast<NodeId>(i));
  }
  const MessageBatch original = batch;

  std::vector<MessageBatch> slices =
      SplitByWorker(std::move(batch), partitioner, num_workers);
  ASSERT_EQ(slices.size(), static_cast<std::size_t>(num_workers));

  // Every row lands on its owner, and each slice preserves the
  // original relative order — verified by replaying the input and
  // consuming each owner's slice front-to-back.
  std::vector<std::int64_t> cursor(static_cast<std::size_t>(num_workers), 0);
  for (std::int64_t i = 0; i < n; ++i) {
    const auto w =
        static_cast<std::size_t>(partitioner.PartitionOf(original.dst[i]));
    const MessageBatch& slice = slices[w];
    const std::int64_t at = cursor[w]++;
    ASSERT_LT(at, slice.size());
    EXPECT_EQ(slice.dst[static_cast<std::size_t>(at)], original.dst[i]);
    EXPECT_EQ(slice.src[static_cast<std::size_t>(at)], original.src[i]);
    for (std::int64_t j = 0; j < width; ++j) {
      EXPECT_EQ(slice.payload.At(at, j), original.payload.At(i, j));
    }
  }
  // No extra rows anywhere: cursors consumed every slice exactly.
  for (std::size_t w = 0; w < static_cast<std::size_t>(num_workers); ++w) {
    EXPECT_EQ(cursor[w], slices[w].size());
  }
}

TEST(SplitByWorkerTest, SingleOwnerBatchMovesWithoutCopy) {
  const std::int64_t num_workers = 3;
  const HashPartitioner partitioner(num_workers);
  MessageBatch batch;
  // Find two ids on the same worker so the batch is single-owner.
  const NodeId id = 5;
  const std::int64_t w = partitioner.PartitionOf(id);
  const float r[] = {1.0f, 2.0f};
  batch.Push(id, 1, r, 2);
  batch.Push(id, 2, r, 2);
  const float* payload_before = batch.payload.data();

  std::vector<MessageBatch> slices =
      SplitByWorker(std::move(batch), partitioner, num_workers);
  ASSERT_EQ(slices[static_cast<std::size_t>(w)].size(), 2);
  // The fast path must move the payload, not reallocate it.
  EXPECT_EQ(slices[static_cast<std::size_t>(w)].payload.data(),
            payload_before);
  for (std::int64_t other = 0; other < num_workers; ++other) {
    if (other != w) {
      EXPECT_TRUE(slices[static_cast<std::size_t>(other)].empty());
    }
  }
}

TEST(SplitByWorkerTest, EmptyBatchYieldsAllEmptySlices) {
  const HashPartitioner partitioner(2);
  std::vector<MessageBatch> slices =
      SplitByWorker(MessageBatch{}, partitioner, 2);
  ASSERT_EQ(slices.size(), 2u);
  EXPECT_TRUE(slices[0].empty());
  EXPECT_TRUE(slices[1].empty());
}

TEST(SplitByWorkerTest, ZeroWidthPayloadSplitsIds) {
  // Identifier-only batches (broadcast references) have a 0-column
  // payload; the splitter must route ids without touching row memory.
  const std::int64_t num_workers = 2;
  const HashPartitioner partitioner(num_workers);
  MessageBatch batch;
  batch.payload = Tensor(0, 0);
  NodeId a = 0, b = 0;
  // Pick one id per worker so the multi-owner path runs.
  for (NodeId id = 0; id < 100; ++id) {
    if (partitioner.PartitionOf(id) == 0) a = id;
    if (partitioner.PartitionOf(id) == 1) b = id;
  }
  batch.dst = {a, b, a};
  batch.src = {10, 11, 12};

  std::vector<MessageBatch> slices =
      SplitByWorker(std::move(batch), partitioner, num_workers);
  EXPECT_EQ(slices[0].dst, (std::vector<NodeId>{a, a}));
  EXPECT_EQ(slices[0].src, (std::vector<NodeId>{10, 12}));
  EXPECT_EQ(slices[1].dst, (std::vector<NodeId>{b}));
  EXPECT_EQ(slices[1].src, (std::vector<NodeId>{11}));
}

TEST(GatherIntoResultTest, UnionKeepsRawRows) {
  Tensor rows = Tensor::FromRows({{1, 2}, {3, 4}});
  const std::vector<std::int64_t> dst = {1, 0};
  const GatherResult r = GatherIntoResult(AggKind::kUnion, rows, dst, 2,
                                          false);
  EXPECT_TRUE(r.messages.ApproxEquals(rows));
  EXPECT_EQ(r.dst_index, dst);
  EXPECT_EQ(r.counts, (std::vector<std::int64_t>{1, 1}));
}

TEST(GatherIntoResultTest, IsolatedNodesReadNeutralZero) {
  Tensor rows = Tensor::FromRows({{5, 5}});
  const std::vector<std::int64_t> dst = {0};
  for (const AggKind kind :
       {AggKind::kSum, AggKind::kMean, AggKind::kMax, AggKind::kMin}) {
    const GatherResult r = GatherIntoResult(kind, rows, dst, 3, false);
    EXPECT_EQ(r.counts[1], 0);
    EXPECT_EQ(r.pooled.At(1, 0), 0.0f);
    EXPECT_EQ(r.pooled.At(2, 1), 0.0f);
  }
}

}  // namespace
}  // namespace inferturbo
