// ShardPipeline: the double-buffered loader thread must hand back
// exactly the bytes a direct demand AcquirePartition would, under
// in-order sweeps, out-of-order demand, repeat acquires, load errors,
// and rapid construct/consume/destruct cycling (the tsan target). The
// passthrough modes (slots <= 0, resident views, single partition)
// must skip the thread entirely.
#include "src/storage/shard_pipeline.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/graph/datasets.h"
#include "src/storage/graph_view.h"
#include "src/storage/shard_format.h"
#include "src/storage/shard_store.h"
#include "src/storage/shard_writer.h"

namespace inferturbo {
namespace {

constexpr std::int64_t kPartitions = 6;

Dataset MakeDataset() {
  PlantedGraphConfig config;
  config.num_nodes = 300;
  config.avg_degree = 5.0;
  config.feature_dim = 8;
  config.num_classes = 4;
  config.seed = 41;
  return MakePlantedDataset("shard-pipeline", config);
}

std::string PackInto(const Graph& graph, const std::string& name,
                     std::int64_t partitions = kPartitions) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  ShardWriterOptions writer;
  writer.num_partitions = partitions;
  const Result<ShardMeta> meta = WriteGraphShards(graph, dir, writer);
  EXPECT_TRUE(meta.ok()) << meta.status().ToString();
  return dir;
}

Result<ShardStore> OpenStore(const std::string& dir,
                             std::uint64_t budget = 0) {
  ShardStoreOptions options;
  options.directory = dir;
  options.memory_budget_bytes = budget;
  return ShardStore::Open(std::move(options));
}

void ExpectSlicesEqual(const PartitionSlice& a, const PartitionSlice& b,
                       std::int64_t feature_dim) {
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    ASSERT_EQ(a.nodes[i], b.nodes[i]);
    ASSERT_EQ(a.out_offsets[i], b.out_offsets[i]);
  }
  ASSERT_EQ(a.out_dst.size(), b.out_dst.size());
  for (std::size_t e = 0; e < a.out_dst.size(); ++e) {
    ASSERT_EQ(a.out_dst[e], b.out_dst[e]);
    ASSERT_EQ(a.out_edge_ids[e], b.out_edge_ids[e]);
  }
  const std::size_t floats =
      a.nodes.size() * static_cast<std::size_t>(feature_dim);
  for (std::size_t i = 0; i < floats; ++i) {
    ASSERT_EQ(a.node_features[i], b.node_features[i]);
  }
}

TEST(ShardPipelineTest, InOrderSweepIsByteIdenticalToDemandAcquire) {
  const Dataset d = MakeDataset();
  const std::string dir = PackInto(d.graph, "pipe_sweep");
  Result<ShardStore> direct_store = OpenStore(dir);
  Result<ShardStore> piped_store = OpenStore(dir);
  ASSERT_TRUE(direct_store.ok() && piped_store.ok());
  const ShardGraphView direct(std::move(*direct_store));
  const ShardGraphView piped(std::move(*piped_store));

  ShardPipeline pipeline(piped, ShardPipelineOptions{2});
  EXPECT_TRUE(pipeline.active());
  for (std::int64_t p = 0; p < kPartitions; ++p) {
    const Result<PartitionSlice> want = direct.AcquirePartition(p);
    const Result<PartitionSlice> got = pipeline.Acquire(p);
    ASSERT_TRUE(want.ok() && got.ok());
    ExpectSlicesEqual(*want, *got, d.graph.feature_dim());
  }
  const PipelineStats stats = pipeline.stats();
  EXPECT_EQ(stats.loads_ahead + stats.loads_demand, kPartitions);
  // An in-order sweep should mostly be served ahead of demand.
  EXPECT_GT(stats.loads_ahead, 0);
  EXPECT_GE(stats.overlap_seconds + stats.wait_seconds, 0.0);
}

TEST(ShardPipelineTest, OutOfOrderDemandJumpsTheLoaderQueue) {
  const Dataset d = MakeDataset();
  const std::string dir = PackInto(d.graph, "pipe_ooo");
  Result<ShardStore> store = OpenStore(dir);
  ASSERT_TRUE(store.ok());
  const ShardGraphView view(std::move(*store));

  ShardPipeline pipeline(view, ShardPipelineOptions{2});
  for (std::int64_t p = kPartitions - 1; p >= 0; --p) {
    const Result<PartitionSlice> slice = pipeline.Acquire(p);
    ASSERT_TRUE(slice.ok()) << slice.status().ToString();
    EXPECT_FALSE(slice->nodes.empty());
  }
  const PipelineStats stats = pipeline.stats();
  EXPECT_EQ(stats.loads_ahead + stats.loads_demand, kPartitions);
  // The very first acquire (last partition) is outside the ahead
  // window, so at least one load was demanded.
  EXPECT_GT(stats.loads_demand, 0);
}

TEST(ShardPipelineTest, RepeatAcquireDegradesToDemandLoad) {
  const Dataset d = MakeDataset();
  const std::string dir = PackInto(d.graph, "pipe_repeat");
  Result<ShardStore> store = OpenStore(dir);
  ASSERT_TRUE(store.ok());
  const ShardGraphView view(std::move(*store));

  ShardPipeline pipeline(view, ShardPipelineOptions{2});
  const Result<PartitionSlice> first = pipeline.Acquire(0);
  const Result<PartitionSlice> second = pipeline.Acquire(0);
  ASSERT_TRUE(first.ok() && second.ok());
  ExpectSlicesEqual(*first, *second, d.graph.feature_dim());
}

TEST(ShardPipelineTest, OutOfRangeAcquirePassesThroughToTheView) {
  const Dataset d = MakeDataset();
  const std::string dir = PackInto(d.graph, "pipe_range");
  Result<ShardStore> store = OpenStore(dir);
  ASSERT_TRUE(store.ok());
  const ShardGraphView view(std::move(*store));

  ShardPipeline pipeline(view, ShardPipelineOptions{2});
  EXPECT_TRUE(pipeline.Acquire(-1).status().IsInvalidArgument());
  EXPECT_TRUE(pipeline.Acquire(kPartitions).status().IsInvalidArgument());
  // The pipeline still serves valid partitions afterwards.
  EXPECT_TRUE(pipeline.Acquire(0).ok());
}

TEST(ShardPipelineTest, PassthroughModesSkipTheLoaderThread) {
  const Dataset d = MakeDataset();
  const std::string dir = PackInto(d.graph, "pipe_pass");
  Result<ShardStore> store = OpenStore(dir);
  ASSERT_TRUE(store.ok());
  const ShardGraphView streamed(std::move(*store));

  // slots <= 0 disables the pipeline.
  ShardPipeline demand(streamed, ShardPipelineOptions{0});
  EXPECT_FALSE(demand.active());
  EXPECT_TRUE(demand.Acquire(0).ok());
  EXPECT_EQ(demand.stats().loads_ahead + demand.stats().loads_demand, 0);

  // Resident views never need streaming overlap.
  const InMemoryGraphView resident(d.graph, kPartitions);
  ShardPipeline in_memory(resident, ShardPipelineOptions{2});
  EXPECT_FALSE(in_memory.active());
  EXPECT_TRUE(in_memory.Acquire(0).ok());

  // A single-partition pack has nothing to load ahead.
  const std::string single_dir = PackInto(d.graph, "pipe_single", 1);
  Result<ShardStore> single_store = OpenStore(single_dir);
  ASSERT_TRUE(single_store.ok());
  const ShardGraphView single(std::move(*single_store));
  ShardPipeline single_pipe(single, ShardPipelineOptions{2});
  EXPECT_FALSE(single_pipe.active());
  EXPECT_TRUE(single_pipe.Acquire(0).ok());
}

TEST(ShardPipelineTest, LoadErrorsSurfaceWithoutHanging) {
  const Dataset d = MakeDataset();
  const std::string dir = PackInto(d.graph, "pipe_error");
  // Flip one payload byte in partition 2 before any load: its page CRC
  // fails every attempt, so the pipeline must report the error from
  // Acquire(2) and keep serving the other partitions.
  const std::string shard_path = dir + "/" + ShardFileName(2);
  std::fstream f(shard_path,
                 std::ios::in | std::ios::out | std::ios::binary);
  f.seekg(ShardPayloadStart() + 64);
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x01);
  f.seekp(ShardPayloadStart() + 64);
  f.write(&byte, 1);
  f.close();

  Result<ShardStore> store = OpenStore(dir);
  ASSERT_TRUE(store.ok());
  const ShardGraphView view(std::move(*store));
  ShardPipeline pipeline(view, ShardPipelineOptions{2});
  for (std::int64_t p = 0; p < kPartitions; ++p) {
    const Result<PartitionSlice> slice = pipeline.Acquire(p);
    if (p == 2) {
      ASSERT_FALSE(slice.ok());
      EXPECT_EQ(slice.status().code(), StatusCode::kIoError);
    } else {
      ASSERT_TRUE(slice.ok()) << "partition " << p << ": "
                              << slice.status().ToString();
    }
  }
}

// The tsan workhorse: many short-lived single-slot pipelines, some
// fully consumed by concurrent workers, some abandoned mid-sweep so
// the destructor races an in-flight load.
TEST(ShardPipelineTest, SingleSlotRapidCyclingStress) {
  const Dataset d = MakeDataset();
  const std::string dir = PackInto(d.graph, "pipe_stress");
  std::uint64_t largest = 0;
  for (std::int64_t p = 0; p < kPartitions; ++p) {
    largest = std::max<std::uint64_t>(
        largest,
        std::filesystem::file_size(dir + "/" + ShardFileName(p)));
  }
  // A binding budget keeps eviction churning under the pipeline.
  Result<ShardStore> store = OpenStore(dir, 3 * largest);
  ASSERT_TRUE(store.ok());
  const ShardGraphView view(std::move(*store));

  for (int round = 0; round < 12; ++round) {
    ShardPipeline pipeline(view, ShardPipelineOptions{1});
    const bool abandon = (round % 3) == 2;
    const std::int64_t limit = abandon ? kPartitions / 2 : kPartitions;
    std::atomic<std::int64_t> next{0};
    std::atomic<int> failures{0};
    auto worker = [&]() {
      while (true) {
        const std::int64_t p = next.fetch_add(1);
        if (p >= limit) return;
        const Result<PartitionSlice> slice = pipeline.Acquire(p);
        if (!slice.ok() || slice->nodes.empty()) {
          failures.fetch_add(1);
        }
      }
    };
    std::thread a(worker);
    std::thread b(worker);
    a.join();
    b.join();
    ASSERT_EQ(failures.load(), 0) << "round " << round;
    // Abandoned rounds destroy the pipeline here with loads in flight.
  }
  EXPECT_EQ(view.storage_metrics().checksum_failures, 0);
}

TEST(ShardPipelineTest, PipelinedMaterializeMatchesPlainMaterialize) {
  const Dataset d = MakeDataset();
  const std::string dir = PackInto(d.graph, "pipe_mat");
  Result<ShardStore> plain_store = OpenStore(dir);
  Result<ShardStore> piped_store = OpenStore(dir);
  ASSERT_TRUE(plain_store.ok() && piped_store.ok());
  const ShardGraphView plain_view(std::move(*plain_store));
  const ShardGraphView piped_view(std::move(*piped_store));

  const Result<Graph> plain = MaterializeGraph(plain_view);
  ASSERT_TRUE(plain.ok());

  MaterializeOptions options;
  options.pipeline_slots = 2;
  PipelineStats stats;
  options.stats = &stats;
  const Result<Graph> piped = MaterializeGraph(piped_view, options);
  ASSERT_TRUE(piped.ok()) << piped.status().ToString();

  EXPECT_EQ(plain->num_nodes(), piped->num_nodes());
  EXPECT_EQ(plain->num_edges(), piped->num_edges());
  EXPECT_EQ(plain->edge_src(), piped->edge_src());
  EXPECT_EQ(plain->edge_dst(), piped->edge_dst());
  EXPECT_EQ(plain->labels(), piped->labels());
  EXPECT_TRUE(
      plain->node_features().ApproxEquals(piped->node_features(), 0.0f));
  EXPECT_EQ(stats.loads_ahead + stats.loads_demand, kPartitions);
}

}  // namespace
}  // namespace inferturbo
