#include "src/mapreduce/mapreduce_engine.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

namespace inferturbo {
namespace {

TEST(MapReduceEngineTest, WordCountStyleAggregation) {
  // Map emits (key % 5, 1); reduce sums. 100 records -> 5 keys of 20.
  MapReduceJob::Options options;
  options.num_instances = 4;
  MapReduceJob job(options);
  job.RunMap([](std::int64_t instance, MrEmitter* emitter) {
    for (std::int64_t i = 0; i < 25; ++i) {
      MrValue v;
      v.floats = {1.0f};
      emitter->Emit((instance * 25 + i) % 5, std::move(v));
    }
  });
  job.RunReduce(
      [](std::int64_t key, std::span<MrValue> values, MrEmitter* emitter) {
        MrValue out;
        float sum = 0.0f;
        for (const MrValue& v : values) sum += v.floats[0];
        out.floats = {sum};
        emitter->Emit(key, std::move(out));
      },
      nullptr);
  std::map<std::int64_t, float> result;
  for (const MrKeyValue& kv : job.TakeOutputs()) {
    result[kv.first] = kv.second.floats[0];
  }
  ASSERT_EQ(result.size(), 5u);
  for (const auto& [key, sum] : result) EXPECT_EQ(sum, 20.0f);
}

TEST(MapReduceEngineTest, ValuesArriveInProducerOrder) {
  MapReduceJob::Options options;
  options.num_instances = 3;
  MapReduceJob job(options);
  job.RunMap([](std::int64_t instance, MrEmitter* emitter) {
    for (int i = 0; i < 2; ++i) {
      MrValue v;
      v.src = instance * 10 + i;
      emitter->Emit(0, std::move(v));
    }
  });
  std::vector<NodeId> order;
  job.RunReduce(
      [&order](std::int64_t, std::span<MrValue> values, MrEmitter*) {
        for (const MrValue& v : values) order.push_back(v.src);
      },
      nullptr);
  EXPECT_EQ(order, (std::vector<NodeId>{0, 1, 10, 11, 20, 21}));
}

TEST(MapReduceEngineTest, CombinerShrinksShuffleBytes) {
  const auto run = [](bool with_combiner) {
    MapReduceJob::Options options;
    options.num_instances = 2;
    MapReduceJob job(options);
    job.RunMap([](std::int64_t, MrEmitter* emitter) {
      for (int i = 0; i < 50; ++i) {
        MrValue v;
        v.floats = {1.0f};
        emitter->Emit(7, std::move(v));
      }
    });
    MapReduceJob::CombineFn combiner = [](std::int64_t,
                                          std::vector<MrValue>* values) {
      MrValue folded;
      folded.floats = {0.0f};
      for (const MrValue& v : *values) folded.floats[0] += v.floats[0];
      values->assign(1, std::move(folded));
    };
    float total = 0.0f;
    job.RunReduce(
        [&total](std::int64_t, std::span<MrValue> values, MrEmitter*) {
          for (const MrValue& v : values) total += v.floats[0];
        },
        with_combiner ? &combiner : nullptr);
    std::uint64_t shuffle_bytes = 0;
    for (const auto& w : job.metrics().workers) {
      shuffle_bytes += w.Total().bytes_out;
    }
    EXPECT_EQ(total, 100.0f);  // combining never changes the answer
    return shuffle_bytes;
  };
  EXPECT_LT(run(true), run(false) / 10);
}

TEST(MapReduceEngineTest, AllShuffleTrafficIsCharged) {
  // Unlike Pregel, local delivery also pays (external-storage model).
  MapReduceJob::Options options;
  options.num_instances = 2;
  MapReduceJob job(options);
  job.RunMap([](std::int64_t instance, MrEmitter* emitter) {
    if (instance != 0) return;
    MrValue v;
    v.floats = {1.0f, 2.0f};
    emitter->Emit(0, std::move(v));  // lands wherever key 0 hashes
  });
  job.RunReduce([](std::int64_t, std::span<MrValue>, MrEmitter*) {}, nullptr);
  std::uint64_t out = 0, in = 0;
  for (const auto& w : job.metrics().workers) {
    out += w.Total().bytes_out;
    in += w.Total().bytes_in;
  }
  EXPECT_GT(out, 0u);
  EXPECT_EQ(out, in);
}

TEST(MapReduceEngineTest, MultiRoundChainingPreservesData) {
  MapReduceJob::Options options;
  options.num_instances = 3;
  MapReduceJob job(options);
  job.RunMap([](std::int64_t instance, MrEmitter* emitter) {
    MrValue v;
    v.floats = {static_cast<float>(instance)};
    emitter->Emit(instance, std::move(v));
  });
  // Each round forwards key -> key+1 with value+10.
  for (int round = 0; round < 3; ++round) {
    job.RunReduce(
        [](std::int64_t key, std::span<MrValue> values, MrEmitter* emitter) {
          for (MrValue& v : values) {
            v.floats[0] += 10.0f;
            emitter->Emit(key + 1, std::move(v));
          }
        },
        nullptr);
  }
  std::map<std::int64_t, float> result;
  for (const MrKeyValue& kv : job.TakeOutputs()) {
    result[kv.first] = kv.second.floats[0];
  }
  ASSERT_EQ(result.size(), 3u);
  EXPECT_EQ(result[3], 30.0f);
  EXPECT_EQ(result[4], 31.0f);
  EXPECT_EQ(result[5], 32.0f);
}

TEST(MapReduceEngineTest, MetricsTrackOneStepPerStage) {
  MapReduceJob::Options options;
  options.num_instances = 2;
  MapReduceJob job(options);
  job.RunMap([](std::int64_t, MrEmitter*) {});
  job.RunReduce([](std::int64_t, std::span<MrValue>, MrEmitter*) {}, nullptr);
  job.RunReduce([](std::int64_t, std::span<MrValue>, MrEmitter*) {}, nullptr);
  EXPECT_EQ(job.metrics().num_steps(), 3);
}

TEST(MapReduceEngineTest, CombinerSeesOnlySameKeyRuns) {
  // The combiner contract: invoked per (producer, reducer, key) with
  // exactly that key's values; emissions for other keys must never be
  // folded together.
  MapReduceJob::Options options;
  options.num_instances = 2;
  MapReduceJob job(options);
  job.RunMap([](std::int64_t instance, MrEmitter* emitter) {
    if (instance != 0) return;
    for (int i = 0; i < 6; ++i) {
      MrValue v;
      v.floats = {static_cast<float>(1 << i)};
      emitter->Emit(i % 2 == 0 ? 10 : 11, std::move(v));
    }
  });
  std::map<std::int64_t, std::vector<float>> combined_per_key;
  MapReduceJob::CombineFn combiner =
      [&combined_per_key](std::int64_t key, std::vector<MrValue>* values) {
        MrValue folded;
        folded.floats = {0.0f};
        for (const MrValue& v : *values) folded.floats[0] += v.floats[0];
        combined_per_key[key].push_back(folded.floats[0]);
        values->assign(1, std::move(folded));
      };
  std::map<std::int64_t, float> reduced;
  job.RunReduce(
      [&reduced](std::int64_t key, std::span<MrValue> values, MrEmitter*) {
        for (const MrValue& v : values) reduced[key] += v.floats[0];
      },
      &combiner);
  // Key 10 got 1+4+16 = 21; key 11 got 2+8+32 = 42; no cross-talk.
  EXPECT_EQ(reduced[10], 21.0f);
  EXPECT_EQ(reduced[11], 42.0f);
  ASSERT_EQ(combined_per_key[10].size(), 1u);
  ASSERT_EQ(combined_per_key[11].size(), 1u);
  EXPECT_EQ(combined_per_key[10][0], 21.0f);
  EXPECT_EQ(combined_per_key[11][0], 42.0f);
}

TEST(MapReduceEngineTest, PeakResidentTracksLargestKeyGroup) {
  MapReduceJob::Options options;
  options.num_instances = 1;
  MapReduceJob job(options);
  job.RunMap([](std::int64_t, MrEmitter* emitter) {
    // Key 0: one record; key 1: ten records.
    for (int i = 0; i < 11; ++i) {
      MrValue v;
      v.floats = {1.0f, 2.0f};
      emitter->Emit(i == 0 ? 0 : 1, std::move(v));
    }
  });
  job.RunReduce([](std::int64_t, std::span<MrValue>, MrEmitter*) {},
                nullptr);
  MrValue sample;
  sample.floats = {1.0f, 2.0f};
  EXPECT_EQ(job.metrics().PeakResidentBytes(), 10 * sample.WireBytes());
}

TEST(MrValueTest, WireBytesCountAllFields) {
  MrValue v;
  v.floats = {1.0f, 2.0f};
  v.ids = {1, 2, 3};
  EXPECT_EQ(v.WireBytes(),
            kMessageHeaderBytes + sizeof(std::int32_t) + sizeof(NodeId) +
                2 * sizeof(float) + 3 * sizeof(std::int64_t));
}

}  // namespace
}  // namespace inferturbo
