// Cluster-size invariance: the logical worker count is a deployment
// knob, never a semantic one. Results must be identical (to float
// reassociation) from 1 worker to many more workers than the graph has
// hot nodes, on both backends, with the heavy strategies on.
#include <gtest/gtest.h>

#include "src/graph/datasets.h"
#include "src/inference/inferturbo_mapreduce.h"
#include "src/inference/inferturbo_pregel.h"
#include "src/inference/reference_inference.h"
#include "src/nn/model.h"
#include "src/tensor/ops.h"

namespace inferturbo {
namespace {

class WorkerSweepTest : public testing::TestWithParam<std::int64_t> {};

Dataset SweepDataset() {
  PowerLawConfig config;
  config.num_nodes = 300;
  config.avg_degree = 6.0;
  config.alpha = 1.6;
  config.seed = 55;
  return MakePowerLawDataset(config, /*feature_dim=*/10);
}

std::unique_ptr<GnnModel> SweepModel(const Graph& g) {
  ModelConfig config;
  config.input_dim = g.feature_dim();
  config.hidden_dim = 12;
  config.num_classes = g.num_classes();
  config.num_layers = 2;
  return MakeSageModel(config);
}

TEST_P(WorkerSweepTest, PregelInvariantToWorkerCount) {
  const std::int64_t workers = GetParam();
  const Dataset d = SweepDataset();
  const std::unique_ptr<GnnModel> model = SweepModel(d.graph);
  const Tensor reference = FullGraphReferenceLogits(*model, d.graph);

  InferTurboOptions options;
  options.num_workers = workers;
  options.strategies = StrategyConfig::All();
  options.strategies.threshold_override = 10;
  const Result<InferenceResult> r =
      RunInferTurboPregel(d.graph, *model, options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->logits.ApproxEquals(reference, 2e-3f))
      << "workers=" << workers;
  EXPECT_EQ(r->predictions, ArgmaxRows(reference));
}

TEST_P(WorkerSweepTest, MapReduceInvariantToWorkerCount) {
  const std::int64_t workers = GetParam();
  const Dataset d = SweepDataset();
  const std::unique_ptr<GnnModel> model = SweepModel(d.graph);
  const Tensor reference = FullGraphReferenceLogits(*model, d.graph);

  InferTurboOptions options;
  options.num_workers = workers;
  options.strategies = StrategyConfig::All();
  options.strategies.threshold_override = 10;
  const Result<InferenceResult> r =
      RunInferTurboMapReduce(d.graph, *model, options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->logits.ApproxEquals(reference, 2e-3f))
      << "workers=" << workers;
  EXPECT_EQ(r->predictions, ArgmaxRows(reference));
}

INSTANTIATE_TEST_SUITE_P(OneToManyWorkers, WorkerSweepTest,
                         testing::Values(1, 2, 3, 8, 32, 128),
                         testing::PrintToStringParamName());

}  // namespace
}  // namespace inferturbo
