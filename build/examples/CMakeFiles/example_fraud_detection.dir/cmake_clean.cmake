file(REMOVE_RECURSE
  "CMakeFiles/example_fraud_detection.dir/fraud_detection.cc.o"
  "CMakeFiles/example_fraud_detection.dir/fraud_detection.cc.o.d"
  "example_fraud_detection"
  "example_fraud_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fraud_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
