file(REMOVE_RECURSE
  "CMakeFiles/example_recommendation.dir/recommendation.cc.o"
  "CMakeFiles/example_recommendation.dir/recommendation.cc.o.d"
  "example_recommendation"
  "example_recommendation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_recommendation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
