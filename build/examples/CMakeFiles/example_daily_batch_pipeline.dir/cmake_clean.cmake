file(REMOVE_RECURSE
  "CMakeFiles/example_daily_batch_pipeline.dir/daily_batch_pipeline.cc.o"
  "CMakeFiles/example_daily_batch_pipeline.dir/daily_batch_pipeline.cc.o.d"
  "example_daily_batch_pipeline"
  "example_daily_batch_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_daily_batch_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
