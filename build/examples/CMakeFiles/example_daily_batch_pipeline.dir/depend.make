# Empty dependencies file for example_daily_batch_pipeline.
# This may be replaced when dependencies are built.
