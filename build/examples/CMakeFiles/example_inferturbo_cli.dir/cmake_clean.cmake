file(REMOVE_RECURSE
  "CMakeFiles/example_inferturbo_cli.dir/inferturbo_cli.cc.o"
  "CMakeFiles/example_inferturbo_cli.dir/inferturbo_cli.cc.o.d"
  "example_inferturbo_cli"
  "example_inferturbo_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_inferturbo_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
