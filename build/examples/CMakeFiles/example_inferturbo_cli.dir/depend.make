# Empty dependencies file for example_inferturbo_cli.
# This may be replaced when dependencies are built.
