# Empty compiler generated dependencies file for inferturbo.
# This may be replaced when dependencies are built.
