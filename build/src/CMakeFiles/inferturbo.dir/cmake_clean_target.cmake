file(REMOVE_RECURSE
  "libinferturbo.a"
)
