
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/checkpoint/checkpoint_store.cc" "src/CMakeFiles/inferturbo.dir/checkpoint/checkpoint_store.cc.o" "gcc" "src/CMakeFiles/inferturbo.dir/checkpoint/checkpoint_store.cc.o.d"
  "/root/repo/src/common/atomic_file.cc" "src/CMakeFiles/inferturbo.dir/common/atomic_file.cc.o" "gcc" "src/CMakeFiles/inferturbo.dir/common/atomic_file.cc.o.d"
  "/root/repo/src/common/binary_io.cc" "src/CMakeFiles/inferturbo.dir/common/binary_io.cc.o" "gcc" "src/CMakeFiles/inferturbo.dir/common/binary_io.cc.o.d"
  "/root/repo/src/common/byte_size.cc" "src/CMakeFiles/inferturbo.dir/common/byte_size.cc.o" "gcc" "src/CMakeFiles/inferturbo.dir/common/byte_size.cc.o.d"
  "/root/repo/src/common/crc32.cc" "src/CMakeFiles/inferturbo.dir/common/crc32.cc.o" "gcc" "src/CMakeFiles/inferturbo.dir/common/crc32.cc.o.d"
  "/root/repo/src/common/flags.cc" "src/CMakeFiles/inferturbo.dir/common/flags.cc.o" "gcc" "src/CMakeFiles/inferturbo.dir/common/flags.cc.o.d"
  "/root/repo/src/common/io_fault.cc" "src/CMakeFiles/inferturbo.dir/common/io_fault.cc.o" "gcc" "src/CMakeFiles/inferturbo.dir/common/io_fault.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/inferturbo.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/inferturbo.dir/common/logging.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/inferturbo.dir/common/status.cc.o" "gcc" "src/CMakeFiles/inferturbo.dir/common/status.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/inferturbo.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/inferturbo.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/gas/gas_conv.cc" "src/CMakeFiles/inferturbo.dir/gas/gas_conv.cc.o" "gcc" "src/CMakeFiles/inferturbo.dir/gas/gas_conv.cc.o.d"
  "/root/repo/src/gas/message.cc" "src/CMakeFiles/inferturbo.dir/gas/message.cc.o" "gcc" "src/CMakeFiles/inferturbo.dir/gas/message.cc.o.d"
  "/root/repo/src/gas/signature.cc" "src/CMakeFiles/inferturbo.dir/gas/signature.cc.o" "gcc" "src/CMakeFiles/inferturbo.dir/gas/signature.cc.o.d"
  "/root/repo/src/graph/datasets.cc" "src/CMakeFiles/inferturbo.dir/graph/datasets.cc.o" "gcc" "src/CMakeFiles/inferturbo.dir/graph/datasets.cc.o.d"
  "/root/repo/src/graph/degree_stats.cc" "src/CMakeFiles/inferturbo.dir/graph/degree_stats.cc.o" "gcc" "src/CMakeFiles/inferturbo.dir/graph/degree_stats.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/inferturbo.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/inferturbo.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/graph_builder.cc" "src/CMakeFiles/inferturbo.dir/graph/graph_builder.cc.o" "gcc" "src/CMakeFiles/inferturbo.dir/graph/graph_builder.cc.o.d"
  "/root/repo/src/graph/graph_io.cc" "src/CMakeFiles/inferturbo.dir/graph/graph_io.cc.o" "gcc" "src/CMakeFiles/inferturbo.dir/graph/graph_io.cc.o.d"
  "/root/repo/src/graph/partition.cc" "src/CMakeFiles/inferturbo.dir/graph/partition.cc.o" "gcc" "src/CMakeFiles/inferturbo.dir/graph/partition.cc.o.d"
  "/root/repo/src/graph/power_law.cc" "src/CMakeFiles/inferturbo.dir/graph/power_law.cc.o" "gcc" "src/CMakeFiles/inferturbo.dir/graph/power_law.cc.o.d"
  "/root/repo/src/inference/incremental.cc" "src/CMakeFiles/inferturbo.dir/inference/incremental.cc.o" "gcc" "src/CMakeFiles/inferturbo.dir/inference/incremental.cc.o.d"
  "/root/repo/src/inference/inferturbo_mapreduce.cc" "src/CMakeFiles/inferturbo.dir/inference/inferturbo_mapreduce.cc.o" "gcc" "src/CMakeFiles/inferturbo.dir/inference/inferturbo_mapreduce.cc.o.d"
  "/root/repo/src/inference/inferturbo_pregel.cc" "src/CMakeFiles/inferturbo.dir/inference/inferturbo_pregel.cc.o" "gcc" "src/CMakeFiles/inferturbo.dir/inference/inferturbo_pregel.cc.o.d"
  "/root/repo/src/inference/output_writer.cc" "src/CMakeFiles/inferturbo.dir/inference/output_writer.cc.o" "gcc" "src/CMakeFiles/inferturbo.dir/inference/output_writer.cc.o.d"
  "/root/repo/src/inference/reference_inference.cc" "src/CMakeFiles/inferturbo.dir/inference/reference_inference.cc.o" "gcc" "src/CMakeFiles/inferturbo.dir/inference/reference_inference.cc.o.d"
  "/root/repo/src/inference/strategies.cc" "src/CMakeFiles/inferturbo.dir/inference/strategies.cc.o" "gcc" "src/CMakeFiles/inferturbo.dir/inference/strategies.cc.o.d"
  "/root/repo/src/inference/traditional_pipeline.cc" "src/CMakeFiles/inferturbo.dir/inference/traditional_pipeline.cc.o" "gcc" "src/CMakeFiles/inferturbo.dir/inference/traditional_pipeline.cc.o.d"
  "/root/repo/src/mapreduce/mapreduce_engine.cc" "src/CMakeFiles/inferturbo.dir/mapreduce/mapreduce_engine.cc.o" "gcc" "src/CMakeFiles/inferturbo.dir/mapreduce/mapreduce_engine.cc.o.d"
  "/root/repo/src/nn/edge_sage_conv.cc" "src/CMakeFiles/inferturbo.dir/nn/edge_sage_conv.cc.o" "gcc" "src/CMakeFiles/inferturbo.dir/nn/edge_sage_conv.cc.o.d"
  "/root/repo/src/nn/gat_conv.cc" "src/CMakeFiles/inferturbo.dir/nn/gat_conv.cc.o" "gcc" "src/CMakeFiles/inferturbo.dir/nn/gat_conv.cc.o.d"
  "/root/repo/src/nn/gcn_conv.cc" "src/CMakeFiles/inferturbo.dir/nn/gcn_conv.cc.o" "gcc" "src/CMakeFiles/inferturbo.dir/nn/gcn_conv.cc.o.d"
  "/root/repo/src/nn/gin_conv.cc" "src/CMakeFiles/inferturbo.dir/nn/gin_conv.cc.o" "gcc" "src/CMakeFiles/inferturbo.dir/nn/gin_conv.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/CMakeFiles/inferturbo.dir/nn/loss.cc.o" "gcc" "src/CMakeFiles/inferturbo.dir/nn/loss.cc.o.d"
  "/root/repo/src/nn/metrics.cc" "src/CMakeFiles/inferturbo.dir/nn/metrics.cc.o" "gcc" "src/CMakeFiles/inferturbo.dir/nn/metrics.cc.o.d"
  "/root/repo/src/nn/model.cc" "src/CMakeFiles/inferturbo.dir/nn/model.cc.o" "gcc" "src/CMakeFiles/inferturbo.dir/nn/model.cc.o.d"
  "/root/repo/src/nn/pool_sage_conv.cc" "src/CMakeFiles/inferturbo.dir/nn/pool_sage_conv.cc.o" "gcc" "src/CMakeFiles/inferturbo.dir/nn/pool_sage_conv.cc.o.d"
  "/root/repo/src/nn/sage_conv.cc" "src/CMakeFiles/inferturbo.dir/nn/sage_conv.cc.o" "gcc" "src/CMakeFiles/inferturbo.dir/nn/sage_conv.cc.o.d"
  "/root/repo/src/nn/trainer.cc" "src/CMakeFiles/inferturbo.dir/nn/trainer.cc.o" "gcc" "src/CMakeFiles/inferturbo.dir/nn/trainer.cc.o.d"
  "/root/repo/src/pregel/algorithms.cc" "src/CMakeFiles/inferturbo.dir/pregel/algorithms.cc.o" "gcc" "src/CMakeFiles/inferturbo.dir/pregel/algorithms.cc.o.d"
  "/root/repo/src/pregel/pregel_engine.cc" "src/CMakeFiles/inferturbo.dir/pregel/pregel_engine.cc.o" "gcc" "src/CMakeFiles/inferturbo.dir/pregel/pregel_engine.cc.o.d"
  "/root/repo/src/pregel/vertex_api.cc" "src/CMakeFiles/inferturbo.dir/pregel/vertex_api.cc.o" "gcc" "src/CMakeFiles/inferturbo.dir/pregel/vertex_api.cc.o.d"
  "/root/repo/src/pregel/worker_metrics.cc" "src/CMakeFiles/inferturbo.dir/pregel/worker_metrics.cc.o" "gcc" "src/CMakeFiles/inferturbo.dir/pregel/worker_metrics.cc.o.d"
  "/root/repo/src/sampling/khop_sampler.cc" "src/CMakeFiles/inferturbo.dir/sampling/khop_sampler.cc.o" "gcc" "src/CMakeFiles/inferturbo.dir/sampling/khop_sampler.cc.o.d"
  "/root/repo/src/tensor/autograd.cc" "src/CMakeFiles/inferturbo.dir/tensor/autograd.cc.o" "gcc" "src/CMakeFiles/inferturbo.dir/tensor/autograd.cc.o.d"
  "/root/repo/src/tensor/ops.cc" "src/CMakeFiles/inferturbo.dir/tensor/ops.cc.o" "gcc" "src/CMakeFiles/inferturbo.dir/tensor/ops.cc.o.d"
  "/root/repo/src/tensor/optimizer.cc" "src/CMakeFiles/inferturbo.dir/tensor/optimizer.cc.o" "gcc" "src/CMakeFiles/inferturbo.dir/tensor/optimizer.cc.o.d"
  "/root/repo/src/tensor/segment_ops.cc" "src/CMakeFiles/inferturbo.dir/tensor/segment_ops.cc.o" "gcc" "src/CMakeFiles/inferturbo.dir/tensor/segment_ops.cc.o.d"
  "/root/repo/src/tensor/sparse.cc" "src/CMakeFiles/inferturbo.dir/tensor/sparse.cc.o" "gcc" "src/CMakeFiles/inferturbo.dir/tensor/sparse.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "src/CMakeFiles/inferturbo.dir/tensor/tensor.cc.o" "gcc" "src/CMakeFiles/inferturbo.dir/tensor/tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
