# Empty dependencies file for inferturbo.
# This may be replaced when dependencies are built.
