file(REMOVE_RECURSE
  "CMakeFiles/vertex_api_test.dir/vertex_api_test.cc.o"
  "CMakeFiles/vertex_api_test.dir/vertex_api_test.cc.o.d"
  "vertex_api_test"
  "vertex_api_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vertex_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
