# Empty dependencies file for vertex_api_test.
# This may be replaced when dependencies are built.
