# Empty dependencies file for randomized_exactness_test.
# This may be replaced when dependencies are built.
