file(REMOVE_RECURSE
  "CMakeFiles/randomized_exactness_test.dir/randomized_exactness_test.cc.o"
  "CMakeFiles/randomized_exactness_test.dir/randomized_exactness_test.cc.o.d"
  "randomized_exactness_test"
  "randomized_exactness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/randomized_exactness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
