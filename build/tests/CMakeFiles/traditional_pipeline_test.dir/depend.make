# Empty dependencies file for traditional_pipeline_test.
# This may be replaced when dependencies are built.
