file(REMOVE_RECURSE
  "CMakeFiles/traditional_pipeline_test.dir/traditional_pipeline_test.cc.o"
  "CMakeFiles/traditional_pipeline_test.dir/traditional_pipeline_test.cc.o.d"
  "traditional_pipeline_test"
  "traditional_pipeline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traditional_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
