file(REMOVE_RECURSE
  "CMakeFiles/pregel_algorithms_test.dir/pregel_algorithms_test.cc.o"
  "CMakeFiles/pregel_algorithms_test.dir/pregel_algorithms_test.cc.o.d"
  "pregel_algorithms_test"
  "pregel_algorithms_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pregel_algorithms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
