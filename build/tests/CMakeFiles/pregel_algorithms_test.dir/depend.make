# Empty dependencies file for pregel_algorithms_test.
# This may be replaced when dependencies are built.
