file(REMOVE_RECURSE
  "CMakeFiles/checkpoint_store_test.dir/checkpoint_store_test.cc.o"
  "CMakeFiles/checkpoint_store_test.dir/checkpoint_store_test.cc.o.d"
  "checkpoint_store_test"
  "checkpoint_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
