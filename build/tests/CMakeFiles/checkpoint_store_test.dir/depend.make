# Empty dependencies file for checkpoint_store_test.
# This may be replaced when dependencies are built.
