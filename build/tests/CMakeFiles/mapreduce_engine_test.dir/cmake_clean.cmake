file(REMOVE_RECURSE
  "CMakeFiles/mapreduce_engine_test.dir/mapreduce_engine_test.cc.o"
  "CMakeFiles/mapreduce_engine_test.dir/mapreduce_engine_test.cc.o.d"
  "mapreduce_engine_test"
  "mapreduce_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapreduce_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
