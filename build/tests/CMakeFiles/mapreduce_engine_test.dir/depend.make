# Empty dependencies file for mapreduce_engine_test.
# This may be replaced when dependencies are built.
