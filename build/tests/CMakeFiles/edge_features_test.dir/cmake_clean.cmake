file(REMOVE_RECURSE
  "CMakeFiles/edge_features_test.dir/edge_features_test.cc.o"
  "CMakeFiles/edge_features_test.dir/edge_features_test.cc.o.d"
  "edge_features_test"
  "edge_features_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_features_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
