file(REMOVE_RECURSE
  "CMakeFiles/output_writer_test.dir/output_writer_test.cc.o"
  "CMakeFiles/output_writer_test.dir/output_writer_test.cc.o.d"
  "output_writer_test"
  "output_writer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/output_writer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
