# Empty compiler generated dependencies file for output_writer_test.
# This may be replaced when dependencies are built.
