# Empty compiler generated dependencies file for khop_sampler_test.
# This may be replaced when dependencies are built.
