file(REMOVE_RECURSE
  "CMakeFiles/khop_sampler_test.dir/khop_sampler_test.cc.o"
  "CMakeFiles/khop_sampler_test.dir/khop_sampler_test.cc.o.d"
  "khop_sampler_test"
  "khop_sampler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/khop_sampler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
