file(REMOVE_RECURSE
  "CMakeFiles/segment_ops_test.dir/segment_ops_test.cc.o"
  "CMakeFiles/segment_ops_test.dir/segment_ops_test.cc.o.d"
  "segment_ops_test"
  "segment_ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segment_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
