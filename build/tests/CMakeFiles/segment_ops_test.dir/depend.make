# Empty dependencies file for segment_ops_test.
# This may be replaced when dependencies are built.
