file(REMOVE_RECURSE
  "CMakeFiles/worker_sweep_test.dir/worker_sweep_test.cc.o"
  "CMakeFiles/worker_sweep_test.dir/worker_sweep_test.cc.o.d"
  "worker_sweep_test"
  "worker_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/worker_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
