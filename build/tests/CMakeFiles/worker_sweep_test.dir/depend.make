# Empty dependencies file for worker_sweep_test.
# This may be replaced when dependencies are built.
