file(REMOVE_RECURSE
  "CMakeFiles/model_gradient_test.dir/model_gradient_test.cc.o"
  "CMakeFiles/model_gradient_test.dir/model_gradient_test.cc.o.d"
  "model_gradient_test"
  "model_gradient_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_gradient_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
