# Empty compiler generated dependencies file for model_gradient_test.
# This may be replaced when dependencies are built.
