file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_io_broadcast.dir/bench_fig12_io_broadcast.cc.o"
  "CMakeFiles/bench_fig12_io_broadcast.dir/bench_fig12_io_broadcast.cc.o.d"
  "bench_fig12_io_broadcast"
  "bench_fig12_io_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_io_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
