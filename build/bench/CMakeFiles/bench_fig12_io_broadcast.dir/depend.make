# Empty dependencies file for bench_fig12_io_broadcast.
# This may be replaced when dependencies are built.
