# Empty compiler generated dependencies file for bench_fig9_partial_gather_latency.
# This may be replaced when dependencies are built.
