# Empty compiler generated dependencies file for bench_fig10_outdegree_variance.
# This may be replaced when dependencies are built.
