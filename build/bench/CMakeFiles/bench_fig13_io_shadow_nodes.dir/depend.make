# Empty dependencies file for bench_fig13_io_shadow_nodes.
# This may be replaced when dependencies are built.
