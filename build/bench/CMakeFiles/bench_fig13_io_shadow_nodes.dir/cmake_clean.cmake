file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_io_shadow_nodes.dir/bench_fig13_io_shadow_nodes.cc.o"
  "CMakeFiles/bench_fig13_io_shadow_nodes.dir/bench_fig13_io_shadow_nodes.cc.o.d"
  "bench_fig13_io_shadow_nodes"
  "bench_fig13_io_shadow_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_io_shadow_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
