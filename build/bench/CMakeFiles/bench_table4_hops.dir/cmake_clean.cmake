file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_hops.dir/bench_table4_hops.cc.o"
  "CMakeFiles/bench_table4_hops.dir/bench_table4_hops.cc.o.d"
  "bench_table4_hops"
  "bench_table4_hops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_hops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
