file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_combiner.dir/bench_ablation_combiner.cc.o"
  "CMakeFiles/bench_ablation_combiner.dir/bench_ablation_combiner.cc.o.d"
  "bench_ablation_combiner"
  "bench_ablation_combiner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_combiner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
