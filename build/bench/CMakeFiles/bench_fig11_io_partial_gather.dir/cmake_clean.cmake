file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_io_partial_gather.dir/bench_fig11_io_partial_gather.cc.o"
  "CMakeFiles/bench_fig11_io_partial_gather.dir/bench_fig11_io_partial_gather.cc.o.d"
  "bench_fig11_io_partial_gather"
  "bench_fig11_io_partial_gather.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_io_partial_gather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
