# Empty dependencies file for bench_fig11_io_partial_gather.
# This may be replaced when dependencies are built.
